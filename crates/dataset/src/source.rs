//! Streaming row access.
//!
//! The paper's headline efficiency claim is that Ratio Rules need a
//! *single pass* over the data matrix, which may be far larger than
//! memory. [`RowSource`] models that access pattern: a cursor that yields
//! rows in order and can be rewound for algorithms that genuinely need
//! another pass (the two-pass oracle, not the miner). The core crate's
//! miner consumes any `RowSource` and provably touches it once.

use crate::{DataMatrix, DatasetError, Result};
use linalg::Matrix;
use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// A forward-only, rewindable stream of fixed-width rows.
pub trait RowSource {
    /// Number of attributes per row.
    fn n_cols(&self) -> usize;

    /// Copies the next row into `buf` (length `n_cols()`). Returns `false`
    /// at end of stream, in which case `buf` is unspecified.
    fn next_row(&mut self, buf: &mut [f64]) -> Result<bool>;

    /// Resets the cursor to the first row.
    fn rewind(&mut self) -> Result<()>;

    /// Convenience: drains the stream into a dense matrix (rewinds first).
    fn collect_matrix(&mut self) -> Result<Matrix> {
        self.rewind()?;
        let m = self.n_cols();
        let mut data = Vec::new();
        let mut buf = vec![0.0; m];
        let mut n = 0usize;
        while self.next_row(&mut buf)? {
            data.extend_from_slice(&buf);
            n += 1;
        }
        Ok(Matrix::from_vec(n, m, data)?)
    }
}

// A mutable borrow of a source is a source: lets callers thread
// `&mut dyn RowSource` (or any wrapper stack) into generic consumers.
impl<S: RowSource + ?Sized> RowSource for &mut S {
    fn n_cols(&self) -> usize {
        (**self).n_cols()
    }
    fn next_row(&mut self, buf: &mut [f64]) -> Result<bool> {
        (**self).next_row(buf)
    }
    fn rewind(&mut self) -> Result<()> {
        (**self).rewind()
    }
}

// A boxed source is a source: the CLI builds `Box<dyn RowSource>` stacks
// (file -> fault injector -> retrier) chosen at runtime.
impl<S: RowSource + ?Sized> RowSource for Box<S> {
    fn n_cols(&self) -> usize {
        (**self).n_cols()
    }
    fn next_row(&mut self, buf: &mut [f64]) -> Result<bool> {
        (**self).next_row(buf)
    }
    fn rewind(&mut self) -> Result<()> {
        (**self).rewind()
    }
}

/// In-memory row source over a matrix (zero-copy per row).
#[derive(Debug, Clone)]
pub struct MatrixSource<'a> {
    matrix: &'a Matrix,
    cursor: usize,
}

impl<'a> MatrixSource<'a> {
    /// Wraps a matrix.
    pub fn new(matrix: &'a Matrix) -> Self {
        MatrixSource { matrix, cursor: 0 }
    }
}

impl<'a> From<&'a DataMatrix> for MatrixSource<'a> {
    fn from(dm: &'a DataMatrix) -> Self {
        MatrixSource::new(dm.matrix())
    }
}

impl RowSource for MatrixSource<'_> {
    fn n_cols(&self) -> usize {
        self.matrix.cols()
    }

    fn next_row(&mut self, buf: &mut [f64]) -> Result<bool> {
        if self.cursor >= self.matrix.rows() {
            return Ok(false);
        }
        buf.copy_from_slice(self.matrix.row(self.cursor));
        self.cursor += 1;
        Ok(true)
    }

    fn rewind(&mut self) -> Result<()> {
        self.cursor = 0;
        Ok(())
    }
}

/// File-backed row source reading CSV-formatted rows lazily from disk —
/// the paper's "read the ith row of X from disk" setting.
pub struct CsvFileSource {
    path: PathBuf,
    reader: BufReader<std::fs::File>,
    n_cols: usize,
    has_header: bool,
    labels: Option<Vec<String>>,
    line: usize,
    line_buf: String,
}

impl CsvFileSource {
    /// Opens a CSV file. The column count is sniffed from the first data
    /// row; when `has_header` is true the first line is skipped on every
    /// pass and its tokens are kept as [`col_labels`](Self::col_labels).
    pub fn open(path: impl AsRef<Path>, has_header: bool) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::open(&path)?;
        let mut src = CsvFileSource {
            path,
            reader: BufReader::new(file),
            n_cols: 0,
            has_header,
            labels: None,
            line: 0,
            line_buf: String::new(),
        };
        src.rewind()?;
        // Sniff width from the first data row.
        let mut probe = Vec::new();
        if src.read_raw_row(&mut probe)? {
            src.n_cols = probe.len();
        } else {
            return Err(DatasetError::Invalid("CSV file has no data rows".into()));
        }
        src.rewind()?;
        Ok(src)
    }

    /// Column labels from the header line, when the file has one.
    pub fn col_labels(&self) -> Option<&[String]> {
        self.labels.as_deref()
    }

    fn read_raw_row(&mut self, out: &mut Vec<f64>) -> Result<bool> {
        loop {
            self.line_buf.clear();
            let bytes = self.reader.read_line(&mut self.line_buf)?;
            if bytes == 0 {
                return Ok(false);
            }
            self.line += 1;
            let trimmed = self.line_buf.trim();
            if trimmed.is_empty() {
                continue;
            }
            out.clear();
            for (col, tok) in trimmed.split(',').map(str::trim).enumerate() {
                out.push(crate::csv::parse_cell(tok, self.line, col)?);
            }
            return Ok(true);
        }
    }
}

impl RowSource for CsvFileSource {
    fn n_cols(&self) -> usize {
        self.n_cols
    }

    fn next_row(&mut self, buf: &mut [f64]) -> Result<bool> {
        let mut tmp = Vec::with_capacity(self.n_cols);
        if !self.read_raw_row(&mut tmp)? {
            return Ok(false);
        }
        if tmp.len() != self.n_cols {
            return Err(DatasetError::RaggedRows {
                line: self.line,
                expected: self.n_cols,
                actual: tmp.len(),
            });
        }
        buf.copy_from_slice(&tmp);
        Ok(true)
    }

    fn rewind(&mut self) -> Result<()> {
        self.reader.seek(SeekFrom::Start(0))?;
        self.line = 0;
        if self.has_header {
            self.line_buf.clear();
            self.reader.read_line(&mut self.line_buf)?;
            self.line = 1;
            if self.labels.is_none() {
                self.labels = Some(
                    self.line_buf
                        .trim()
                        .split(',')
                        .map(|t| t.trim().to_string())
                        .collect(),
                );
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for CsvFileSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsvFileSource")
            .field("path", &self.path)
            .field("n_cols", &self.n_cols)
            .finish()
    }
}

/// Concatenates several row sources into one stream — the warehouse
/// scenario where each day/shard lives in its own file and the miner
/// should see them as a single pass over the union.
pub struct ChainSource<S> {
    sources: Vec<S>,
    current: usize,
}

impl<S: RowSource> ChainSource<S> {
    /// Chains sources in order. All must agree on the column count.
    pub fn new(sources: Vec<S>) -> Result<Self> {
        let Some(first) = sources.first() else {
            return Err(DatasetError::Invalid(
                "ChainSource needs at least one source".into(),
            ));
        };
        let m = first.n_cols();
        for (i, s) in sources.iter().enumerate() {
            if s.n_cols() != m {
                return Err(DatasetError::Invalid(format!(
                    "source {i} has {} columns, expected {m}",
                    s.n_cols()
                )));
            }
        }
        Ok(ChainSource {
            sources,
            current: 0,
        })
    }
}

impl<S: RowSource> RowSource for ChainSource<S> {
    fn n_cols(&self) -> usize {
        self.sources[0].n_cols()
    }

    fn next_row(&mut self, buf: &mut [f64]) -> Result<bool> {
        while self.current < self.sources.len() {
            if self.sources[self.current].next_row(buf)? {
                return Ok(true);
            }
            self.current += 1;
        }
        Ok(false)
    }

    fn rewind(&mut self) -> Result<()> {
        for s in &mut self.sources {
            s.rewind()?;
        }
        self.current = 0;
        Ok(())
    }
}

/// A wrapper that counts passes and rows delivered — used by tests to
/// *prove* the miner is single-pass.
#[derive(Debug)]
pub struct CountingSource<S> {
    inner: S,
    /// Number of `rewind` calls (== passes started).
    pub rewinds: usize,
    /// Total rows delivered across all passes.
    pub rows_delivered: usize,
}

impl<S: RowSource> CountingSource<S> {
    /// Wraps another source.
    pub fn new(inner: S) -> Self {
        CountingSource {
            inner,
            rewinds: 0,
            rows_delivered: 0,
        }
    }
}

impl<S: RowSource> RowSource for CountingSource<S> {
    fn n_cols(&self) -> usize {
        self.inner.n_cols()
    }

    fn next_row(&mut self, buf: &mut [f64]) -> Result<bool> {
        let got = self.inner.next_row(buf)?;
        if got {
            self.rows_delivered += 1;
        }
        Ok(got)
    }

    fn rewind(&mut self) -> Result<()> {
        self.rewinds += 1;
        self.inner.rewind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap()
    }

    #[test]
    fn matrix_source_streams_all_rows() {
        let m = sample_matrix();
        let mut src = MatrixSource::new(&m);
        let mut buf = [0.0; 2];
        let mut rows = Vec::new();
        while src.next_row(&mut buf).unwrap() {
            rows.push(buf.to_vec());
        }
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], vec![5.0, 6.0]);
        // Exhausted.
        assert!(!src.next_row(&mut buf).unwrap());
        // Rewind restarts.
        src.rewind().unwrap();
        assert!(src.next_row(&mut buf).unwrap());
        assert_eq!(buf, [1.0, 2.0]);
    }

    #[test]
    fn collect_matrix_roundtrips() {
        let m = sample_matrix();
        let mut src = MatrixSource::new(&m);
        // Consume a row first; collect_matrix must still see everything.
        let mut buf = [0.0; 2];
        src.next_row(&mut buf).unwrap();
        let collected = src.collect_matrix().unwrap();
        assert_eq!(collected, m);
    }

    #[test]
    fn csv_file_source_streams_and_rewinds() {
        let dir = std::env::temp_dir().join("rr_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rows.csv");
        std::fs::write(&path, "a,b\n1,2\n\n3,4\n").unwrap();

        let mut src = CsvFileSource::open(&path, true).unwrap();
        assert_eq!(src.n_cols(), 2);
        let collected = src.collect_matrix().unwrap();
        assert_eq!(
            collected,
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
        );
        // Second pass after rewind gives the same data.
        let again = src.collect_matrix().unwrap();
        assert_eq!(again, collected);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn csv_file_source_detects_ragged_rows() {
        let dir = std::env::temp_dir().join("rr_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.csv");
        std::fs::write(&path, "1,2\n3\n").unwrap();
        let mut src = CsvFileSource::open(&path, false).unwrap();
        let mut buf = [0.0; 2];
        assert!(src.next_row(&mut buf).unwrap());
        assert!(matches!(
            src.next_row(&mut buf),
            Err(DatasetError::RaggedRows { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn csv_file_source_rejects_empty() {
        let dir = std::env::temp_dir().join("rr_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.csv");
        std::fs::write(&path, "header,only\n").unwrap();
        assert!(CsvFileSource::open(&path, true).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chain_source_concatenates_and_rewinds() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0]]).unwrap();
        let mut chain =
            ChainSource::new(vec![MatrixSource::new(&a), MatrixSource::new(&b)]).unwrap();
        assert_eq!(chain.n_cols(), 2);
        let collected = chain.collect_matrix().unwrap();
        assert_eq!(
            collected,
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap()
        );
        // A second pass after rewind sees everything again.
        assert_eq!(chain.collect_matrix().unwrap(), collected);
    }

    #[test]
    fn chain_source_validates_widths() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        assert!(ChainSource::new(vec![MatrixSource::new(&a), MatrixSource::new(&b)]).is_err());
        let empty: Vec<MatrixSource> = vec![];
        assert!(ChainSource::new(empty).is_err());
    }

    #[test]
    fn csv_file_source_exposes_header_labels() {
        let dir = std::env::temp_dir().join("rr_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labels.csv");
        std::fs::write(&path, "height, weight\n1,2\n").unwrap();
        let src = CsvFileSource::open(&path, true).unwrap();
        assert_eq!(
            src.col_labels(),
            Some(&["height".to_string(), "weight".to_string()][..])
        );
        std::fs::remove_file(&path).unwrap();

        let path = dir.join("nolabels.csv");
        std::fs::write(&path, "1,2\n").unwrap();
        let src = CsvFileSource::open(&path, false).unwrap();
        assert!(src.col_labels().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn csv_file_source_rejects_bad_cells_with_location() {
        let dir = std::env::temp_dir().join("rr_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("badcell.csv");
        std::fs::write(&path, "1,2\n3,nan\n5,\n").unwrap();
        let mut src = CsvFileSource::open(&path, false).unwrap();
        let mut buf = [0.0; 2];
        assert!(src.next_row(&mut buf).unwrap());
        assert!(matches!(
            src.next_row(&mut buf),
            Err(DatasetError::NonFinite { line: 2, column: 1, .. })
        ));
        // The poisoned line was consumed; the next error is the empty cell.
        assert!(matches!(
            src.next_row(&mut buf),
            Err(DatasetError::EmptyCell { line: 3, column: 1 })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    // Satellite: a source that errored mid-stream must be safely
    // rewindable — rewinding after the failure yields the full clean
    // stream from the top, not a stream starting past the bad row.
    #[test]
    fn csv_file_source_rewinds_cleanly_after_error() {
        let dir = std::env::temp_dir().join("rr_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rewind_after_error.csv");
        std::fs::write(&path, "a,b\n1,2\n3,oops\n5,6\n").unwrap();
        let mut src = CsvFileSource::open(&path, true).unwrap();
        let mut buf = [0.0; 2];
        assert!(src.next_row(&mut buf).unwrap());
        assert!(matches!(
            src.next_row(&mut buf),
            Err(DatasetError::Parse { line: 3, column: 1, .. })
        ));
        // Rewind heals the cursor: the stream restarts at row 1 and
        // re-reports the same error at the same location.
        src.rewind().unwrap();
        assert!(src.next_row(&mut buf).unwrap());
        assert_eq!(buf, [1.0, 2.0]);
        assert!(matches!(
            src.next_row(&mut buf),
            Err(DatasetError::Parse { line: 3, column: 1, .. })
        ));
        // And after fixing the file on disk, the same (re-opened) path
        // streams clean end to end.
        std::fs::write(&path, "a,b\n1,2\n3,4\n5,6\n").unwrap();
        let mut src = CsvFileSource::open(&path, true).unwrap();
        let collected = src.collect_matrix().unwrap();
        assert_eq!(
            collected,
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn boxed_and_borrowed_sources_delegate() {
        let m = sample_matrix();
        let mut boxed: Box<dyn RowSource + '_> = Box::new(MatrixSource::new(&m));
        assert_eq!(boxed.n_cols(), 2);
        assert_eq!(boxed.collect_matrix().unwrap(), m);
        let mut inner = MatrixSource::new(&m);
        let mut borrowed: &mut dyn RowSource = &mut inner;
        assert_eq!(borrowed.collect_matrix().unwrap(), m);
    }

    #[test]
    fn counting_source_tracks_traffic() {
        let m = sample_matrix();
        let mut src = CountingSource::new(MatrixSource::new(&m));
        let _ = src.collect_matrix().unwrap();
        assert_eq!(src.rewinds, 1);
        assert_eq!(src.rows_delivered, 3);
    }
}
