//! Seeded train/test splits.
//!
//! The paper (Sec. 4.3, 5) derives rules from a 90% training portion and
//! measures the guessing error on the held-out 10%. Splits here are
//! seeded `StdRng` shuffles, so every experiment is reproducible.

use crate::{DataMatrix, DatasetError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A train/test partition of a [`DataMatrix`].
#[derive(Debug, Clone)]
pub struct Split {
    /// Training portion (paper: 90%).
    pub train: DataMatrix,
    /// Held-out testing portion (paper: 10%).
    pub test: DataMatrix,
    /// Original row indices that went into `train`.
    pub train_indices: Vec<usize>,
    /// Original row indices that went into `test`.
    pub test_indices: Vec<usize>,
}

/// Splits the rows of `data` into train/test with `train_fraction` of rows
/// (rounded down, but at least one row on each side) going to training.
///
/// Returns an error when `train_fraction` is outside `(0, 1)` or the
/// matrix has fewer than two rows.
pub fn train_test_split(data: &DataMatrix, train_fraction: f64, seed: u64) -> Result<Split> {
    if !(train_fraction > 0.0 && train_fraction < 1.0) {
        return Err(DatasetError::Invalid(format!(
            "train_fraction must be in (0, 1), got {train_fraction}"
        )));
    }
    let n = data.n_rows();
    if n < 2 {
        return Err(DatasetError::Invalid(format!(
            "need at least 2 rows to split, got {n}"
        )));
    }

    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);

    let mut n_train = ((n as f64) * train_fraction).floor() as usize;
    n_train = n_train.clamp(1, n - 1);

    let train_indices = indices[..n_train].to_vec();
    let test_indices = indices[n_train..].to_vec();
    Ok(Split {
        train: data.select_rows(&train_indices),
        test: data.select_rows(&test_indices),
        train_indices,
        test_indices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Matrix;

    fn data(n: usize) -> DataMatrix {
        DataMatrix::new(Matrix::from_fn(n, 3, |i, j| (i * 3 + j) as f64))
    }

    #[test]
    fn split_sizes_match_fraction() {
        let s = train_test_split(&data(100), 0.9, 42).unwrap();
        assert_eq!(s.train.n_rows(), 90);
        assert_eq!(s.test.n_rows(), 10);
        assert_eq!(s.train_indices.len(), 90);
        assert_eq!(s.test_indices.len(), 10);
    }

    #[test]
    fn split_is_a_partition() {
        let s = train_test_split(&data(37), 0.8, 7).unwrap();
        let mut all: Vec<usize> = s
            .train_indices
            .iter()
            .chain(&s.test_indices)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn rows_are_copied_correctly() {
        let d = data(20);
        let s = train_test_split(&d, 0.5, 3).unwrap();
        for (k, &orig) in s.train_indices.iter().enumerate() {
            assert_eq!(s.train.row(k), d.row(orig));
        }
        for (k, &orig) in s.test_indices.iter().enumerate() {
            assert_eq!(s.test.row(k), d.row(orig));
        }
    }

    #[test]
    fn same_seed_same_split() {
        let d = data(50);
        let a = train_test_split(&d, 0.9, 123).unwrap();
        let b = train_test_split(&d, 0.9, 123).unwrap();
        assert_eq!(a.train_indices, b.train_indices);
        let c = train_test_split(&d, 0.9, 124).unwrap();
        assert_ne!(a.train_indices, c.train_indices);
    }

    #[test]
    fn both_sides_nonempty_even_for_extreme_fractions() {
        let d = data(5);
        let s = train_test_split(&d, 0.99, 1).unwrap();
        assert!(s.test.n_rows() >= 1);
        let s = train_test_split(&d, 0.01, 1).unwrap();
        assert!(s.train.n_rows() >= 1);
    }

    #[test]
    fn invalid_arguments_rejected() {
        let d = data(10);
        assert!(train_test_split(&d, 0.0, 1).is_err());
        assert!(train_test_split(&d, 1.0, 1).is_err());
        assert!(train_test_split(&d, -0.5, 1).is_err());
        assert!(train_test_split(&data(1), 0.5, 1).is_err());
    }
}
