//! Two-pass column statistics: the numerical *oracle* for the single-pass
//! covariance accumulator in the core crate.
//!
//! The paper's Fig. 2a computes the covariance matrix in one pass using the
//! raw-moment formula `C = sum(x_i x_l) - N avg_i avg_l`. That formula is
//! fast but can suffer catastrophic cancellation; this module computes the
//! same quantities the numerically safe way (center first, then
//! accumulate), so tests can quantify the single-pass error.

use crate::Result;
use linalg::Matrix;

/// Per-column summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column means, length `M`.
    pub means: Vec<f64>,
    /// Column population variances (divide by `N`), length `M`.
    pub variances: Vec<f64>,
    /// Column minima.
    pub mins: Vec<f64>,
    /// Column maxima.
    pub maxs: Vec<f64>,
    /// Number of rows observed.
    pub n: usize,
}

/// Computes per-column mean/variance/min/max in two passes.
pub fn column_stats(x: &Matrix) -> ColumnStats {
    let (n, m) = x.shape();
    let mut means = vec![0.0; m];
    let mut mins = vec![f64::INFINITY; m];
    let mut maxs = vec![f64::NEG_INFINITY; m];
    for row in x.row_iter() {
        for j in 0..m {
            means[j] += row[j];
            mins[j] = mins[j].min(row[j]);
            maxs[j] = maxs[j].max(row[j]);
        }
    }
    if n > 0 {
        for mj in &mut means {
            *mj /= n as f64;
        }
    }
    let mut variances = vec![0.0; m];
    for row in x.row_iter() {
        for j in 0..m {
            let d = row[j] - means[j];
            variances[j] += d * d;
        }
    }
    if n > 0 {
        for vj in &mut variances {
            *vj /= n as f64;
        }
    }
    if n == 0 {
        mins = vec![f64::NAN; m];
        maxs = vec![f64::NAN; m];
    }
    ColumnStats {
        means,
        variances,
        mins,
        maxs,
        n,
    }
}

/// Centers a matrix column-wise: returns `(X_c, means)` where every column
/// of `X_c` has zero mean. This is the paper's `X_c`.
pub fn center_columns(x: &Matrix) -> (Matrix, Vec<f64>) {
    let stats = column_stats(x);
    let mut xc = x.clone();
    for i in 0..x.rows() {
        let row = xc.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            *v -= stats.means[j];
        }
    }
    (xc, stats.means)
}

/// Reference covariance (scatter) matrix `C = X_c^t X_c` computed the
/// numerically safe two-pass way (paper Eq. 2; note the paper does not
/// divide by `N` — this is the *scatter* matrix, and eigenvectors are
/// unaffected by the scaling).
pub fn covariance_two_pass(x: &Matrix) -> Result<Matrix> {
    let (xc, _) = center_columns(x);
    // X_c is tall and thin (N >> M); matmul_tn forms X_c^t X_c without
    // materializing the N x M transpose.
    Ok(xc.matmul_tn(&xc)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Matrix {
        Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]).unwrap()
    }

    #[test]
    fn stats_on_known_matrix() {
        let s = column_stats(&x());
        assert_eq!(s.means, vec![2.0, 20.0]);
        // Population variance of {1,2,3} is 2/3.
        assert!((s.variances[0] - 2.0 / 3.0).abs() < 1e-15);
        assert!((s.variances[1] - 200.0 / 3.0).abs() < 1e-15);
        assert_eq!(s.mins, vec![1.0, 10.0]);
        assert_eq!(s.maxs, vec![3.0, 30.0]);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn stats_on_empty_matrix() {
        let s = column_stats(&Matrix::zeros(0, 2));
        assert_eq!(s.n, 0);
        assert_eq!(s.means, vec![0.0, 0.0]);
        assert!(s.mins.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn centering_zeroes_column_means() {
        let (xc, means) = center_columns(&x());
        assert_eq!(means, vec![2.0, 20.0]);
        let s = column_stats(&xc);
        for m in s.means {
            assert!(m.abs() < 1e-15);
        }
        // Variance is translation invariant.
        assert!((s.variances[0] - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn covariance_on_known_matrix() {
        // Columns are perfectly correlated: col1 = 10 * col0.
        let c = covariance_two_pass(&x()).unwrap();
        assert!((c[(0, 0)] - 2.0).abs() < 1e-14);
        assert!((c[(0, 1)] - 20.0).abs() < 1e-14);
        assert!((c[(1, 0)] - 20.0).abs() < 1e-14);
        assert!((c[(1, 1)] - 200.0).abs() < 1e-14);
    }

    #[test]
    fn covariance_is_symmetric_psd() {
        let m = Matrix::from_rows(&[
            &[1.0, 5.0, -2.0],
            &[2.0, 3.0, 0.0],
            &[4.0, -1.0, 1.0],
            &[0.5, 2.0, 7.0],
        ])
        .unwrap();
        let c = covariance_two_pass(&m).unwrap();
        assert!(c.is_symmetric(1e-12));
        let e = linalg::eigen::SymmetricEigen::new(&c).unwrap();
        for l in e.eigenvalues {
            assert!(l > -1e-10, "covariance eigenvalue {l} negative");
        }
    }

    #[test]
    fn constant_column_has_zero_variance() {
        let m = Matrix::from_rows(&[&[5.0, 1.0], &[5.0, 2.0], &[5.0, 3.0]]).unwrap();
        let s = column_stats(&m);
        assert_eq!(s.variances[0], 0.0);
        let c = covariance_two_pass(&m).unwrap();
        assert_eq!(c[(0, 0)], 0.0);
        assert_eq!(c[(0, 1)], 0.0);
    }
}
