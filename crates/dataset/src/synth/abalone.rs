//! Synthetic stand-in for the UCI `abalone` dataset (4177 x 7).
//!
//! The real dataset's seven physical measurements (length, diameter,
//! height, whole/shucked/viscera/shell weight) are all monotone functions
//! of the animal's age/size, making the table famously close to rank one:
//! lengths scale linearly with size, weights roughly with its cube. That
//! near-collinearity is exactly why Ratio Rules beat column averages by
//! the largest margin on this dataset, so the generator reproduces it: a
//! single lognormal "size" latent variable drives all seven attributes
//! with attribute-specific exponents plus small multiplicative noise.

use crate::synth::standard_normal;
use crate::{DataMatrix, Result};
use linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Attribute names matching the UCI abalone schema (sans the categorical
/// `sex` column, which the paper's numeric matrix also omits).
pub const ABALONE_ATTRS: [&str; 7] = [
    "length",
    "diameter",
    "height",
    "whole weight",
    "shucked weight",
    "viscera weight",
    "shell weight",
];

/// Scale coefficients and size exponents per attribute: value =
/// `coeff * size^exponent * noise`. Lengths grow linearly with size,
/// weights cubically.
const COEFF: [f64; 7] = [0.52, 0.41, 0.14, 0.83, 0.36, 0.18, 0.24];
const EXPONENT: [f64; 7] = [1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0];

/// Generates a 4177 x 7 `abalone`-like dataset.
pub fn abalone_like(seed: u64) -> Result<DataMatrix> {
    abalone_like_sized(4177, seed)
}

/// Generates an `abalone`-like dataset with a custom row count.
pub fn abalone_like_sized(n_rows: usize, seed: u64) -> Result<DataMatrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = ABALONE_ATTRS.len();
    let mut data = Vec::with_capacity(n_rows * m);
    for _ in 0..n_rows {
        // Lognormal size in roughly (0.4, 1.6), centered near 1.
        let size = (standard_normal(&mut rng) * 0.25).exp();
        for j in 0..m {
            // Small multiplicative measurement noise (5%).
            let noise = 1.0 + standard_normal(&mut rng) * 0.05;
            let v = COEFF[j] * size.powf(EXPONENT[j]) * noise.max(0.2);
            data.push(v.max(0.0));
        }
    }
    let matrix = Matrix::from_vec(n_rows, m, data)?;
    let mut dm = DataMatrix::new(matrix);
    dm.set_col_labels(ABALONE_ATTRS.iter().map(|s| s.to_string()).collect())?;
    Ok(dm)
}

/// Generates the mixed-type variant with the UCI `sex` column restored
/// (M / F / I) — for the paper's future-work extension to categorical
/// data. Infants (`I`) are drawn from the small end of the size
/// distribution, as in the real dataset, so sex genuinely correlates
/// with the measurements.
pub fn abalone_like_mixed(
    n_rows: usize,
    seed: u64,
) -> Result<Vec<crate::categorical::MixedColumn>> {
    use crate::categorical::MixedColumn;
    let mut rng = StdRng::seed_from_u64(seed);
    let m = ABALONE_ATTRS.len();
    let mut numeric: Vec<Vec<f64>> = vec![Vec::with_capacity(n_rows); m];
    let mut sex: Vec<String> = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let size = (standard_normal(&mut rng) * 0.25).exp();
        // Small animals are overwhelmingly infants; adults split M/F.
        let label = if size < 0.85 {
            if standard_normal(&mut rng) > 1.0 {
                "M"
            } else {
                "I"
            }
        } else if standard_normal(&mut rng) > 0.0 {
            "M"
        } else {
            "F"
        };
        sex.push(label.to_string());
        for j in 0..m {
            let noise = 1.0 + standard_normal(&mut rng) * 0.05;
            let v = COEFF[j] * size.powf(EXPONENT[j]) * noise.max(0.2);
            numeric[j].push(v.max(0.0));
        }
    }
    let mut cols = vec![MixedColumn::Categorical {
        name: "sex".into(),
        values: sex,
    }];
    for (j, values) in numeric.into_iter().enumerate() {
        cols.push(MixedColumn::Numeric {
            name: ABALONE_ATTRS[j].into(),
            values,
        });
    }
    Ok(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use linalg::eigen::SymmetricEigen;

    #[test]
    fn shape_and_labels() {
        let dm = abalone_like(1).unwrap();
        assert_eq!(dm.n_rows(), 4177);
        assert_eq!(dm.n_cols(), 7);
        assert_eq!(dm.col_labels()[3], "whole weight");
        assert!(dm.matrix().data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn strongly_rank_one() {
        let dm = abalone_like(2).unwrap();
        let c = stats::covariance_two_pass(dm.matrix()).unwrap();
        let e = SymmetricEigen::new(&c).unwrap();
        // The first eigenvector must capture the vast majority of the
        // variance — the property the paper's 5x win relies on.
        assert!(
            e.energy_fraction(1) > 0.90,
            "energy(1) = {}",
            e.energy_fraction(1)
        );
    }

    #[test]
    fn lengths_and_weights_positively_correlated() {
        let dm = abalone_like(3).unwrap();
        let c = stats::covariance_two_pass(dm.matrix()).unwrap();
        for i in 0..7 {
            for j in 0..7 {
                assert!(c[(i, j)] > 0.0, "cov({i},{j}) = {} not positive", c[(i, j)]);
            }
        }
    }

    #[test]
    fn mixed_variant_has_sex_column_correlated_with_size() {
        use crate::categorical::MixedColumn;
        let cols = abalone_like_mixed(800, 5).unwrap();
        assert_eq!(cols.len(), 8);
        let MixedColumn::Categorical { name, values: sex } = &cols[0] else {
            panic!("first column must be categorical sex");
        };
        assert_eq!(name, "sex");
        // All three levels present.
        for level in ["M", "F", "I"] {
            assert!(sex.iter().any(|s| s == level), "missing level {level}");
        }
        // Infants are smaller on average.
        let MixedColumn::Numeric {
            values: lengths, ..
        } = &cols[1]
        else {
            panic!("second column must be numeric length");
        };
        let mean = |pred: &dyn Fn(&str) -> bool| {
            let sel: Vec<f64> = sex
                .iter()
                .zip(lengths)
                .filter(|(s, _)| pred(s))
                .map(|(_, &l)| l)
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        let infants = mean(&|s| s == "I");
        let adults = mean(&|s| s != "I");
        assert!(
            infants < adults,
            "infant mean {infants} vs adult mean {adults}"
        );
    }

    #[test]
    fn custom_size_and_determinism() {
        let a = abalone_like_sized(100, 9).unwrap();
        assert_eq!(a.n_rows(), 100);
        let b = abalone_like_sized(100, 9).unwrap();
        assert_eq!(a.matrix(), b.matrix());
    }
}
