//! Latent-factor Gaussian dataset generation.
//!
//! Each record is `mean + sum_f z_f * sigma_f * loading_f + eps`, where
//! `z_f ~ N(0,1)` are independent latent factors with loading vectors over
//! the attributes, and `eps` is per-attribute Gaussian noise. Datasets
//! built this way have covariance `sum_f sigma_f^2 L_f L_f^t + diag(noise^2)`
//! — i.e. their top eigenvectors are (rotations of) the planted loadings,
//! which is exactly what Ratio Rules are supposed to recover.

use crate::synth::standard_normal;
use crate::{DataMatrix, DatasetError, Result};
use linalg::cholesky::Cholesky;
use linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One planted latent factor.
#[derive(Debug, Clone)]
pub struct Factor {
    /// Loading of the factor on each attribute (length = M). Does not need
    /// to be normalized; it is used as-is.
    pub loadings: Vec<f64>,
    /// Standard deviation of the factor's latent variable.
    pub sigma: f64,
}

/// Specification of a latent-factor dataset.
#[derive(Debug, Clone)]
pub struct LatentFactorSpec {
    /// Number of records to generate.
    pub n_rows: usize,
    /// Attribute means (length = M).
    pub means: Vec<f64>,
    /// Planted factors (each loading vector has length M).
    pub factors: Vec<Factor>,
    /// Per-attribute independent noise standard deviations (length = M).
    pub noise: Vec<f64>,
    /// Clamp generated values at zero (dollar amounts / count statistics
    /// cannot be negative).
    pub nonnegative: bool,
}

impl LatentFactorSpec {
    /// Number of attributes `M`.
    pub fn n_cols(&self) -> usize {
        self.means.len()
    }

    /// Validates internal consistency (all vectors length M, positive
    /// sigmas).
    pub fn validate(&self) -> Result<()> {
        let m = self.n_cols();
        if m == 0 || self.n_rows == 0 {
            return Err(DatasetError::Invalid("empty latent-factor spec".into()));
        }
        if self.noise.len() != m {
            return Err(DatasetError::Invalid(format!(
                "noise vector length {} != {} attributes",
                self.noise.len(),
                m
            )));
        }
        for (k, f) in self.factors.iter().enumerate() {
            if f.loadings.len() != m {
                return Err(DatasetError::Invalid(format!(
                    "factor {k} has {} loadings for {m} attributes",
                    f.loadings.len()
                )));
            }
            if f.sigma <= 0.0 {
                return Err(DatasetError::Invalid(format!(
                    "factor {k} sigma must be positive, got {}",
                    f.sigma
                )));
            }
        }
        if self.noise.iter().any(|&s| s < 0.0) {
            return Err(DatasetError::Invalid("negative noise sigma".into()));
        }
        Ok(())
    }

    /// Generates the dataset with a seeded RNG.
    pub fn generate(&self, seed: u64) -> Result<DataMatrix> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let m = self.n_cols();
        let mut data = Vec::with_capacity(self.n_rows * m);
        let mut row = vec![0.0_f64; m];
        for _ in 0..self.n_rows {
            row.copy_from_slice(&self.means);
            for f in &self.factors {
                let z = standard_normal(&mut rng) * f.sigma;
                for (v, &l) in row.iter_mut().zip(&f.loadings) {
                    *v += z * l;
                }
            }
            for (v, &s) in row.iter_mut().zip(&self.noise) {
                if s > 0.0 {
                    *v += standard_normal(&mut rng) * s;
                }
                if self.nonnegative {
                    *v = v.max(0.0);
                }
            }
            data.extend_from_slice(&row);
        }
        Ok(DataMatrix::new(Matrix::from_vec(self.n_rows, m, data)?))
    }

    /// The population covariance implied by the spec (before any
    /// nonnegativity clamping): `sum sigma^2 L L^t + diag(noise^2)`.
    pub fn population_covariance(&self) -> Matrix {
        let m = self.n_cols();
        let mut c = Matrix::zeros(m, m);
        for f in &self.factors {
            let s2 = f.sigma * f.sigma;
            for i in 0..m {
                for j in 0..m {
                    c[(i, j)] += s2 * f.loadings[i] * f.loadings[j];
                }
            }
        }
        for j in 0..m {
            c[(j, j)] += self.noise[j] * self.noise[j];
        }
        c
    }
}

/// Samples `n_rows` Gaussian records with the given mean and covariance via
/// the Cholesky factor (covariance must be SPD).
pub fn gaussian_from_covariance(
    n_rows: usize,
    means: &[f64],
    covariance: &Matrix,
    seed: u64,
) -> Result<DataMatrix> {
    if covariance.rows() != means.len() {
        return Err(DatasetError::Invalid(format!(
            "covariance side {} != means length {}",
            covariance.rows(),
            means.len()
        )));
    }
    let chol = Cholesky::new(covariance)?;
    let m = means.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n_rows * m);
    let mut z = vec![0.0_f64; m];
    for _ in 0..n_rows {
        for zi in &mut z {
            *zi = standard_normal(&mut rng);
        }
        let correlated = chol.apply(&z)?;
        for (j, &v) in correlated.iter().enumerate() {
            data.push(means[j] + v);
        }
    }
    Ok(DataMatrix::new(Matrix::from_vec(n_rows, m, data)?))
}

/// Replaces `count` randomly chosen rows with scaled-up "outlier" versions
/// (multiplying the deviation from the column means by `factor`). Returns
/// the indices of the outlier rows.
///
/// Used to plant Jordan/Rodman-style extremes for the outlier-detection
/// experiments (paper Sec. 6.1).
pub fn inject_outliers(
    data: &mut DataMatrix,
    count: usize,
    factor: f64,
    seed: u64,
) -> Result<Vec<usize>> {
    let n = data.n_rows();
    if count >= n {
        return Err(DatasetError::Invalid(format!(
            "{count} outliers in {n} rows"
        )));
    }
    let stats = crate::stats::column_stats(data.matrix());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < count {
        chosen.insert(rng.gen_range(0..n));
    }
    let mut matrix = data.matrix().clone();
    for &i in &chosen {
        let row = matrix.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            *v = stats.means[j] + (*v - stats.means[j]) * factor;
        }
    }
    let labels_r = data.row_labels().to_vec();
    let labels_c = data.col_labels().to_vec();
    *data = DataMatrix::with_labels(matrix, labels_r, labels_c)?;
    Ok(chosen.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn two_factor_spec() -> LatentFactorSpec {
        LatentFactorSpec {
            n_rows: 4000,
            means: vec![10.0, 20.0, 5.0],
            factors: vec![
                Factor {
                    loadings: vec![1.0, 2.0, 0.5],
                    sigma: 3.0,
                },
                Factor {
                    loadings: vec![0.5, -0.5, 1.0],
                    sigma: 1.0,
                },
            ],
            noise: vec![0.1, 0.1, 0.1],
            nonnegative: false,
        }
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut s = two_factor_spec();
        s.noise = vec![0.1];
        assert!(s.validate().is_err());

        let mut s = two_factor_spec();
        s.factors[0].loadings = vec![1.0];
        assert!(s.validate().is_err());

        let mut s = two_factor_spec();
        s.factors[0].sigma = 0.0;
        assert!(s.validate().is_err());

        let mut s = two_factor_spec();
        s.n_rows = 0;
        assert!(s.validate().is_err());

        let mut s = two_factor_spec();
        s.noise = vec![-1.0, 0.1, 0.1];
        assert!(s.validate().is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let s = LatentFactorSpec {
            n_rows: 10,
            ..two_factor_spec()
        };
        let a = s.generate(5).unwrap();
        let b = s.generate(5).unwrap();
        assert_eq!(a.matrix(), b.matrix());
        let c = s.generate(6).unwrap();
        assert_ne!(a.matrix(), c.matrix());
    }

    #[test]
    fn sample_covariance_approaches_population() {
        let s = two_factor_spec();
        let data = s.generate(42).unwrap();
        let expected = s.population_covariance();
        // Two-pass sample covariance (normalized by N).
        let scatter = stats::covariance_two_pass(data.matrix()).unwrap();
        let sample = scatter.scale(1.0 / data.n_rows() as f64);
        let diff = sample.max_abs_diff(&expected).unwrap();
        let scale = expected.max_abs();
        assert!(
            diff / scale < 0.1,
            "relative covariance error {}",
            diff / scale
        );
    }

    #[test]
    fn sample_means_approach_spec_means() {
        let s = two_factor_spec();
        let data = s.generate(43).unwrap();
        let st = stats::column_stats(data.matrix());
        for (got, want) in st.means.iter().zip(&s.means) {
            assert!((got - want).abs() < 0.3, "mean {got} vs {want}");
        }
    }

    #[test]
    fn nonnegative_clamps() {
        let s = LatentFactorSpec {
            n_rows: 500,
            means: vec![0.0, 0.0],
            factors: vec![Factor {
                loadings: vec![1.0, 1.0],
                sigma: 5.0,
            }],
            noise: vec![1.0, 1.0],
            nonnegative: true,
        };
        let data = s.generate(1).unwrap();
        assert!(data.matrix().data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn gaussian_from_covariance_matches_target() {
        let cov = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 2.0]]).unwrap();
        let data = gaussian_from_covariance(6000, &[1.0, -1.0], &cov, 9).unwrap();
        let scatter = stats::covariance_two_pass(data.matrix()).unwrap();
        let sample = scatter.scale(1.0 / data.n_rows() as f64);
        assert!(sample.max_abs_diff(&cov).unwrap() < 0.2);
        assert!(gaussian_from_covariance(10, &[0.0], &cov, 9).is_err());
    }

    #[test]
    fn inject_outliers_scales_deviations() {
        let s = LatentFactorSpec {
            n_rows: 100,
            ..two_factor_spec()
        };
        let mut data = s.generate(11).unwrap();
        let before = data.matrix().clone();
        let idx = inject_outliers(&mut data, 3, 10.0, 77).unwrap();
        assert_eq!(idx.len(), 3);
        // Non-outlier rows untouched.
        for i in 0..100 {
            if !idx.contains(&i) {
                assert_eq!(data.row(i), before.row(i), "row {i} modified");
            }
        }
        // Outlier rows have larger deviation from the mean.
        let st = stats::column_stats(&before);
        for &i in &idx {
            let dev_before: f64 = before
                .row(i)
                .iter()
                .zip(&st.means)
                .map(|(v, m)| (v - m).abs())
                .sum();
            let dev_after: f64 = data
                .row(i)
                .iter()
                .zip(&st.means)
                .map(|(v, m)| (v - m).abs())
                .sum();
            assert!(dev_after > dev_before * 5.0, "outlier {i} not amplified");
        }
        assert!(inject_outliers(&mut data, 100, 2.0, 1).is_err());
    }
}
