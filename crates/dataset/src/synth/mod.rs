//! Synthetic dataset generators.
//!
//! The paper evaluates on three real datasets (`nba`, `baseball`,
//! `abalone`) and one synthetic one (IBM Quest, for scale-up). The real
//! files are not redistributable here, so this module generates synthetic
//! stand-ins that preserve the *statistical structure* the experiments
//! depend on — see DESIGN.md ("Substitutions") for the per-dataset
//! rationale.
//!
//! * [`latent`] — the shared machinery: latent-factor Gaussian models and
//!   Cholesky-based correlated sampling.
//! * [`sports`] — `nba_like` (459x12) and `baseball_like` (1574x17).
//! * [`abalone`] — `abalone_like` (4177x7), near-rank-1 physical
//!   measurements.
//! * [`quest`] — Quest-style market-basket amounts for the Fig. 8 scale-up.

pub mod abalone;
pub mod latent;
pub mod patients;
pub mod quest;
pub mod sports;
pub mod text;

use rand::Rng;

/// Samples a standard normal via Box–Muller (rand 0.8 has no normal
/// distribution without `rand_distr`; this keeps the dependency set to the
/// approved list).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would give ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn standard_normal_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
