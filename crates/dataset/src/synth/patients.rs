//! Patients-by-measurements generator (the paper's clinical
//! interpretation: "patients and medical test measurements (blood
//! pressure, body weight, etc.)", Sec. 4.1).
//!
//! Physiology gives medical panels strong cross-correlations: systolic
//! and diastolic pressure track each other; weight drives BMI, glucose
//! and pressure; haemoglobin and haematocrit are almost proportional.
//! The generator plants exactly those couplings, so Ratio Rules recover
//! clinically readable factors ("body habitus", "blood pressure",
//! "red-cell mass"), and a corrupted record (a data-entry error) shows
//! up through reconstruction.

use crate::synth::standard_normal;
use crate::{DataMatrix, DatasetError, Result};
use linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measurement names for the patient panel.
pub const PATIENT_ATTRS: [&str; 10] = [
    "weight kg",
    "bmi",
    "systolic mmHg",
    "diastolic mmHg",
    "heart rate",
    "glucose mg/dL",
    "cholesterol mg/dL",
    "hemoglobin g/dL",
    "hematocrit %",
    "creatinine mg/dL",
];

/// Generates an `n_rows x 10` patient panel.
pub fn patients_like(n_rows: usize, seed: u64) -> Result<DataMatrix> {
    if n_rows == 0 {
        return Err(DatasetError::Invalid("patients: zero rows".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let m = PATIENT_ATTRS.len();
    let mut data = Vec::with_capacity(n_rows * m);
    for _ in 0..n_rows {
        // Latent drivers.
        let habitus = standard_normal(&mut rng); // body size / adiposity
        let vascular = standard_normal(&mut rng); // blood-pressure tone
        let red_cell = standard_normal(&mut rng); // red-cell mass
        let noise = |rng: &mut StdRng, s: f64| standard_normal(rng) * s;

        let weight = 78.0 + 14.0 * habitus + noise(&mut rng, 2.0);
        let bmi = 26.0 + 4.5 * habitus + noise(&mut rng, 0.8);
        let systolic = 122.0 + 9.0 * vascular + 5.0 * habitus + noise(&mut rng, 3.0);
        let diastolic = 79.0 + 6.0 * vascular + 2.5 * habitus + noise(&mut rng, 2.5);
        let heart_rate = 72.0 + 4.0 * vascular - 1.5 * red_cell + noise(&mut rng, 4.0);
        let glucose = 96.0 + 9.0 * habitus + noise(&mut rng, 6.0);
        let cholesterol = 190.0 + 16.0 * habitus + 5.0 * vascular + noise(&mut rng, 12.0);
        let hemoglobin = 14.2 + 1.1 * red_cell + noise(&mut rng, 0.2);
        let hematocrit = 42.5 + 3.2 * red_cell + noise(&mut rng, 0.5);
        let creatinine = 0.95 + 0.12 * habitus + 0.05 * red_cell + noise(&mut rng, 0.06);

        data.extend_from_slice(&[
            weight.max(30.0),
            bmi.max(12.0),
            systolic.max(70.0),
            diastolic.max(40.0),
            heart_rate.max(35.0),
            glucose.max(50.0),
            cholesterol.max(90.0),
            hemoglobin.max(6.0),
            hematocrit.max(20.0),
            creatinine.max(0.3),
        ]);
    }
    let matrix = Matrix::from_vec(n_rows, m, data)?;
    let mut dm = DataMatrix::new(matrix);
    dm.set_col_labels(PATIENT_ATTRS.iter().map(|s| s.to_string()).collect())?;
    Ok(dm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn shape_labels_and_plausible_ranges() {
        let dm = patients_like(500, 1).unwrap();
        assert_eq!(dm.n_rows(), 500);
        assert_eq!(dm.n_cols(), 10);
        assert_eq!(dm.col_labels()[2], "systolic mmHg");
        let s = stats::column_stats(dm.matrix());
        // Plausible clinical means.
        assert!(
            (60.0..100.0).contains(&s.means[0]),
            "weight mean {}",
            s.means[0]
        );
        assert!(
            (100.0..140.0).contains(&s.means[2]),
            "systolic mean {}",
            s.means[2]
        );
        assert!(
            (12.0..17.0).contains(&s.means[7]),
            "hemoglobin mean {}",
            s.means[7]
        );
    }

    #[test]
    fn planted_couplings_are_present() {
        let dm = patients_like(3000, 2).unwrap();
        let c = stats::covariance_two_pass(dm.matrix()).unwrap();
        let corr = |i: usize, j: usize| c[(i, j)] / (c[(i, i)] * c[(j, j)]).sqrt();
        // Systolic-diastolic strongly coupled.
        assert!(corr(2, 3) > 0.5, "sys/dia corr {}", corr(2, 3));
        // Hemoglobin-hematocrit nearly proportional.
        assert!(corr(7, 8) > 0.8, "hgb/hct corr {}", corr(7, 8));
        // Weight-BMI strongly coupled.
        assert!(corr(0, 1) > 0.8, "weight/bmi corr {}", corr(0, 1));
        // Weight and hemoglobin essentially independent.
        assert!(corr(0, 7).abs() < 0.2, "weight/hgb corr {}", corr(0, 7));
    }

    #[test]
    fn deterministic_and_validated() {
        assert_eq!(
            patients_like(50, 9).unwrap().matrix(),
            patients_like(50, 9).unwrap().matrix()
        );
        assert!(patients_like(0, 1).is_err());
    }
}
