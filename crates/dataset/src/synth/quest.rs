//! Quest-style market-basket workload for the scale-up experiment.
//!
//! The paper's Fig. 8 times Ratio Rule computation on a 100,000 x 100
//! matrix "created using the Quest Synthetic Data Generation Tool" (IBM
//! Almaden). Quest builds transactions by drawing from a pool of frequent
//! itemset templates; we reproduce that mechanism with dollar amounts:
//! each customer draws a couple of "taste profiles" (itemset templates
//! with per-item typical spendings), buys those items with lognormal-ish
//! noise, and adds a few impulse purchases. The result is a sparse,
//! nonnegative, correlated matrix — the same regime the real tool
//! produces — and the scale-up experiment only needs *any* such matrix to
//! exercise the single-pass covariance path.

use crate::synth::standard_normal;
use crate::{DataMatrix, DatasetError, Result};
use linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Quest-like generator.
#[derive(Debug, Clone)]
pub struct QuestConfig {
    /// Number of transactions (rows). Paper: up to 100,000.
    pub n_rows: usize,
    /// Number of items (columns). Paper: 100.
    pub n_items: usize,
    /// Number of taste-profile templates in the pool. Quest default ~ a
    /// few thousand patterns; a few dozen suffice at M = 100.
    pub n_templates: usize,
    /// Average items per template (Quest's |I| parameter, default 4).
    pub avg_template_size: usize,
    /// Average templates per transaction.
    pub avg_templates_per_row: f64,
    /// Probability of an extra impulse purchase per item.
    pub impulse_prob: f64,
}

impl Default for QuestConfig {
    fn default() -> Self {
        QuestConfig {
            n_rows: 10_000,
            n_items: 100,
            n_templates: 25,
            avg_template_size: 4,
            avg_templates_per_row: 2.0,
            impulse_prob: 0.02,
        }
    }
}

/// A taste profile: items with typical dollar amounts.
#[derive(Debug, Clone)]
struct Template {
    items: Vec<(usize, f64)>,
}

/// Generates a Quest-like basket matrix.
pub fn generate(config: &QuestConfig, seed: u64) -> Result<DataMatrix> {
    if config.n_rows == 0 || config.n_items == 0 {
        return Err(DatasetError::Invalid("quest: empty dimensions".into()));
    }
    if config.n_templates == 0 || config.avg_template_size == 0 {
        return Err(DatasetError::Invalid(
            "quest: need at least one nonempty template".into(),
        ));
    }
    if config.avg_template_size > config.n_items {
        return Err(DatasetError::Invalid(format!(
            "quest: template size {} exceeds item count {}",
            config.avg_template_size, config.n_items
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Build the template pool.
    let templates: Vec<Template> = (0..config.n_templates)
        .map(|_| {
            // Size jitter: avg +- 2, at least 1.
            let size = (config.avg_template_size as i64 + rng.gen_range(-2..=2))
                .clamp(1, config.n_items as i64) as usize;
            let mut items = Vec::with_capacity(size);
            let mut used = std::collections::HashSet::new();
            while items.len() < size {
                let item = rng.gen_range(0..config.n_items);
                if used.insert(item) {
                    // Typical spend: $2 - $40.
                    let amount = 2.0 + rng.gen::<f64>() * 38.0;
                    items.push((item, amount));
                }
            }
            Template { items }
        })
        .collect();

    let n = config.n_rows;
    let m = config.n_items;
    let mut data = vec![0.0_f64; n * m];
    for i in 0..n {
        let row = &mut data[i * m..(i + 1) * m];
        // Number of templates for this customer: geometric-ish around avg.
        let mut k = 1;
        while (k as f64) < config.avg_templates_per_row
            && rng.gen::<f64>() < 1.0 - 1.0 / config.avg_templates_per_row
        {
            k += 1;
        }
        for _ in 0..k {
            let t = &templates[rng.gen_range(0..templates.len())];
            // Customers follow a template with a personal "volume" scale.
            let volume = (standard_normal(&mut rng) * 0.3).exp();
            for &(item, amount) in &t.items {
                // Occasionally skip an item (Quest's corruption level).
                if rng.gen::<f64>() < 0.15 {
                    continue;
                }
                let noise = (standard_normal(&mut rng) * 0.15).exp();
                row[item] += amount * volume * noise;
            }
        }
        // Impulse purchases.
        for v in row.iter_mut() {
            if rng.gen::<f64>() < config.impulse_prob {
                *v += rng.gen::<f64>() * 10.0;
            }
        }
    }

    let matrix = Matrix::from_vec(n, m, data)?;
    let mut dm = DataMatrix::new(matrix);
    dm.set_col_labels((0..m).map(|j| format!("item{j}")).collect())?;
    Ok(dm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn shape_and_nonnegativity() {
        let cfg = QuestConfig {
            n_rows: 500,
            ..QuestConfig::default()
        };
        let dm = generate(&cfg, 1).unwrap();
        assert_eq!(dm.n_rows(), 500);
        assert_eq!(dm.n_cols(), 100);
        assert!(dm.matrix().data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn matrix_is_sparse_but_not_empty() {
        let cfg = QuestConfig {
            n_rows: 500,
            ..QuestConfig::default()
        };
        let dm = generate(&cfg, 2).unwrap();
        let nonzero = dm.matrix().data().iter().filter(|&&v| v > 0.0).count() as f64;
        let frac = nonzero / (500.0 * 100.0);
        assert!(frac > 0.01, "too sparse: {frac}");
        assert!(frac < 0.60, "too dense: {frac}");
    }

    #[test]
    fn items_within_a_template_are_correlated() {
        let cfg = QuestConfig {
            n_rows: 4000,
            ..QuestConfig::default()
        };
        let dm = generate(&cfg, 3).unwrap();
        let c = stats::covariance_two_pass(dm.matrix()).unwrap();
        // There must exist strongly positively correlated item pairs
        // (co-templated items), i.e. a large positive off-diagonal
        // covariance relative to the diagonal scale.
        let mdim = dm.n_cols();
        let mut best = 0.0_f64;
        for i in 0..mdim {
            for j in (i + 1)..mdim {
                let denom = (c[(i, i)] * c[(j, j)]).sqrt();
                if denom > 0.0 {
                    best = best.max(c[(i, j)] / denom);
                }
            }
        }
        assert!(best > 0.3, "max item correlation {best}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = QuestConfig {
            n_rows: 50,
            ..QuestConfig::default()
        };
        assert_eq!(
            generate(&cfg, 9).unwrap().matrix(),
            generate(&cfg, 9).unwrap().matrix()
        );
        assert_ne!(
            generate(&cfg, 9).unwrap().matrix(),
            generate(&cfg, 10).unwrap().matrix()
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let cfg = QuestConfig {
            n_rows: 0,
            ..QuestConfig::default()
        };
        assert!(generate(&cfg, 1).is_err());
        let cfg = QuestConfig {
            n_templates: 0,
            ..QuestConfig::default()
        };
        assert!(generate(&cfg, 1).is_err());
        let cfg = QuestConfig {
            avg_template_size: 200,
            n_items: 100,
            ..QuestConfig::default()
        };
        assert!(generate(&cfg, 1).is_err());
    }
}
