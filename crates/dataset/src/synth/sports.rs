//! Synthetic stand-ins for the paper's `nba` and `baseball` datasets.
//!
//! The paper's experiments depend only on the correlation structure of
//! these tables, which is well understood (and partially documented in the
//! paper itself — Table 2 and Sec. 6.2):
//!
//! * `nba` (459 x 12): a dominant "court action" factor on which *all*
//!   statistics load positively (starters vs bench), a weaker "field
//!   position" factor contrasting rebounds against points, and a "height"
//!   factor contrasting rebounds/blocks against assists/steals; plus a few
//!   extreme players (Jordan, Rodman, Bogues) that show up as outliers.
//! * `baseball` (1574 x 17): an even more dominant playing-time factor
//!   (at-bats drive nearly every counting stat), plus power-vs-speed
//!   contrasts.
//!
//! The generators below plant exactly those factors. Attribute names match
//! the paper's Table 2 so the interpretation experiment renders the same
//! labels.

use crate::synth::latent::{Factor, LatentFactorSpec};
use crate::{DataMatrix, Result};
use linalg::Matrix;

/// Attribute names for the `nba`-like dataset (the paper's Table 2 rows).
pub const NBA_ATTRS: [&str; 12] = [
    "minutes played",
    "field goals",
    "goal attempts",
    "free throws",
    "throws attempted",
    "blocked shots",
    "fouls",
    "points",
    "offensive rebounds",
    "total rebounds",
    "assists",
    "steals",
];

/// Row indices of the planted outlier players in [`nba_like`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NbaOutliers {
    /// Extreme "court action" + scoring (the Michael Jordan analogue).
    pub jordan: usize,
    /// Extreme rebounding with modest scoring (the Dennis Rodman analogue).
    pub rodman: usize,
    /// Extreme assists/steals with no rebounding (the Muggsy Bogues
    /// analogue).
    pub bogues: usize,
}

/// Generates a 459 x 12 `nba`-like dataset.
///
/// Returns the data and the indices of the three planted outliers. All
/// values are clamped nonnegative (they are season counting statistics).
pub fn nba_like(seed: u64) -> Result<(DataMatrix, NbaOutliers)> {
    // Factor 1, "court action": everything scales with minutes on court.
    // Loadings roughly follow the paper's RR1 (minutes .808, points .406
    // => about 1 point per 2 minutes).
    let court_action = Factor {
        loadings: vec![
            0.81, // minutes
            0.16, // field goals
            0.33, // goal attempts
            0.09, // free throws
            0.12, // throws attempted
            0.03, // blocked shots
            0.10, // fouls
            0.41, // points
            0.05, // offensive rebounds
            0.15, // total rebounds
            0.12, // assists
            0.05, // steals
        ],
        sigma: 820.0,
    };
    // Factor 2, "field position": rebounds up, points/minutes down
    // (paper RR2: rebounds negatively correlated with points, ~2.45:1).
    let field_position = Factor {
        loadings: vec![
            -0.07, // minutes
            -0.08, // field goals
            -0.18, // goal attempts
            -0.05, // free throws
            -0.05, // throws attempted
            0.10,  // blocked shots
            0.08,  // fouls
            -0.20, // points
            0.16,  // offensive rebounds
            0.49,  // total rebounds
            0.00,  // assists
            -0.02, // steals
        ],
        sigma: 260.0,
    };
    // Factor 3, "height": rebounds/blocks vs assists/steals (paper RR3).
    let height = Factor {
        loadings: vec![
            0.00,  // minutes
            0.00,  // field goals
            0.00,  // goal attempts
            0.00,  // free throws
            0.00,  // throws attempted
            0.15,  // blocked shots
            0.03,  // fouls
            0.00,  // points
            0.15,  // offensive rebounds
            0.45,  // total rebounds
            -0.72, // assists
            -0.15, // steals
        ],
        sigma: 190.0,
    };

    // Orthogonalize the planted factors (Gram–Schmidt, strongest first).
    // Eigenvectors of the resulting covariance then align with the planted
    // loadings instead of arbitrary rotations within their span, so the
    // mined RR1–RR3 carry the intended "court action" / "field position" /
    // "height" semantics.
    let (court_action, field_position, height) =
        orthogonalize3(court_action, field_position, height);

    let spec = LatentFactorSpec {
        n_rows: 456, // 459 total after appending the three outliers
        means: vec![
            1200.0, // minutes
            210.0,  // field goals
            450.0,  // goal attempts
            110.0,  // free throws
            150.0,  // throws attempted
            30.0,   // blocked shots
            120.0,  // fouls
            540.0,  // points
            65.0,   // offensive rebounds
            250.0,  // total rebounds
            130.0,  // assists
            45.0,   // steals
        ],
        factors: vec![court_action, field_position, height],
        noise: vec![
            60.0, 18.0, 35.0, 12.0, 15.0, 8.0, 14.0, 40.0, 9.0, 20.0, 16.0, 8.0,
        ],
        nonnegative: true,
    };
    let base = spec.generate(seed)?;

    // Append the three named outliers as explicit rows (values chosen to
    // echo the paper's description: Jordan 2404 points / 91 rebounds;
    // Rodman 800 points / 523 rebounds; Bogues tiny but assist-heavy).
    let jordan = vec![
        3102.0, 943.0, 1932.0, 491.0, 580.0, 75.0, 188.0, 2404.0, 91.0, 420.0, 489.0, 182.0,
    ];
    let rodman = vec![
        2939.0, 342.0, 635.0, 84.0, 140.0, 70.0, 248.0, 800.0, 523.0, 1530.0, 85.0, 52.0,
    ];
    let bogues = vec![
        2790.0, 392.0, 858.0, 58.0, 81.0, 2.0, 93.0, 841.0, 58.0, 235.0, 743.0, 170.0,
    ];

    let n = base.n_rows();
    let m = base.n_cols();
    let mut data = base.matrix().data().to_vec();
    data.extend_from_slice(&jordan);
    data.extend_from_slice(&rodman);
    data.extend_from_slice(&bogues);
    let matrix = Matrix::from_vec(n + 3, m, data)?;
    let mut row_labels: Vec<String> = (0..n).map(|i| format!("player{i}")).collect();
    row_labels.push("Jordan-like".into());
    row_labels.push("Rodman-like".into());
    row_labels.push("Bogues-like".into());
    let col_labels = NBA_ATTRS.iter().map(|s| s.to_string()).collect();
    let dm = DataMatrix::with_labels(matrix, row_labels, col_labels)?;
    Ok((
        dm,
        NbaOutliers {
            jordan: n,
            rodman: n + 1,
            bogues: n + 2,
        },
    ))
}

/// Gram–Schmidt for three factors, preserving each factor's norm so the
/// planted variance scales are unchanged.
fn orthogonalize3(f1: Factor, mut f2: Factor, mut f3: Factor) -> (Factor, Factor, Factor) {
    fn project_out(v: &mut [f64], onto: &[f64]) {
        let denom: f64 = onto.iter().map(|x| x * x).sum();
        if denom <= 0.0 {
            return;
        }
        let coeff: f64 = v.iter().zip(onto).map(|(a, b)| a * b).sum::<f64>() / denom;
        for (vi, &oi) in v.iter_mut().zip(onto) {
            *vi -= coeff * oi;
        }
    }
    fn renorm(v: &mut [f64], target: f64) {
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for vi in v.iter_mut() {
                *vi *= target / norm;
            }
        }
    }
    let n2: f64 = f2.loadings.iter().map(|x| x * x).sum::<f64>().sqrt();
    project_out(&mut f2.loadings, &f1.loadings);
    renorm(&mut f2.loadings, n2);
    let n3: f64 = f3.loadings.iter().map(|x| x * x).sum::<f64>().sqrt();
    project_out(&mut f3.loadings, &f1.loadings);
    project_out(&mut f3.loadings, &f2.loadings);
    renorm(&mut f3.loadings, n3);
    (f1, f2, f3)
}

/// Attribute names for the `baseball`-like dataset (17 batting statistics).
pub const BASEBALL_ATTRS: [&str; 17] = [
    "games",
    "at-bats",
    "runs",
    "hits",
    "doubles",
    "triples",
    "home runs",
    "runs batted in",
    "walks",
    "strikeouts",
    "stolen bases",
    "caught stealing",
    "batting average",
    "on-base pct",
    "slugging pct",
    "sacrifice hits",
    "sacrifice flies",
];

/// Generates a 1574 x 17 `baseball`-like dataset (four MLB seasons of
/// batting statistics, per the paper).
pub fn baseball_like(seed: u64) -> Result<DataMatrix> {
    // Dominant factor: playing time. Every counting stat loads on it.
    let playing_time = Factor {
        loadings: vec![
            0.28,  // games
            0.86,  // at-bats
            0.13,  // runs
            0.24,  // hits
            0.045, // doubles
            0.005, // triples
            0.02,  // home runs
            0.12,  // RBI
            0.08,  // walks
            0.16,  // strikeouts
            0.015, // stolen bases
            0.006, // caught stealing
            0.0,   // batting average (rate stat)
            0.0,   // on-base pct
            0.0,   // slugging pct
            0.008, // sacrifice hits
            0.007, // sacrifice flies
        ],
        sigma: 210.0,
    };
    // Power hitters: home runs / RBI / slugging vs speed.
    let power = Factor {
        loadings: vec![
            0.0, 0.0, 0.02, 0.01, 0.01, -0.004, 0.09, 0.11, 0.04, 0.08, -0.02, -0.008, 0.0, 0.0002,
            0.0009, -0.012, 0.004,
        ],
        sigma: 110.0,
    };
    // Contact/speed: average, steals, triples.
    let speed = Factor {
        loadings: vec![
            0.0, 0.0, 0.05, 0.03, 0.004, 0.012, -0.01, -0.01, 0.0, -0.04, 0.10, 0.03, 0.0004,
            0.0003, 0.0, 0.02, 0.0,
        ],
        sigma: 60.0,
    };
    let spec = LatentFactorSpec {
        n_rows: 1574,
        means: vec![
            85.0,  // games
            260.0, // at-bats
            35.0,  // runs
            68.0,  // hits
            12.0,  // doubles
            1.5,   // triples
            7.0,   // home runs
            32.0,  // RBI
            24.0,  // walks
            45.0,  // strikeouts
            5.0,   // stolen bases
            2.5,   // caught stealing
            0.255, // batting average
            0.320, // on-base pct
            0.390, // slugging pct
            2.5,   // sacrifice hits
            2.2,   // sacrifice flies
        ],
        factors: vec![playing_time, power, speed],
        noise: vec![
            8.0, 20.0, 6.0, 8.0, 2.5, 0.8, 1.8, 5.0, 4.5, 7.0, 2.0, 1.0, 0.03, 0.03, 0.045, 1.2,
            1.0,
        ],
        nonnegative: true,
    };
    let mut dm = spec.generate(seed)?;
    dm.set_col_labels(BASEBALL_ATTRS.iter().map(|s| s.to_string()).collect())?;
    Ok(dm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use linalg::eigen::SymmetricEigen;

    #[test]
    fn nba_shape_and_labels() {
        let (dm, out) = nba_like(1).unwrap();
        assert_eq!(dm.n_rows(), 459);
        assert_eq!(dm.n_cols(), 12);
        assert_eq!(dm.col_labels()[0], "minutes played");
        assert_eq!(dm.row_labels()[out.jordan], "Jordan-like");
        assert_eq!(dm.row_labels()[out.rodman], "Rodman-like");
        assert_eq!(dm.row_labels()[out.bogues], "Bogues-like");
        assert!(dm.matrix().data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn nba_first_eigenvector_is_court_action() {
        let (dm, _) = nba_like(2).unwrap();
        let c = stats::covariance_two_pass(dm.matrix()).unwrap();
        let e = SymmetricEigen::new(&c).unwrap();
        let v0 = e.eigenvector(0);
        // Minutes played must dominate RR1 and all components of RR1 must
        // be nonnegative-ish (a "volume" factor), echoing the paper.
        let minutes = v0[0];
        assert!(minutes > 0.6, "minutes loading {minutes}");
        let points = v0[7];
        assert!(points > 0.2, "points loading {points}");
        // Paper: minutes : points about 2 : 1 on RR1.
        let ratio = minutes / points;
        assert!((1.4..=2.9).contains(&ratio), "minutes:points ratio {ratio}");
    }

    #[test]
    fn nba_second_eigenvector_contrasts_rebounds_and_points() {
        let (dm, _) = nba_like(3).unwrap();
        let c = stats::covariance_two_pass(dm.matrix()).unwrap();
        let e = SymmetricEigen::new(&c).unwrap();
        let v1 = e.eigenvector(1);
        let rebounds = v1[9];
        let points = v1[7];
        assert!(
            rebounds * points < 0.0,
            "rebounds ({rebounds}) and points ({points}) must have opposite signs on RR2"
        );
    }

    #[test]
    fn nba_spectrum_is_low_rank() {
        let (dm, _) = nba_like(4).unwrap();
        let c = stats::covariance_two_pass(dm.matrix()).unwrap();
        let e = SymmetricEigen::new(&c).unwrap();
        // Three planted factors + noise: >= 85% of energy within first 3.
        assert!(
            e.energy_fraction(3) > 0.85,
            "energy(3) = {}",
            e.energy_fraction(3)
        );
    }

    #[test]
    fn nba_deterministic_per_seed() {
        let (a, _) = nba_like(7).unwrap();
        let (b, _) = nba_like(7).unwrap();
        assert_eq!(a.matrix(), b.matrix());
    }

    #[test]
    fn baseball_shape_and_dominant_factor() {
        let dm = baseball_like(1).unwrap();
        assert_eq!(dm.n_rows(), 1574);
        assert_eq!(dm.n_cols(), 17);
        let c = stats::covariance_two_pass(dm.matrix()).unwrap();
        let e = SymmetricEigen::new(&c).unwrap();
        // At-bats dominates the first eigenvector.
        let v0 = e.eigenvector(0);
        let at_bats = v0[1];
        assert!(at_bats > 0.7, "at-bats loading {at_bats}");
        // Strongly low-rank spectrum.
        assert!(e.energy_fraction(3) > 0.85);
    }
}
