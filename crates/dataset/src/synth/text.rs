//! Documents-by-terms generator (the paper's IR interpretation).
//!
//! Sec. 4.1 notes the method applies to any `N x M` matrix, naming
//! "documents and terms (typical in IR)" explicitly, and its footnote 1
//! points at Latent Semantic Indexing-style sparse eigensolvers for very
//! wide matrices. This generator builds such a corpus: a handful of
//! latent *topics*, each a distribution over a vocabulary with Zipfian
//! background noise; documents mix 1–2 topics. Ratio Rules over the
//! counts matrix then recover the topics — exactly the LSI connection
//! the paper cites (ref. \[12\]).

use crate::{DataMatrix, DatasetError, Result};
use linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Corpus configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of documents.
    pub n_docs: usize,
    /// Vocabulary size.
    pub n_terms: usize,
    /// Number of latent topics.
    pub n_topics: usize,
    /// Average words per document.
    pub doc_length: usize,
    /// Fraction of words drawn from the Zipfian background instead of
    /// the document's topics.
    pub noise_fraction: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_docs: 500,
            n_terms: 200,
            n_topics: 4,
            doc_length: 120,
            noise_fraction: 0.2,
        }
    }
}

/// A generated corpus: the counts matrix plus ground-truth topic info.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// `n_docs x n_terms` term-count matrix.
    pub data: DataMatrix,
    /// Dominant topic of each document.
    pub doc_topics: Vec<usize>,
    /// Characteristic terms of each topic (disjoint blocks).
    pub topic_terms: Vec<Vec<usize>>,
}

/// Generates a topic-mixture corpus.
pub fn generate(config: &CorpusConfig, seed: u64) -> Result<Corpus> {
    if config.n_docs == 0 || config.n_terms == 0 || config.n_topics == 0 {
        return Err(DatasetError::Invalid("corpus: empty dimensions".into()));
    }
    if config.n_topics * 4 > config.n_terms {
        return Err(DatasetError::Invalid(format!(
            "corpus: {} topics need at least {} terms (4 per topic), got {}",
            config.n_topics,
            config.n_topics * 4,
            config.n_terms
        )));
    }
    if !(0.0..=1.0).contains(&config.noise_fraction) {
        return Err(DatasetError::Invalid(
            "corpus: noise_fraction must be in [0, 1]".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Disjoint characteristic-term blocks per topic.
    let block = config.n_terms / config.n_topics;
    let topic_terms: Vec<Vec<usize>> = (0..config.n_topics)
        .map(|t| {
            let start = t * block;
            // Each topic concentrates on ~1/4 of its block.
            (start..start + (block / 4).max(2)).collect()
        })
        .collect();

    // Zipfian background over the whole vocabulary.
    let zipf_weights: Vec<f64> = (0..config.n_terms)
        .map(|r| 1.0 / (r as f64 + 1.0))
        .collect();
    let zipf_total: f64 = zipf_weights.iter().sum();
    let sample_zipf = |rng: &mut StdRng| -> usize {
        let mut u = rng.gen::<f64>() * zipf_total;
        for (t, w) in zipf_weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                return t;
            }
        }
        config.n_terms - 1
    };

    let n = config.n_docs;
    let m = config.n_terms;
    let mut counts = vec![0.0_f64; n * m];
    let mut doc_topics = Vec::with_capacity(n);
    for d in 0..n {
        let primary = rng.gen_range(0..config.n_topics);
        doc_topics.push(primary);
        let secondary = rng.gen_range(0..config.n_topics);
        let length = (config.doc_length as f64 * (0.5 + rng.gen::<f64>())) as usize;
        let row = &mut counts[d * m..(d + 1) * m];
        for _ in 0..length.max(1) {
            let term = if rng.gen::<f64>() < config.noise_fraction {
                sample_zipf(&mut rng)
            } else {
                let topic = if rng.gen::<f64>() < 0.75 {
                    primary
                } else {
                    secondary
                };
                let terms = &topic_terms[topic];
                terms[rng.gen_range(0..terms.len())]
            };
            row[term] += 1.0;
        }
    }

    let matrix = Matrix::from_vec(n, m, counts)?;
    let mut dm = DataMatrix::new(matrix);
    dm.set_col_labels((0..m).map(|t| format!("term{t}")).collect())?;
    Ok(Corpus {
        data: dm,
        doc_topics,
        topic_terms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_counts() {
        let c = generate(&CorpusConfig::default(), 1).unwrap();
        assert_eq!(c.data.n_rows(), 500);
        assert_eq!(c.data.n_cols(), 200);
        assert_eq!(c.doc_topics.len(), 500);
        assert_eq!(c.topic_terms.len(), 4);
        // Counts are nonnegative integers.
        assert!(c
            .data
            .matrix()
            .data()
            .iter()
            .all(|&v| v >= 0.0 && v.fract() == 0.0));
    }

    #[test]
    fn documents_concentrate_on_their_topic_terms() {
        let c = generate(&CorpusConfig::default(), 2).unwrap();
        let mut hits = 0usize;
        let n = c.data.n_rows();
        for d in 0..n {
            let row = c.data.row(d);
            let topic = c.doc_topics[d];
            let topic_mass: f64 = c.topic_terms[topic].iter().map(|&t| row[t]).sum();
            let total: f64 = row.iter().sum();
            if topic_mass > 0.3 * total {
                hits += 1;
            }
        }
        // Most documents put >30% of their mass on their dominant topic.
        assert!(hits > n / 2, "only {hits}/{n} documents concentrate");
    }

    #[test]
    fn rules_recover_topics() {
        use linalg::eigen::SymmetricEigen;
        let c = generate(&CorpusConfig::default(), 3).unwrap();
        let cov = crate::stats::covariance_two_pass(c.data.matrix()).unwrap();
        let e = SymmetricEigen::new(&cov).unwrap();
        // The strongest eigenvectors should each be dominated by a single
        // topic's characteristic terms. (The weakest of the four planted
        // topics can blend with the Zipf background and the shared
        // document-length direction, so only the top three are asserted.)
        let mut topics_seen = std::collections::HashSet::new();
        for j in 0..3 {
            let v = e.eigenvector(j);
            let mut best_topic = 0;
            let mut best_mass = 0.0;
            for (t, terms) in c.topic_terms.iter().enumerate() {
                let mass: f64 = terms.iter().map(|&i| v[i] * v[i]).sum();
                if mass > best_mass {
                    best_mass = mass;
                    best_topic = t;
                }
            }
            assert!(best_mass > 0.3, "RR{} has topic mass {best_mass}", j + 1);
            topics_seen.insert(best_topic);
        }
        assert!(
            topics_seen.len() >= 2,
            "top rules should span distinct topics"
        );
    }

    #[test]
    fn deterministic_and_validated() {
        let cfg = CorpusConfig {
            n_docs: 20,
            ..CorpusConfig::default()
        };
        assert_eq!(
            generate(&cfg, 7).unwrap().data.matrix(),
            generate(&cfg, 7).unwrap().data.matrix()
        );
        let bad = CorpusConfig {
            n_topics: 0,
            ..CorpusConfig::default()
        };
        assert!(generate(&bad, 1).is_err());
        let bad = CorpusConfig {
            n_terms: 4,
            n_topics: 4,
            ..CorpusConfig::default()
        };
        assert!(generate(&bad, 1).is_err());
        let bad = CorpusConfig {
            noise_fraction: 1.5,
            ..CorpusConfig::default()
        };
        assert!(generate(&bad, 1).is_err());
    }
}
