//! Property-based tests for the dataset layer: CSV roundtrips, splits,
//! hole machinery, and the one-hot encoder.

use dataset::categorical::{DecodedValue, MixedColumn, OneHotEncoder};
use dataset::csv::{read_csv, read_csv_holed, write_csv};
use dataset::holes::HoleSet;
use dataset::split::train_test_split;
use dataset::DataMatrix;
use linalg::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1e6..1e6f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSV write-then-read reproduces the matrix exactly (shortest-float
    /// formatting is roundtrip-exact for f64).
    #[test]
    fn csv_roundtrip_is_exact(m in matrix(7, 4)) {
        let dm = DataMatrix::new(m);
        let mut buf = Vec::new();
        write_csv(&dm, &mut buf).unwrap();
        let back = read_csv(&buf[..], true).unwrap();
        prop_assert_eq!(back.matrix(), dm.matrix());
        prop_assert_eq!(back.col_labels(), dm.col_labels());
    }

    /// The holed reader agrees with the plain reader on hole-free input.
    #[test]
    fn holed_reader_agrees_on_complete_input(m in matrix(5, 3)) {
        let dm = DataMatrix::new(m);
        let mut buf = Vec::new();
        write_csv(&dm, &mut buf).unwrap();
        let (rows, labels) = read_csv_holed(&buf[..], true).unwrap();
        prop_assert_eq!(labels, dm.col_labels().to_vec());
        for (i, row) in rows.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                prop_assert_eq!(v.unwrap(), dm.row(i)[j]);
            }
        }
    }

    /// Splits partition the rows for any fraction and seed.
    #[test]
    fn split_partitions_rows(
        n in 2usize..60,
        frac in 0.05..0.95f64,
        seed in 0u64..500,
    ) {
        let data = DataMatrix::new(Matrix::from_fn(n, 3, |i, j| (i * 3 + j) as f64));
        let split = train_test_split(&data, frac, seed).unwrap();
        prop_assert!(split.train.n_rows() >= 1);
        prop_assert!(split.test.n_rows() >= 1);
        prop_assert_eq!(split.train.n_rows() + split.test.n_rows(), n);
        let mut all: Vec<usize> = split
            .train_indices
            .iter()
            .chain(&split.test_indices)
            .copied()
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    /// Hole application is inverse to reading known values back out.
    #[test]
    fn hole_apply_roundtrip(
        row in proptest::collection::vec(-100.0..100.0f64, 6),
        holes in proptest::collection::btree_set(0usize..6, 1..5),
    ) {
        let holes: Vec<usize> = holes.into_iter().collect();
        let hs = HoleSet::new(holes.clone(), 6).unwrap();
        let holed = hs.apply(&row).unwrap();
        // Known + holes together reconstruct the original positions.
        let known = holed.known_indices();
        let known_vals = holed.known_values();
        for (idx, &j) in known.iter().enumerate() {
            prop_assert_eq!(known_vals[idx], row[j]);
        }
        prop_assert_eq!(holed.hole_indices(), holes);
    }

    /// One-hot encode/decode roundtrips arbitrary mixed tables.
    #[test]
    fn one_hot_roundtrip(
        numeric in proptest::collection::vec(-50.0..50.0f64, 8),
        labels in proptest::collection::vec(0usize..3, 8),
        scale in 0.1..10.0f64,
    ) {
        // Ensure at least two distinct levels.
        prop_assume!(labels.iter().collect::<std::collections::HashSet<_>>().len() >= 2);
        let level_names = ["red", "green", "blue"];
        let cols = vec![
            MixedColumn::Numeric { name: "x".into(), values: numeric.clone() },
            MixedColumn::Categorical {
                name: "color".into(),
                values: labels.iter().map(|&l| level_names[l].to_string()).collect(),
            },
        ];
        let (enc, encoded) = OneHotEncoder::fit_encode(&cols, scale).unwrap();
        for i in 0..8 {
            let decoded = enc.decode_row(encoded.row(i)).unwrap();
            match &decoded[0] {
                DecodedValue::Numeric(v) => prop_assert_eq!(*v, numeric[i]),
                other => prop_assert!(false, "wrong shape {:?}", other),
            }
            match &decoded[1] {
                DecodedValue::Categorical { level, score } => {
                    prop_assert_eq!(level, level_names[labels[i]]);
                    prop_assert!((score - 1.0).abs() < 1e-12);
                }
                other => prop_assert!(false, "wrong shape {:?}", other),
            }
        }
    }
}
