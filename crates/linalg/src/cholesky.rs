//! Cholesky decomposition of symmetric positive-definite matrices.
//!
//! Used by the data-synthesis layer (`dataset::synth::latent`) to sample
//! correlated Gaussian vectors: if `C = L L^t` then `L z` with `z ~ N(0, I)`
//! has covariance `C`. Also handy as an SPD test oracle.

// Triangular solves index rows and columns of packed factors with the
// loop variable; iterator rewrites obscure the recurrences, so the lint
// is opted out for this file.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L L^t`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// The lower-triangular factor.
    pub l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a pivot is not
    /// strictly positive and [`LinalgError::NotSquare`] for rectangular
    /// input. Only the lower triangle of `a` is read.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                op: "cholesky",
                shape: a.shape(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty { op: "cholesky" });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Solves `A x = b` using the factorization (forward + back
    /// substitution).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // L y = b.
        let mut y = vec![0.0_f64; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // L^t x = y.
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Applies the factor to a vector: returns `L z`.
    ///
    /// This is the correlated-Gaussian sampling primitive.
    pub fn apply(&self, z: &[f64]) -> Result<Vec<f64>> {
        self.l.mul_vec(z)
    }
}

/// True if the matrix is symmetric positive definite (factorization
/// succeeds).
pub fn is_positive_definite(a: &Matrix) -> bool {
    a.is_symmetric(1e-10 * a.max_abs().max(1.0)) && Cholesky::new(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 5.0, 2.0], &[0.0, 2.0, 5.0]]).unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let rec = c.l.matmul(&c.l.transpose()).unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-12);
        // L is lower triangular with positive diagonal.
        for i in 0..3 {
            assert!(c.l[(i, i)] > 0.0);
            for j in (i + 1)..3 {
                assert_eq!(c.l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn known_2x2_factor() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 2.0]]).unwrap();
        let c = Cholesky::new(&a).unwrap();
        assert!((c.l[(0, 0)] - 2.0).abs() < 1e-15);
        assert!((c.l[(1, 0)] - 1.0).abs() < 1e-15);
        assert!((c.l[(1, 1)] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rejects_indefinite_and_rectangular() {
        let indef = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&indef),
            Err(LinalgError::NotPositiveDefinite)
        ));
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Cholesky::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd3();
        let b = [1.0, -2.0, 3.0];
        let x_chol = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        for i in 0..3 {
            assert!((x_chol[i] - x_lu[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_rejects_wrong_rhs() {
        let c = Cholesky::new(&spd3()).unwrap();
        assert!(c.solve(&[1.0]).is_err());
    }

    #[test]
    fn is_positive_definite_predicate() {
        assert!(is_positive_definite(&spd3()));
        assert!(is_positive_definite(&Matrix::identity(4)));
        let indef = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!(!is_positive_definite(&indef));
        let asym = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]).unwrap();
        assert!(!is_positive_definite(&asym));
    }

    #[test]
    fn apply_produces_requested_covariance_in_expectation() {
        // Deterministic sanity check: L applied to unit basis vectors gives
        // the columns of L, whose outer-product sum is A.
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let n = 3;
        let mut acc = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = c.apply(&e).unwrap();
            for i in 0..n {
                for k in 0..n {
                    acc[(i, k)] += col[i] * col[k];
                }
            }
        }
        assert!(acc.max_abs_diff(&a).unwrap() < 1e-12);
    }
}
