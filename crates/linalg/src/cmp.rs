//! Named floating-point comparisons.
//!
//! Raw `==` / `!=` on `f64` is banned workspace-wide (rrlint `RR002`)
//! because it hides which of two very different things is meant:
//!
//! * an **algorithmic sentinel** — the EISPACK-style kernels test
//!   *exact* zero to skip multiplies, detect deflation, and guard
//!   divisions. Widening those to a tolerance would change iteration
//!   counts and results; the comparison must stay bitwise and say so
//!   ([`exact_zero`], [`exact_eq`]).
//! * a **tolerance check** — everything else (convergence tests,
//!   result validation) wants an explicit epsilon ([`approx_eq`],
//!   [`approx_zero`], [`rel_eq`]).
//!
//! Routing both through named helpers keeps the numerics bit-identical
//! while making every remaining float comparison in the workspace
//! greppable and reviewed. The `numeric-sanitizer` runtime checks (see
//! [`crate::sanitize`]) are the other half of the same policy.

/// Bitwise-exact test against `0.0` (also matches `-0.0`).
///
/// Use where the algorithm's correctness depends on *exact* zero: a
/// value produced by cancellation or initialization that gates a
/// division or a skipped update. NaN is not zero.
#[inline]
pub fn exact_zero(x: f64) -> bool {
    // rrlint-allow: RR002 this helper is the sanctioned home of the raw comparison
    x == 0.0
}

/// Bitwise-exact equality (IEEE `==`; NaN is equal to nothing).
///
/// For sentinel comparisons and bit-for-bit reproducibility tests
/// (checkpoint/resume, serial-vs-parallel equivalence).
#[inline]
pub fn exact_eq(a: f64, b: f64) -> bool {
    // Variable-vs-variable IEEE equality: deliberate and bitwise.
    a == b
}

/// Absolute-tolerance equality: `|a - b| <= tol`. NaN never compares
/// equal; two like-signed infinities do.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        // Exact fast path; also the only way infinities can match.
        return true;
    }
    (a - b).abs() <= tol
}

/// Absolute-tolerance zero test: `|x| <= tol`.
#[inline]
pub fn approx_zero(x: f64, tol: f64) -> bool {
    x.abs() <= tol
}

/// Relative equality: `|a - b| <= rel_tol * max(|a|, |b|)`, with the
/// exact-equality fast path so zeros and infinities behave.
#[inline]
pub fn rel_eq(a: f64, b: f64, rel_tol: f64) -> bool {
    if a == b {
        // Exact fast path: equal values must pass at any scale.
        return true;
    }
    (a - b).abs() <= rel_tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_zero_is_bitwise() {
        assert!(exact_zero(0.0));
        assert!(exact_zero(-0.0));
        assert!(!exact_zero(f64::MIN_POSITIVE));
        assert!(!exact_zero(-1e-300));
        assert!(!exact_zero(f64::NAN));
    }

    #[test]
    fn exact_eq_matches_ieee() {
        assert!(exact_eq(1.5, 1.5));
        assert!(exact_eq(0.0, -0.0));
        assert!(!exact_eq(1.5, 1.5 + f64::EPSILON));
        assert!(!exact_eq(f64::NAN, f64::NAN));
        assert!(exact_eq(f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn approx_eq_uses_absolute_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-10));
        assert!(!approx_eq(1.0, 1.0 + 1e-8, 1e-10));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 0.0));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY, 1e300));
    }

    #[test]
    fn approx_zero_tolerates() {
        assert!(approx_zero(1e-12, 1e-10));
        assert!(approx_zero(-1e-12, 1e-10));
        assert!(!approx_zero(1e-8, 1e-10));
        assert!(!approx_zero(f64::NAN, 1.0));
    }

    #[test]
    fn rel_eq_scales() {
        assert!(rel_eq(1e10, 1e10 * (1.0 + 1e-13), 1e-12));
        assert!(!rel_eq(1e10, 1e10 * (1.0 + 1e-11), 1e-12));
        assert!(rel_eq(0.0, 0.0, 0.0));
        assert!(!rel_eq(0.0, 1e-300, 1e-12));
    }
}
