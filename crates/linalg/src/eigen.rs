//! Symmetric eigendecomposition: the "off-the-shelf eigensystem package"
//! the Ratio Rules paper relies on (Fig. 2b), built in-house.
//!
//! The pipeline is Householder tridiagonalization ([`crate::householder`])
//! followed by implicit-shift QL ([`crate::tridiagonal`]). Eigenpairs are
//! returned sorted by descending eigenvalue with a canonical sign
//! convention, so the "first Ratio Rule" is always well defined.

use crate::householder::tridiagonalize;
use crate::tridiagonal::ql_implicit;
use crate::vector::canonicalize_sign;
use crate::{Matrix, Result};

/// Relative symmetry tolerance accepted by [`SymmetricEigen::new`].
pub const DEFAULT_SYMMETRY_TOL: f64 = 1e-8;

/// How an eigensolve converged: iteration effort, the residual left at
/// acceptance, and how asymmetric the input actually was. Populated by
/// every solver instead of being discarded, so the observability layer
/// (and tests) can pin convergence behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConvergenceInfo {
    /// Solver-specific effort: total QL iterations for
    /// [`SymmetricEigen`], sweeps for Jacobi, Krylov steps for Lanczos.
    pub iterations: usize,
    /// Solver-internal residual at acceptance (e.g. the largest
    /// off-diagonal magnitude left after deflation).
    pub residual: f64,
    /// Measured `max |a_ij - a_ji|` of the input — zero for exactly
    /// symmetric matrices, positive (but within tolerance) when the
    /// caller handed in something slightly asymmetric.
    pub asymmetry: f64,
}

/// Eigendecomposition of a real symmetric matrix.
///
/// Invariants (checked by the test suite):
/// * `eigenvalues` are sorted in descending order;
/// * column `j` of `eigenvectors` is a unit vector paired with
///   `eigenvalues[j]`;
/// * each eigenvector's largest-magnitude component is positive
///   (deterministic sign).
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors as columns, aligned with `eigenvalues`.
    pub eigenvectors: Matrix,
    /// How the QL iteration converged on this input.
    pub convergence: ConvergenceInfo,
}

impl SymmetricEigen {
    /// Computes the full eigendecomposition of a symmetric matrix.
    ///
    /// Symmetry is validated up to [`DEFAULT_SYMMETRY_TOL`] (relative to the
    /// largest element); use [`SymmetricEigen::with_tolerance`] to override.
    pub fn new(a: &Matrix) -> Result<Self> {
        Self::with_tolerance(a, DEFAULT_SYMMETRY_TOL)
    }

    /// Like [`SymmetricEigen::new`] with an explicit symmetry tolerance.
    pub fn with_tolerance(a: &Matrix, sym_tol: f64) -> Result<Self> {
        crate::sanitize::check_finite_slice("eigen input", a.data());
        let asymmetry = a.max_asymmetry();
        let mut tri = tridiagonalize(a, sym_tol)?;
        let mut d = tri.diagonal.clone();
        let mut e = tri.off_diagonal.clone();
        let ql = ql_implicit(&mut d, &mut e, &mut tri.q)?;

        // Sort descending and canonicalize signs.
        let n = d.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));

        let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_j, &old_j) in order.iter().enumerate() {
            let mut col = tri.q.col(old_j);
            canonicalize_sign(&mut col);
            for i in 0..n {
                eigenvectors[(i, new_j)] = col[i];
            }
        }
        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
            convergence: ConvergenceInfo {
                iterations: ql.iterations,
                residual: ql.residual,
                asymmetry,
            },
        })
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Eigenvector `j` as an owned vector.
    pub fn eigenvector(&self, j: usize) -> Vec<f64> {
        self.eigenvectors.col(j)
    }

    /// Reconstructs the original matrix as `V diag(lambda) V^t`
    /// (testing/validation convenience).
    pub fn reconstruct(&self) -> Result<Matrix> {
        let lambda = Matrix::from_diagonal(&self.eigenvalues);
        self.eigenvectors
            .matmul(&lambda)?
            .matmul(&self.eigenvectors.transpose())
    }

    /// Largest residual `max |A v - lambda v|` over all eigenpairs — a
    /// direct measure of decomposition quality.
    pub fn max_residual(&self, a: &Matrix) -> Result<f64> {
        let mut worst = 0.0_f64;
        for j in 0..self.dim() {
            let v = self.eigenvector(j);
            let av = a.mul_vec(&v)?;
            for i in 0..self.dim() {
                worst = worst.max((av[i] - self.eigenvalues[j] * v[i]).abs());
            }
        }
        Ok(worst)
    }

    /// Fraction of total spectral energy captured by the first `k`
    /// eigenvalues, treating the spectrum as nonnegative (covariance use
    /// case). This is the left-hand side of the paper's Eq. 1.
    pub fn energy_fraction(&self, k: usize) -> f64 {
        let total: f64 = self.eigenvalues.iter().map(|l| l.max(0.0)).sum();
        if total <= 0.0 {
            return if k == 0 { 0.0 } else { 1.0 };
        }
        let head: f64 = self.eigenvalues.iter().take(k).map(|l| l.max(0.0)).sum();
        head / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]]: eigenvalues 3, 1 with vectors (1,1)/sqrt2, (1,-1)/sqrt2.
        let a = sym(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        let s = 1.0 / 2.0_f64.sqrt();
        let v0 = e.eigenvector(0);
        assert!((v0[0] - s).abs() < 1e-12 && (v0[1] - s).abs() < 1e-12);
    }

    #[test]
    fn paper_figure1_direction() {
        // The paper's Fig. 1 dataset: bread/butter amounts whose first
        // eigenvector is approximately (0.866, 0.5), i.e. 30 degrees.
        // Construct a covariance matrix with exactly that direction:
        // C = R diag(10, 1) R^t where R rotates by 30 degrees.
        let th = std::f64::consts::PI / 6.0;
        let (c, s) = (th.cos(), th.sin());
        let r = sym(&[&[c, -s], &[s, c]]);
        let d = Matrix::from_diagonal(&[10.0, 1.0]);
        let cov = r.matmul(&d).unwrap().matmul(&r.transpose()).unwrap();

        let e = SymmetricEigen::new(&cov).unwrap();
        let v0 = e.eigenvector(0);
        assert!((v0[0] - 0.866).abs() < 1e-3, "got {v0:?}");
        assert!((v0[1] - 0.5).abs() < 1e-3, "got {v0:?}");
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let a = sym(&[
            &[4.0, 1.0, -2.0, 2.0],
            &[1.0, 2.0, 0.0, 1.0],
            &[-2.0, 0.0, 3.0, -2.0],
            &[2.0, 1.0, -2.0, -1.0],
        ]);
        let e = SymmetricEigen::new(&a).unwrap();
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn reconstruction_and_residual() {
        let a = sym(&[
            &[4.0, 1.0, -2.0, 2.0],
            &[1.0, 2.0, 0.0, 1.0],
            &[-2.0, 0.0, 3.0, -2.0],
            &[2.0, 1.0, -2.0, -1.0],
        ]);
        let e = SymmetricEigen::new(&a).unwrap();
        let rec = e.reconstruct().unwrap();
        assert!(rec.max_abs_diff(&a).unwrap() < 1e-10);
        assert!(e.max_residual(&a).unwrap() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = sym(&[&[10.0, 2.0, 3.0], &[2.0, 7.0, 1.0], &[3.0, 1.0, 5.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-12);
    }

    #[test]
    fn signs_are_canonical() {
        let a = sym(&[&[10.0, 2.0, 3.0], &[2.0, 7.0, 1.0], &[3.0, 1.0, 5.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        for j in 0..3 {
            let v = e.eigenvector(j);
            let dominant = v
                .iter()
                .cloned()
                .max_by(|a, b| a.abs().partial_cmp(&b.abs()).unwrap())
                .unwrap();
            assert!(
                dominant > 0.0,
                "eigenvector {j} has negative dominant component"
            );
        }
    }

    #[test]
    fn negative_eigenvalues_supported() {
        // Indefinite symmetric matrix.
        let a = sym(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_fraction_cutoff() {
        let a = Matrix::from_diagonal(&[8.0, 1.0, 1.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.energy_fraction(1) - 0.8).abs() < 1e-12);
        assert!((e.energy_fraction(3) - 1.0).abs() < 1e-12);
        assert_eq!(e.energy_fraction(0), 0.0);
    }

    #[test]
    fn energy_fraction_ignores_negative_tail() {
        let a = Matrix::from_diagonal(&[3.0, -1.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.energy_fraction(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(3, 3);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!(e.eigenvalues.iter().all(|&l| crate::cmp::exact_zero(l)));
    }

    #[test]
    fn convergence_info_is_populated() {
        // Exactly symmetric input: zero asymmetry, at least one QL
        // iteration for a genuinely coupled matrix, tiny residual.
        let a = sym(&[&[10.0, 2.0, 3.0], &[2.0, 7.0, 1.0], &[3.0, 1.0, 5.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.convergence.asymmetry, 0.0);
        assert!(e.convergence.iterations >= 1);
        assert!(e.convergence.residual.is_finite());
        assert!(e.convergence.residual <= 1e-12 * a.max_abs());

        // A diagonal matrix converges without any QL work.
        let d = Matrix::from_diagonal(&[4.0, 2.0, 1.0]);
        let ed = SymmetricEigen::new(&d).unwrap();
        assert_eq!(ed.convergence.iterations, 0);
        assert_eq!(ed.convergence.residual, 0.0);
    }

    #[test]
    fn convergence_reports_tolerated_asymmetry() {
        // Slightly asymmetric but within tolerance: the solve succeeds
        // and the measured asymmetry is surfaced, not swallowed.
        let mut a = sym(&[&[4.0, 1.0], &[1.0, 3.0]]);
        a[(0, 1)] += 1e-12;
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.convergence.asymmetry - 1e-12).abs() < 1e-15);
    }

    #[test]
    fn large_random_symmetric_residual() {
        // Deterministic pseudo-random symmetric matrix via an LCG; checks
        // the solver on something bigger than a textbook example.
        let n = 40;
        let mut state = 0x2545F4914F6CDD1D_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let e = SymmetricEigen::new(&a).unwrap();
        assert!(e.max_residual(&a).unwrap() < 1e-9);
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(n)).unwrap() < 1e-10);
    }
}
