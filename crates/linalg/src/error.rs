//! Error type for the linear algebra crate.

use std::fmt;

/// Errors produced by decompositions and matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The operation requires a square matrix but got a rectangular one.
    NotSquare {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) and cannot be solved.
    Singular {
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An iterative decomposition failed to converge.
    NoConvergence {
        /// Name of the algorithm that failed.
        op: &'static str,
        /// Number of iterations attempted before giving up.
        iterations: usize,
    },
    /// The matrix is not positive definite (Cholesky).
    NotPositiveDefinite,
    /// The matrix is not symmetric but the algorithm requires symmetry.
    NotSymmetric {
        /// Name of the operation that failed.
        op: &'static str,
        /// Maximum observed asymmetry `|a_ij - a_ji|`.
        max_asymmetry: u64,
    },
    /// Construction from raw data failed because the element count is wrong.
    BadLength {
        /// Expected number of elements.
        expected: usize,
        /// Actual number of elements supplied.
        actual: usize,
    },
    /// The input is empty where a non-empty matrix/vector is required.
    Empty {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch between {}x{} and {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { op, shape } => {
                write!(
                    f,
                    "{op}: requires a square matrix, got {}x{}",
                    shape.0, shape.1
                )
            }
            LinalgError::Singular { op } => write!(f, "{op}: matrix is singular"),
            LinalgError::NoConvergence { op, iterations } => {
                write!(f, "{op}: failed to converge after {iterations} iterations")
            }
            LinalgError::NotPositiveDefinite => {
                write!(f, "cholesky: matrix is not positive definite")
            }
            LinalgError::NotSymmetric { op, max_asymmetry } => write!(
                f,
                "{op}: matrix is not symmetric (max |a_ij - a_ji| = {})",
                f64::from_bits(*max_asymmetry)
            ),
            LinalgError::BadLength { expected, actual } => {
                write!(
                    f,
                    "bad data length: expected {expected} elements, got {actual}"
                )
            }
            LinalgError::Empty { op } => write!(f, "{op}: input is empty"),
        }
    }
}

impl std::error::Error for LinalgError {}

impl LinalgError {
    /// Builds a `NotSymmetric` error, storing the asymmetry as raw bits so
    /// the error type stays `Eq`.
    pub fn not_symmetric(op: &'static str, max_asymmetry: f64) -> Self {
        LinalgError::NotSymmetric {
            op,
            max_asymmetry: max_asymmetry.to_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(
            e.to_string(),
            "matmul: dimension mismatch between 2x3 and 4x5"
        );

        let e = LinalgError::NotSquare {
            op: "lu",
            shape: (2, 3),
        };
        assert!(e.to_string().contains("square"));

        let e = LinalgError::NoConvergence {
            op: "svd",
            iterations: 30,
        };
        assert!(e.to_string().contains("30"));

        let e = LinalgError::not_symmetric("eigen", 0.5);
        assert!(e.to_string().contains("0.5"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            LinalgError::Singular { op: "solve" },
            LinalgError::Singular { op: "solve" }
        );
        assert_ne!(
            LinalgError::Singular { op: "solve" },
            LinalgError::NotPositiveDefinite
        );
    }
}
