//! Householder tridiagonalization of real symmetric matrices.
//!
//! This is the classic EISPACK `tred2` routine: a sequence of Householder
//! reflections reduces a symmetric matrix `A` to a symmetric tridiagonal
//! matrix `T = Q^t A Q`, accumulating the orthogonal transform `Q`. Combined
//! with the implicit-shift QL iteration in [`crate::tridiagonal`], it yields
//! the full symmetric eigendecomposition the Ratio Rules method requires.

use crate::cmp;
use crate::{LinalgError, Matrix, Result};

/// Result of tridiagonalizing a symmetric matrix.
#[derive(Debug, Clone)]
pub struct Tridiagonalization {
    /// Accumulated orthogonal transform; `q^t * a * q` is tridiagonal.
    pub q: Matrix,
    /// Diagonal of the tridiagonal matrix, length `n`.
    pub diagonal: Vec<f64>,
    /// Sub-diagonal of the tridiagonal matrix; `off_diagonal[0]` is unused
    /// and set to zero, `off_diagonal[i]` couples rows `i-1` and `i`.
    pub off_diagonal: Vec<f64>,
}

impl Tridiagonalization {
    /// Reconstructs the tridiagonal matrix `T` as a dense matrix (testing
    /// convenience).
    pub fn tridiagonal_matrix(&self) -> Matrix {
        let n = self.diagonal.len();
        let mut t = Matrix::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = self.diagonal[i];
            if i > 0 {
                t[(i, i - 1)] = self.off_diagonal[i];
                t[(i - 1, i)] = self.off_diagonal[i];
            }
        }
        t
    }
}

/// Reduces a symmetric matrix to tridiagonal form with accumulated
/// transformations (EISPACK `tred2`).
///
/// The input must be square; symmetry is checked up to `sym_tol` relative to
/// the largest element. Only the lower triangle is read.
pub fn tridiagonalize(a: &Matrix, sym_tol: f64) -> Result<Tridiagonalization> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            op: "tridiagonalize",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty {
            op: "tridiagonalize",
        });
    }
    let asym = a.max_asymmetry();
    if asym > sym_tol * a.max_abs().max(1.0) {
        return Err(LinalgError::not_symmetric("tridiagonalize", asym));
    }

    // Work on a copy; `z` ends up holding Q.
    let mut z = a.clone();
    let mut d = vec![0.0_f64; n];
    let mut e = vec![0.0_f64; n];

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0_f64;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[(i, k)].abs()).sum();
            if cmp::exact_zero(scale) {
                // Row already in tridiagonal form; skip the transformation.
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut f_acc = 0.0_f64;
                for j in 0..=l {
                    // Store u/H in the column so Q can be accumulated later.
                    z[(j, i)] = z[(i, j)] / h;
                    // g = (A . u)_j using the lower triangle only.
                    let mut g = 0.0_f64;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f_acc += e[j] * z[(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }

    d[0] = 0.0;
    e[0] = 0.0;

    // Accumulate the transformations into z (becomes Q).
    for i in 0..n {
        if !cmp::exact_zero(d[i]) {
            for j in 0..i {
                let mut g = 0.0_f64;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(i, j)] = 0.0;
            z[(j, i)] = 0.0;
        }
    }

    Ok(Tridiagonalization {
        q: z,
        diagonal: d,
        off_diagonal: e,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    fn sym4() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 1.0, -2.0, 2.0],
            &[1.0, 2.0, 0.0, 1.0],
            &[-2.0, 0.0, 3.0, -2.0],
            &[2.0, 1.0, -2.0, -1.0],
        ])
        .unwrap()
    }

    #[test]
    fn rejects_rectangular_and_asymmetric() {
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            tridiagonalize(&rect, 1e-12),
            Err(LinalgError::NotSquare { .. })
        ));

        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 1.0]]).unwrap();
        assert!(matches!(
            tridiagonalize(&asym, 1e-12),
            Err(LinalgError::NotSymmetric { .. })
        ));

        assert!(matches!(
            tridiagonalize(&Matrix::zeros(0, 0), 1e-12),
            Err(LinalgError::Empty { .. })
        ));
    }

    #[test]
    fn q_is_orthogonal() {
        let a = sym4();
        let t = tridiagonalize(&a, 1e-10).unwrap();
        let qtq = t.q.transpose().matmul(&t.q).unwrap();
        let diff = qtq.max_abs_diff(&Matrix::identity(4)).unwrap();
        assert!(diff < 1e-12, "Q^t Q differs from I by {diff}");
    }

    #[test]
    fn similarity_transform_reproduces_t() {
        let a = sym4();
        let t = tridiagonalize(&a, 1e-10).unwrap();
        // Q^t A Q must equal the tridiagonal matrix.
        let qtaq = t.q.transpose().matmul(&a).unwrap().matmul(&t.q).unwrap();
        let diff = qtaq.max_abs_diff(&t.tridiagonal_matrix()).unwrap();
        assert!(diff < 1e-12, "Q^t A Q differs from T by {diff}");
    }

    #[test]
    fn trace_is_preserved() {
        let a = sym4();
        let t = tridiagonalize(&a, 1e-10).unwrap();
        assert_close(t.diagonal.iter().sum::<f64>(), a.trace(), 1e-12);
    }

    #[test]
    fn already_tridiagonal_input_passes_through() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, -1.0], &[0.0, -1.0, 4.0]]).unwrap();
        let t = tridiagonalize(&a, 1e-10).unwrap();
        let qtaq = t.q.transpose().matmul(&a).unwrap().matmul(&t.q).unwrap();
        assert!(qtaq.max_abs_diff(&t.tridiagonal_matrix()).unwrap() < 1e-12);
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_rows(&[&[7.0]]).unwrap();
        let t = tridiagonalize(&a, 1e-10).unwrap();
        assert_eq!(t.diagonal, vec![7.0]);
        assert_eq!(t.q, Matrix::identity(1));
    }

    #[test]
    fn two_by_two_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]).unwrap();
        let t = tridiagonalize(&a, 1e-10).unwrap();
        let qtaq = t.q.transpose().matmul(&a).unwrap().matmul(&t.q).unwrap();
        assert!(qtaq.max_abs_diff(&t.tridiagonal_matrix()).unwrap() < 1e-12);
    }
}
