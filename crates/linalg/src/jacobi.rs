//! Cyclic Jacobi eigensolver for symmetric matrices.
//!
//! Slower than the Householder + QL pipeline in [`crate::eigen`] but built
//! on completely different math (plane rotations annihilating off-diagonal
//! elements one at a time). The test suites use it as an independent
//! cross-check, and `bench/benches/eigensolver.rs` compares the two as an
//! ablation.

use crate::eigen::ConvergenceInfo;
use crate::vector::canonicalize_sign;
use crate::{LinalgError, Matrix, Result};

/// Maximum full sweeps before reporting non-convergence.
pub const MAX_JACOBI_SWEEPS: usize = 100;

/// Result of [`jacobi_eigen`]: the eigenpairs plus how the sweep loop
/// converged (instead of discarding the counts).
#[derive(Debug, Clone)]
pub struct JacobiEigen {
    /// Eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors as columns, aligned with `eigenvalues`.
    pub eigenvectors: Matrix,
    /// Sweep count (as `iterations`), final off-diagonal Frobenius norm
    /// (as `residual`), and the measured input asymmetry.
    pub convergence: ConvergenceInfo,
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Eigenvalues come out sorted descending with canonical eigenvector
/// signs, matching [`crate::eigen::SymmetricEigen`].
pub fn jacobi_eigen(a: &Matrix, sym_tol: f64) -> Result<JacobiEigen> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            op: "jacobi_eigen",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty { op: "jacobi_eigen" });
    }
    let asym = a.max_asymmetry();
    if asym > sym_tol * a.max_abs().max(1.0) {
        return Err(LinalgError::not_symmetric("jacobi_eigen", asym));
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for sweep in 0..MAX_JACOBI_SWEEPS {
        // Off-diagonal Frobenius norm decides convergence.
        let mut off = 0.0_f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += 2.0 * m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-14 * m.max_abs().max(1.0) {
            return Ok(finish(
                m,
                v,
                ConvergenceInfo {
                    iterations: sweep,
                    residual: off.sqrt(),
                    asymmetry: asym,
                },
            ));
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Compute the rotation that zeroes a_pq (Golub & Van Loan
                // 8.4.2, numerically stable form).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation to rows/columns p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    Err(LinalgError::NoConvergence {
        op: "jacobi_eigen",
        iterations: MAX_JACOBI_SWEEPS,
    })
}

fn finish(m: Matrix, v: Matrix, convergence: ConvergenceInfo) -> JacobiEigen {
    let n = m.rows();
    let d: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));

    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let mut col = v.col(old_j);
        canonicalize_sign(&mut col);
        for i in 0..n {
            eigenvectors[(i, new_j)] = col[i];
        }
    }
    JacobiEigen {
        eigenvalues,
        eigenvectors,
        convergence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::SymmetricEigen;

    fn sym4() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, 1.0, -2.0, 2.0],
            &[1.0, 2.0, 0.0, 1.0],
            &[-2.0, 0.0, 3.0, -2.0],
            &[2.0, 1.0, -2.0, -1.0],
        ])
        .unwrap()
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(jacobi_eigen(&Matrix::zeros(2, 3), 1e-10).is_err());
        assert!(jacobi_eigen(&Matrix::zeros(0, 0), 1e-10).is_err());
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[9.0, 1.0]]).unwrap();
        assert!(jacobi_eigen(&asym, 1e-10).is_err());
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let vals = jacobi_eigen(&a, 1e-10).unwrap().eigenvalues;
        assert!((vals[0] - 3.0).abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let a = sym4();
        let j = jacobi_eigen(&a, 1e-10).unwrap();
        let (vals, vecs) = (j.eigenvalues, j.eigenvectors);
        for (j, &val) in vals.iter().enumerate() {
            let v = vecs.col(j);
            let av = a.mul_vec(&v).unwrap();
            for (avi, vi) in av.iter().zip(&v) {
                assert!((avi - val * vi).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn agrees_with_householder_ql_solver() {
        let a = sym4();
        let jac = jacobi_eigen(&a, 1e-10).unwrap();
        let (jv, jvecs) = (jac.eigenvalues, jac.eigenvectors);
        let e = SymmetricEigen::new(&a).unwrap();
        for (j, (jvj, evj)) in jv.iter().zip(&e.eigenvalues).enumerate() {
            assert!(
                (jvj - evj).abs() < 1e-10,
                "eigenvalue {j}: jacobi {} vs ql {}",
                jvj,
                evj
            );
            // Same canonical sign convention => vectors should match directly
            // (all eigenvalues of this matrix are simple).
            let a_col = jvecs.col(j);
            let b_col = e.eigenvector(j);
            for i in 0..4 {
                assert!(
                    (a_col[i] - b_col[i]).abs() < 1e-8,
                    "vector {j} component {i}: {} vs {}",
                    a_col[i],
                    b_col[i]
                );
            }
        }
    }

    #[test]
    fn diagonal_is_fixed_point() {
        let a = Matrix::from_diagonal(&[5.0, -2.0, 3.0]);
        let vals = jacobi_eigen(&a, 1e-10).unwrap().eigenvalues;
        assert_eq!(vals, vec![5.0, 3.0, -2.0]);
    }

    #[test]
    fn orthonormal_eigenvectors() {
        let a = sym4();
        let vecs = jacobi_eigen(&a, 1e-10).unwrap().eigenvectors;
        let vtv = vecs.transpose().matmul(&vecs).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(4)).unwrap() < 1e-12);
    }

    #[test]
    fn convergence_counts_sweeps_and_residual() {
        // A diagonal matrix converges before the first sweep rotates.
        let a = Matrix::from_diagonal(&[5.0, -2.0, 3.0]);
        let conv = jacobi_eigen(&a, 1e-10).unwrap().convergence;
        assert_eq!(conv.iterations, 0);
        assert_eq!(conv.residual, 0.0);
        assert_eq!(conv.asymmetry, 0.0);

        // A coupled matrix needs sweeps, and the accepted residual
        // satisfies the solver's own convergence test.
        let a = sym4();
        let conv = jacobi_eigen(&a, 1e-10).unwrap().convergence;
        assert!(conv.iterations >= 1);
        assert!(conv.iterations < MAX_JACOBI_SWEEPS);
        // The accepted residual is bounded by the solver's threshold,
        // which is relative to the rotated (near-diagonal) matrix.
        assert!(conv.residual <= 1e-13);
    }
}
