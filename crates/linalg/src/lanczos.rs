//! Lanczos iteration for the top-`k` eigenpairs of a symmetric matrix.
//!
//! The paper's footnote 1: "If the number of columns are much greater
//! than one thousand ... then the methods from [Berry, Dumais, O'Brien,
//! SIAM Review '95] could be applied to efficiently compute the
//! eigensystem". Those methods are Lanczos-type Krylov solvers; this
//! module provides one, so Ratio Rules remain practical when only the
//! handful of retained rules is needed and `M` is large.
//!
//! Implementation: Lanczos with *full reorthogonalization* (robust at
//! the matrix sizes this workspace targets), followed by the
//! implicit-shift QL solve of the small tridiagonal system and a Ritz
//! mapping back to the original space.

use crate::tridiagonal::eigen_tridiagonal;
use crate::vector::{axpy, canonicalize_sign, dot, normalize};
use crate::{LinalgError, Matrix, Result};

/// Result of a top-`k` Lanczos solve.
#[derive(Debug, Clone)]
pub struct LanczosEigen {
    /// The `k` largest eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
    /// Matching Ritz vectors as columns of an `n x k` matrix, unit norm,
    /// canonical sign.
    pub eigenvectors: Matrix,
    /// Lanczos steps actually taken.
    pub steps: usize,
    /// Largest Ritz residual bound `|beta_m * s_{m,i}|` over the
    /// returned pairs — an a-posteriori estimate of `||A y - theta y||`
    /// that costs nothing extra to compute.
    pub residual: f64,
}

/// Computes the `k` largest eigenpairs of a symmetric matrix.
///
/// `steps` controls the Krylov subspace dimension; pass `None` for the
/// default `min(n, max(2k + 10, 30))`. The deterministic start vector
/// makes results reproducible.
pub fn lanczos_top_k(a: &Matrix, k: usize, steps: Option<usize>) -> Result<LanczosEigen> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            op: "lanczos",
            shape: a.shape(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty { op: "lanczos" });
    }
    if k == 0 || k > n {
        return Err(LinalgError::DimensionMismatch {
            op: "lanczos",
            lhs: (k, 1),
            rhs: (n, n),
        });
    }
    let m = steps.unwrap_or_else(|| n.min((2 * k + 10).max(30)));
    let m = m.clamp(k, n);

    // Deterministic, dense start vector (avoid symmetry traps of e1).
    let mut q = vec![0.0_f64; n];
    for (i, qi) in q.iter_mut().enumerate() {
        *qi = 1.0 + ((i as f64) * 0.618_033_988_749).sin();
    }
    normalize(&mut q);

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut alpha = Vec::with_capacity(m);
    let mut beta = vec![0.0_f64]; // beta[0] unused
    let mut last_beta = 0.0_f64;
    basis.push(q);

    for j in 0..m {
        let qj = basis[j].clone();
        let mut w = a.mul_vec(&qj)?;
        let aj = dot(&w, &qj);
        alpha.push(aj);
        // w -= alpha_j q_j + beta_j q_{j-1}
        axpy(-aj, &qj, &mut w);
        if j > 0 {
            axpy(-beta[j], &basis[j - 1], &mut w);
        }
        // Full reorthogonalization (twice is enough).
        for _ in 0..2 {
            for qb in &basis {
                let c = dot(&w, qb);
                axpy(-c, qb, &mut w);
            }
        }
        let b = normalize(&mut w);
        last_beta = b;
        if j + 1 == m {
            break;
        }
        if b <= 1e-13 {
            // Invariant subspace found early; stop expanding.
            break;
        }
        beta.push(b);
        basis.push(w);
    }

    let steps_taken = alpha.len();
    if steps_taken < k {
        return Err(LinalgError::NoConvergence {
            op: "lanczos",
            iterations: steps_taken,
        });
    }

    // Solve the small tridiagonal system.
    let sub: Vec<f64> = (0..steps_taken)
        .map(|i| if i == 0 { 0.0 } else { beta[i] })
        .collect();
    let (theta, s) = eigen_tridiagonal(&alpha, &sub)?;

    // Pick the k largest Ritz values.
    let mut order: Vec<usize> = (0..steps_taken).collect();
    order.sort_by(|&i, &j| theta[j].partial_cmp(&theta[i]).unwrap_or(std::cmp::Ordering::Equal));
    order.truncate(k);

    let eigenvalues: Vec<f64> = order.iter().map(|&i| theta[i]).collect();
    // Ritz residual bound: ||A y_i - theta_i y_i|| = |beta_m s_{m,i}|.
    let residual = order
        .iter()
        .map(|&i| (last_beta * s[(steps_taken - 1, i)]).abs())
        .fold(0.0_f64, f64::max);
    let mut eigenvectors = Matrix::zeros(n, k);
    for (col, &ritz) in order.iter().enumerate() {
        // y = Q s_ritz.
        let mut y = vec![0.0_f64; n];
        for (j, qb) in basis.iter().enumerate() {
            axpy(s[(j, ritz)], qb, &mut y);
        }
        normalize(&mut y);
        canonicalize_sign(&mut y);
        for i in 0..n {
            eigenvectors[(i, col)] = y[i];
        }
    }
    Ok(LanczosEigen {
        eigenvalues,
        eigenvectors,
        steps: steps_taken,
        residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::SymmetricEigen;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        a
    }

    #[test]
    fn matches_dense_solver_on_top_eigenpairs() {
        let a = random_symmetric(30, 0xABCD);
        let dense = SymmetricEigen::new(&a).unwrap();
        let lz = lanczos_top_k(&a, 3, None).unwrap();
        for j in 0..3 {
            assert!(
                (lz.eigenvalues[j] - dense.eigenvalues[j]).abs() < 1e-8,
                "eigenvalue {j}: {} vs {}",
                lz.eigenvalues[j],
                dense.eigenvalues[j]
            );
            let lv = lz.eigenvectors.col(j);
            let dv = dense.eigenvector(j);
            let cos = crate::vector::cosine(&lv, &dv).unwrap();
            assert!(cos.abs() > 1.0 - 1e-8, "vector {j} cosine {cos}");
        }
    }

    #[test]
    fn residuals_are_small() {
        // Random spectra have no eigenvalue gaps, so ask for the full
        // Krylov space (m = n), where Lanczos with reorthogonalization is
        // exact; the default budget is exercised by the gapped-spectrum
        // tests above.
        let a = random_symmetric(40, 0x1234);
        let lz = lanczos_top_k(&a, 5, Some(40)).unwrap();
        for j in 0..5 {
            let v = lz.eigenvectors.col(j);
            let av = a.mul_vec(&v).unwrap();
            for i in 0..40 {
                assert!(
                    (av[i] - lz.eigenvalues[j] * v[i]).abs() < 1e-7,
                    "pair {j} residual too large"
                );
            }
        }
    }

    #[test]
    fn diagonal_matrix_exact() {
        let a = Matrix::from_diagonal(&[9.0, 5.0, 3.0, 1.0, 0.5]);
        let lz = lanczos_top_k(&a, 2, None).unwrap();
        assert!((lz.eigenvalues[0] - 9.0).abs() < 1e-10);
        assert!((lz.eigenvalues[1] - 5.0).abs() < 1e-10);
    }

    #[test]
    fn low_rank_matrix_terminates_early() {
        // Rank-2 Gram matrix: the Krylov space saturates after ~2 steps.
        let b =
            Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0], &[5.0, 4.0, 3.0, 2.0, 1.0]]).unwrap();
        let a = b.transpose().matmul(&b).unwrap();
        let lz = lanczos_top_k(&a, 2, None).unwrap();
        let dense = SymmetricEigen::new(&a).unwrap();
        for j in 0..2 {
            assert!((lz.eigenvalues[j] - dense.eigenvalues[j]).abs() < 1e-7);
        }
    }

    #[test]
    fn covariance_use_case_matches_mining_pipeline() {
        // The actual Ratio-Rules use case: top eigenvectors of a
        // covariance matrix.
        let x = Matrix::from_fn(100, 8, |i, j| {
            let t = (i as f64 / 9.0).sin() * 5.0;
            let u = (i as f64 / 4.0).cos() * 2.0;
            t * (j as f64 + 1.0) * 0.3 + u * if j % 2 == 0 { 1.0 } else { -1.0 }
        });
        let xc_t_xc = {
            let means: Vec<f64> = (0..8)
                .map(|j| x.col(j).iter().sum::<f64>() / 100.0)
                .collect();
            let centered = Matrix::from_fn(100, 8, |i, j| x[(i, j)] - means[j]);
            centered.transpose().matmul(&centered).unwrap()
        };
        let dense = SymmetricEigen::new(&xc_t_xc).unwrap();
        let lz = lanczos_top_k(&xc_t_xc, 2, None).unwrap();
        for j in 0..2 {
            let rel =
                (lz.eigenvalues[j] - dense.eigenvalues[j]).abs() / dense.eigenvalues[j].max(1e-12);
            assert!(rel < 1e-9, "eigenvalue {j} rel err {rel}");
        }
    }

    #[test]
    fn input_validation() {
        assert!(lanczos_top_k(&Matrix::zeros(2, 3), 1, None).is_err());
        assert!(lanczos_top_k(&Matrix::zeros(0, 0), 1, None).is_err());
        let a = Matrix::identity(3);
        assert!(lanczos_top_k(&a, 0, None).is_err());
        assert!(lanczos_top_k(&a, 4, None).is_err());
    }

    #[test]
    fn explicit_step_budget_respected() {
        let a = random_symmetric(20, 0x77);
        let lz = lanczos_top_k(&a, 2, Some(8)).unwrap();
        assert!(lz.steps <= 8);
        assert_eq!(lz.eigenvalues.len(), 2);
    }

    #[test]
    fn residual_bound_tracks_true_residual() {
        // With the full Krylov space the solve is exact: the reported
        // bound collapses to round-off, and it upper-bounds (up to
        // round-off) the measured residual of every returned pair.
        let a = random_symmetric(25, 0x5150);
        let lz = lanczos_top_k(&a, 3, Some(25)).unwrap();
        assert!(lz.residual.is_finite());
        assert!(lz.residual < 1e-7, "exact solve residual {}", lz.residual);
        for j in 0..3 {
            let v = lz.eigenvectors.col(j);
            let av = a.mul_vec(&v).unwrap();
            let true_res: f64 = av
                .iter()
                .zip(&v)
                .map(|(avi, vi)| (avi - lz.eigenvalues[j] * vi).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(
                true_res <= lz.residual + 1e-8,
                "pair {j}: true {true_res} vs bound {}",
                lz.residual
            );
        }
    }
}
