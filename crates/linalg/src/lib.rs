//! Dense linear algebra, built from scratch for the Ratio Rules reproduction.
//!
//! The VLDB'98 Ratio Rules paper treats the eigensolver as an off-the-shelf
//! black box ("any off-the-shelf eigensystem package"). This crate *is* that
//! package: a self-contained, dependency-free dense linear algebra library
//! providing exactly the kernels the paper's method needs:
//!
//! * [`Matrix`] — row-major dense `f64` matrices with the usual algebra.
//! * [`eigen::SymmetricEigen`] — eigendecomposition of real symmetric
//!   matrices via Householder tridiagonalization + implicit-shift QL
//!   (the classic EISPACK `tred2`/`tql2` pair).
//! * [`jacobi`] — an independent cyclic-Jacobi eigensolver used as a
//!   cross-check and for ablation benchmarks.
//! * [`svd`] — Golub–Kahan–Reinsch singular value decomposition, needed by
//!   the paper's over-specified hole-filling case (Eqs. 7–9).
//! * [`pinv`] — the Moore–Penrose pseudo-inverse built on the SVD.
//! * [`solver::SvdSolver`] — the factored form of the pseudo-inverse:
//!   decompose once, then solve each right-hand side with two matvecs.
//!   This is what makes repeated hole-filling (the guessing-error loops)
//!   cheap.
//! * [`lu`], [`qr`], [`cholesky`] — direct solvers used by the
//!   exactly-specified case, least-squares ablations, and the correlated
//!   Gaussian data generator respectively.
//!
//! All computation is in `f64`. Decompositions return errors instead of
//! panicking on dimension mismatches or non-convergence.
//!
//! # Example
//!
//! ```
//! use linalg::{Matrix, eigen::SymmetricEigen};
//!
//! let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]])?;
//! let eig = SymmetricEigen::new(&a)?;
//! assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-12);
//! assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-12);
//! // Eigenvectors come back as unit columns with deterministic signs.
//! let v = eig.eigenvector(0);
//! assert!((v[0] - v[1]).abs() < 1e-12);
//! # Ok::<(), linalg::LinalgError>(())
//! ```

#![warn(missing_docs)]

pub mod cholesky;
pub mod cmp;
pub mod eigen;
pub mod error;
pub mod householder;
pub mod jacobi;
pub mod lanczos;
pub mod lu;
pub mod matrix;
pub mod norms;
pub mod pinv;
pub mod qr;
pub mod sanitize;
pub mod solver;
pub mod svd;
pub mod tridiagonal;
pub mod vector;

pub use error::LinalgError;
pub use matrix::Matrix;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Machine-epsilon-scale tolerance used by the iterative decompositions.
pub const EPS: f64 = f64::EPSILON;

/// Computes `sqrt(a^2 + b^2)` without destructive underflow or overflow.
///
/// This is the classic `pythag` helper from EISPACK / Numerical Recipes and
/// is used by the QL and SVD iterations.
#[inline]
pub fn hypot(a: f64, b: f64) -> f64 {
    let absa = a.abs();
    let absb = b.abs();
    if absa > absb {
        let r = absb / absa;
        absa * (1.0 + r * r).sqrt()
    } else if cmp::exact_zero(absb) {
        0.0
    } else {
        let r = absa / absb;
        absb * (1.0 + r * r).sqrt()
    }
}

/// Transfers the sign of `b` onto the magnitude of `a` (`SIGN(a, b)`).
#[inline]
pub fn sign(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypot_matches_std() {
        for &(a, b) in &[
            (3.0, 4.0),
            (-3.0, 4.0),
            (0.0, 0.0),
            (1e-200, 1e-200),
            (1e200, 1e200),
        ] {
            let ours = hypot(a, b);
            let std = f64::hypot(a, b);
            if cmp::exact_zero(std) {
                assert_eq!(ours, 0.0);
            } else {
                assert!(
                    (ours - std).abs() / std < 1e-12,
                    "hypot({a}, {b}): {ours} vs {std}"
                );
            }
        }
    }

    #[test]
    fn hypot_avoids_overflow() {
        let h = hypot(1e300, 1e300);
        assert!(h.is_finite());
        assert!((h - 1e300 * std::f64::consts::SQRT_2).abs() / h < 1e-12);
    }

    #[test]
    fn sign_transfers_sign() {
        assert_eq!(sign(3.0, -1.0), -3.0);
        assert_eq!(sign(-3.0, 1.0), 3.0);
        assert_eq!(sign(-3.0, 0.0), 3.0);
    }
}
