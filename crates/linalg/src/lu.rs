//! LU decomposition with partial pivoting.
//!
//! Used by the paper's exactly-specified hole-filling case (CASE 1,
//! Eq. 6), which solves a square `k x k` system `V' x = b'` directly.

// Triangular solves index rows and columns of packed factors with the
// loop variable; iterator rewrites obscure the recurrences, so the lint
// is opted out for this file.
#![allow(clippy::needless_range_loop)]

use crate::{LinalgError, Matrix, Result};

/// Relative pivot threshold below which a matrix is declared singular.
pub const SINGULARITY_TOL: f64 = 1e-13;

/// LU decomposition `P A = L U` with partial (row) pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed LU factors: `U` on and above the diagonal, the unit-lower
    /// `L` multipliers below it.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    perm_sign: f64,
}

impl Lu {
    /// Factors a square matrix. Returns [`LinalgError::Singular`] when a
    /// pivot falls below [`SINGULARITY_TOL`] relative to the largest
    /// element of its column.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                op: "lu",
                shape: a.shape(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty { op: "lu" });
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0_f64;
        let scale = a.max_abs().max(1.0);

        for col in 0..n {
            // Pick the pivot row.
            let mut pivot_row = col;
            let mut pivot_val = lu[(col, col)].abs();
            for r in (col + 1)..n {
                if lu[(r, col)].abs() > pivot_val {
                    pivot_val = lu[(r, col)].abs();
                    pivot_row = r;
                }
            }
            if pivot_val <= SINGULARITY_TOL * scale {
                return Err(LinalgError::Singular { op: "lu" });
            }
            if pivot_row != col {
                perm.swap(pivot_row, col);
                perm_sign = -perm_sign;
                for j in 0..n {
                    let tmp = lu[(col, j)];
                    lu[(col, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
            }
            // Eliminate below the pivot.
            let inv_pivot = 1.0 / lu[(col, col)];
            for r in (col + 1)..n {
                let m = lu[(r, col)] * inv_pivot;
                lu[(r, col)] = m;
                for j in (col + 1)..n {
                    let delta = m * lu[(col, j)];
                    lu[(r, j)] -= delta;
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for a single right-hand side.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution on the permuted RHS.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Inverse of the original matrix (column-by-column solve).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0_f64; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

/// One-shot solve of `A x = b`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_rectangular_and_empty() {
        assert!(matches!(
            Lu::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            Lu::new(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty { .. })
        ));
    }

    #[test]
    fn determinant_matches_closed_form() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.determinant() - 10.0).abs() < 1e-12);

        // Permutation sign: swapping rows flips determinant sign.
        let b = Matrix::from_rows(&[&[2.0, 6.0], &[4.0, 7.0]]).unwrap();
        let lub = Lu::new(&b).unwrap();
        assert!((lub.determinant() + 10.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let a =
            Matrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]).unwrap();
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-12);
    }

    #[test]
    fn solve_rejects_wrong_rhs_length() {
        let a = Matrix::identity(3);
        let lu = Lu::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn residual_small_on_pseudo_random_systems() {
        let mut state = 0xDEADBEEFCAFEBABE_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for n in [1usize, 2, 5, 12, 25] {
            let a = Matrix::from_fn(n, n, |i, j| {
                // Diagonally dominant so the system is well conditioned.
                if i == j {
                    next() + n as f64
                } else {
                    next()
                }
            });
            let b: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
            let x = solve(&a, &b).unwrap();
            let ax = a.mul_vec(&x).unwrap();
            for i in 0..n {
                assert!((ax[i] - b[i]).abs() < 1e-9, "n={n} residual too large");
            }
        }
    }
}
