//! Dense row-major `f64` matrix.

use crate::cmp;
use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// The data layout is a single contiguous `Vec<f64>` of length
/// `rows * cols`; element `(i, j)` lives at `i * cols + j`. Rows are the
/// natural streaming unit for the paper's single-pass algorithms, so row
/// access ([`Matrix::row`]) is free while column access copies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns [`LinalgError::BadLength`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::BadLength {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested row slices.
    ///
    /// Returns an error if rows have inconsistent lengths or the input is
    /// empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty { op: "from_rows" });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_rows",
                    lhs: (1, cols),
                    rhs: (i, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a square matrix with `diag` on the diagonal, zero elsewhere.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a column vector (`n x 1`) from a slice.
    pub fn column_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Creates a row vector (`1 x n`) from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        self.col_iter(j).collect()
    }

    /// Iterates over column `j` without allocating: a strided walk of the
    /// row-major buffer. Prefer this over [`Matrix::col`] in inner loops.
    #[inline]
    pub fn col_iter(&self, j: usize) -> impl Iterator<Item = f64> + '_ {
        debug_assert!(j < self.cols);
        self.data[j..].iter().step_by(self.cols.max(1)).copied()
    }

    /// Iterates over rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the cache-friendly i-k-j loop order. Returns
    /// [`LinalgError::DimensionMismatch`] when inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if cmp::exact_zero(aik) {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bkj;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self * rhs^t` without materializing the transpose.
    ///
    /// Each output element is a dot product of two *rows*, so both operands
    /// stream cache-line-sequentially — the natural kernel for the tall-thin
    /// products of the SVD solver (`W · U^t` with `W = V Σ⁺`). Requires
    /// `self.cols == rhs.cols`.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_nt",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (o, b_row) in out_row.iter_mut().zip(rhs.row_iter()) {
                *o = crate::vector::dot(a_row, b_row);
            }
        }
        Ok(out)
    }

    /// Matrix product `self^t * rhs` without materializing the transpose.
    ///
    /// Accumulates rank-1 updates row by row (`out[j][l] += a_kj * b_kl`),
    /// so every access is a sequential row sweep. Requires
    /// `self.rows == rhs.rows`.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul_tn",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for (a_row, b_row) in self.row_iter().zip(rhs.row_iter()) {
            for (j, &akj) in a_row.iter().enumerate() {
                if cmp::exact_zero(akj) {
                    continue;
                }
                for (o, &bkl) in out.row_mut(j).iter_mut().zip(b_row) {
                    *o += akj * bkl;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "mul_vec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self
            .row_iter()
            .map(|row| crate::vector::dot(row, v))
            .collect())
    }

    /// Vector-matrix product `v * self` (v treated as a row vector).
    pub fn vec_mul(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "vec_mul",
                lhs: (1, v.len()),
                rhs: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if cmp::exact_zero(vi) {
                continue;
            }
            for (o, &aij) in out.iter_mut().zip(self.row(i)) {
                *o += vi * aij;
            }
        }
        Ok(out)
    }

    /// Element-wise scaling by a constant.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Returns a new matrix keeping only the rows whose indices appear in
    /// `indices` (in the given order). This is the "elimination matrix"
    /// operation `E_H * A` from the paper, applied directly.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (oi, &i) in indices.iter().enumerate() {
            out.row_mut(oi).copy_from_slice(self.row(i));
        }
        out
    }

    /// Returns a new matrix keeping only the columns whose indices appear in
    /// `indices` (in the given order).
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for i in 0..self.rows {
            for (oj, &j) in indices.iter().enumerate() {
                out[(i, oj)] = self[(i, j)];
            }
        }
        out
    }

    /// Frobenius norm: `sqrt(sum a_ij^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Largest absolute element-wise difference to `other`.
    ///
    /// Returns `None` when shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f64> {
        if self.shape() != other.shape() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs())),
        )
    }

    /// Maximum asymmetry `max |a_ij - a_ji|`; zero for symmetric matrices.
    pub fn max_asymmetry(&self) -> f64 {
        let mut worst = 0.0_f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols.min(self.rows) {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// True when the matrix is square and symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.is_square() && self.max_asymmetry() <= tol
    }

    /// Extracts the main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Sum of the diagonal elements.
    pub fn trace(&self) -> f64 {
        self.diagonal().iter().sum()
    }

    /// Checks that every entry is finite (no NaN/inf).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Result<Matrix>;

    fn add(self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }
}

impl Sub for &Matrix {
    type Output = Result<Matrix>;

    fn sub(self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        })
    }
}

impl Mul for &Matrix {
    type Output = Result<Matrix>;

    fn mul(self, rhs: &Matrix) -> Result<Matrix> {
        self.matmul(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for i in 0..self.rows {
            let row: Vec<String> = self.row(i).iter().map(|x| format!("{x:>12.6}")).collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2x3() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn constructors_and_shape() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.data().iter().all(|&x| cmp::exact_zero(x)));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace(), 3.0);

        let d = Matrix::from_diagonal(&[1.0, 2.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);

        let f = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(f[(1, 0)], 10.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            LinalgError::BadLength {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn from_rows_validates_consistency() {
        assert!(Matrix::from_rows(&[]).is_err());
        let ragged: [&[f64]; 2] = [&[1.0, 2.0], &[3.0]];
        assert!(Matrix::from_rows(&ragged).is_err());
    }

    #[test]
    fn row_and_col_access() {
        let m = m2x3();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
        let rows: Vec<&[f64]> = m.row_iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = m2x3();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = m2x3();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m2x3();
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3).unwrap(), a);
        let i2 = Matrix::identity(2);
        assert_eq!(i2.matmul(&a).unwrap(), a);
    }

    #[test]
    fn col_iter_matches_col() {
        let m = m2x3();
        for j in 0..3 {
            let strided: Vec<f64> = m.col_iter(j).collect();
            assert_eq!(strided, m.col(j));
        }
        assert_eq!(m.col_iter(0).count(), 2);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = m2x3();
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, 0.0, 3.0], &[0.0, 1.0, 1.0]]).unwrap();
        let fused = a.matmul_nt(&b).unwrap();
        let explicit = a.matmul(&b.transpose()).unwrap();
        assert_eq!(fused.shape(), (2, 3));
        assert!(fused.max_abs_diff(&explicit).unwrap() < 1e-14);
        assert!(a.matmul_nt(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = m2x3();
        let b = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 4.0]]).unwrap();
        let fused = a.matmul_tn(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        assert_eq!(fused.shape(), (3, 2));
        assert!(fused.max_abs_diff(&explicit).unwrap() < 1e-14);
        assert!(a.matmul_tn(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = m2x3();
        let err = a.matmul(&a).unwrap_err();
        assert!(matches!(
            err,
            LinalgError::DimensionMismatch { op: "matmul", .. }
        ));
    }

    #[test]
    fn mul_vec_and_vec_mul() {
        let a = m2x3();
        assert_eq!(a.mul_vec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(a.vec_mul(&[1.0, 1.0]).unwrap(), vec![5.0, 7.0, 9.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
        assert!(a.vec_mul(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_scale_neg() {
        let a = m2x3();
        let b = a.scale(2.0);
        let sum = (&a + &a).unwrap();
        assert_eq!(sum, b);
        let diff = (&b - &a).unwrap();
        assert_eq!(diff, a);
        let n = -&a;
        assert_eq!(n[(0, 0)], -1.0);
        assert!((&a + &Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn select_rows_and_cols() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]).unwrap();
        let r = m.select_rows(&[2, 0]);
        assert_eq!(r.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(r.row(1), &[1.0, 2.0, 3.0]);
        let c = m.select_cols(&[1]);
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c.col(0), vec![2.0, 5.0, 8.0]);
    }

    #[test]
    fn select_rows_matches_elimination_matrix_product() {
        // E_H * A where E_H is the identity with rows {1} removed must equal
        // select_rows(&[0, 2]).
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let e = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]).unwrap();
        assert_eq!(e.matmul(&a).unwrap(), a.select_rows(&[0, 2]));
    }

    #[test]
    fn norms_and_symmetry() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 0.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(m.max_abs(), 4.0);

        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        assert!(!m.is_symmetric(1e-9));
        assert_eq!(m.max_asymmetry(), 4.0);
    }

    #[test]
    fn max_abs_diff_detects_shape_mismatch() {
        let a = m2x3();
        assert!(a.max_abs_diff(&Matrix::zeros(3, 2)).is_none());
        assert_eq!(a.max_abs_diff(&a), Some(0.0));
        let b = a.scale(1.5);
        assert_eq!(a.max_abs_diff(&b), Some(3.0));
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.is_finite());
        m[(0, 1)] = f64::NAN;
        assert!(!m.is_finite());
    }

    #[test]
    fn display_renders_all_rows() {
        let s = format!("{}", m2x3());
        assert!(s.contains("[2x3]"));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let m = m2x3();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
