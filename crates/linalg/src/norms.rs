//! Matrix norms and condition estimation.
//!
//! Small diagnostic kit used when judging the hole-filling systems: the
//! spectral norm (largest singular value, by power iteration on `A^t A`),
//! the induced 1- and infinity-norms, and a 2-norm condition estimate.
//! Ill-conditioned `V'` systems mean the known attributes barely
//! constrain some retained rule, so the fill is untrustworthy — the
//! model card surfaces that through these estimates.

use crate::svd::Svd;
use crate::vector::normalize;
use crate::{LinalgError, Matrix, Result};

/// Iteration cap for the power method.
pub const MAX_POWER_ITERATIONS: usize = 200;

/// Induced 1-norm: maximum absolute column sum.
pub fn norm_1(a: &Matrix) -> f64 {
    let mut best = 0.0_f64;
    for j in 0..a.cols() {
        let s: f64 = (0..a.rows()).map(|i| a[(i, j)].abs()).sum();
        best = best.max(s);
    }
    best
}

/// Induced infinity-norm: maximum absolute row sum.
pub fn norm_inf(a: &Matrix) -> f64 {
    a.row_iter()
        .map(|row| row.iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0_f64, f64::max)
}

/// Spectral norm (largest singular value) by power iteration on `A^t A`.
///
/// Converges geometrically with ratio `(s2/s1)^2`; `rel_tol` controls the
/// stopping test on successive estimates.
pub fn spectral_norm(a: &Matrix, rel_tol: f64) -> Result<f64> {
    if a.rows() == 0 || a.cols() == 0 {
        return Err(LinalgError::Empty {
            op: "spectral_norm",
        });
    }
    // Deterministic dense start vector.
    let mut v: Vec<f64> = (0..a.cols())
        .map(|i| 1.0 + ((i as f64) * 0.754_877_666).cos())
        .collect();
    normalize(&mut v);
    let mut estimate = 0.0_f64;
    for _ in 0..MAX_POWER_ITERATIONS {
        let av = a.mul_vec(&v)?;
        let mut atav = a.vec_mul(&av)?;
        let next = normalize(&mut atav).sqrt(); // ||A^t A v||^(1/2) ~ s1
        v = atav;
        if (next - estimate).abs() <= rel_tol * next.max(f64::MIN_POSITIVE) {
            return Ok(next);
        }
        estimate = next;
    }
    Ok(estimate)
}

/// 2-norm condition number `s_max / s_min` via the (exact) SVD.
pub fn condition_number(a: &Matrix) -> Result<f64> {
    Ok(Svd::new(a)?.condition_number())
}

/// Quick conditioning verdict for a linear system matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conditioning {
    /// Condition number below 1e4: solves are trustworthy.
    Good,
    /// Condition number in [1e4, 1e8): expect some digits lost.
    Marginal,
    /// Condition number >= 1e8 (or infinite): solves are unreliable.
    Poor,
}

/// Classifies a matrix's conditioning (see [`Conditioning`]).
pub fn classify_conditioning(a: &Matrix) -> Result<Conditioning> {
    let kappa = condition_number(a)?;
    Ok(if kappa < 1e4 {
        Conditioning::Good
    } else if kappa < 1e8 {
        Conditioning::Marginal
    } else {
        Conditioning::Poor
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_and_inf_norms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]).unwrap();
        // Column sums: |1|+|3| = 4, |-2|+|4| = 6.
        assert_eq!(norm_1(&a), 6.0);
        // Row sums: 3, 7.
        assert_eq!(norm_inf(&a), 7.0);
        // Transpose swaps them.
        assert_eq!(norm_1(&a.transpose()), norm_inf(&a));
    }

    #[test]
    fn spectral_norm_matches_svd() {
        let a =
            Matrix::from_rows(&[&[2.0, -1.0, 0.5], &[0.0, 3.0, 1.0], &[1.0, 1.0, 1.0]]).unwrap();
        let power = spectral_norm(&a, 1e-12).unwrap();
        let svd = Svd::new(&a).unwrap();
        assert!(
            (power - svd.singular_values[0]).abs() < 1e-8,
            "power {power} vs svd {}",
            svd.singular_values[0]
        );
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let a = Matrix::from_diagonal(&[3.0, -7.0, 2.0]);
        assert!((spectral_norm(&a, 1e-12).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn spectral_norm_bounds() {
        // ||A||_2 <= sqrt(||A||_1 ||A||_inf) (Hölder).
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-4.0, 0.0, 1.0]]).unwrap();
        let s = spectral_norm(&a, 1e-10).unwrap();
        assert!(s <= (norm_1(&a) * norm_inf(&a)).sqrt() + 1e-9);
        assert!(s >= a.frobenius_norm() / 2.0_f64.sqrt() - 1e-9);
    }

    #[test]
    fn conditioning_classification() {
        assert_eq!(
            classify_conditioning(&Matrix::identity(3)).unwrap(),
            Conditioning::Good
        );
        let marginal = Matrix::from_diagonal(&[1.0, 1e-5]);
        assert_eq!(
            classify_conditioning(&marginal).unwrap(),
            Conditioning::Marginal
        );
        let poor = Matrix::from_diagonal(&[1.0, 1e-12]);
        assert_eq!(classify_conditioning(&poor).unwrap(), Conditioning::Poor);
        let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(
            classify_conditioning(&singular).unwrap(),
            Conditioning::Poor
        );
    }

    #[test]
    fn empty_rejected() {
        assert!(spectral_norm(&Matrix::zeros(0, 0), 1e-10).is_err());
    }

    #[test]
    fn zero_matrix_norms() {
        let z = Matrix::zeros(3, 3);
        assert_eq!(norm_1(&z), 0.0);
        assert_eq!(norm_inf(&z), 0.0);
        assert_eq!(spectral_norm(&z, 1e-10).unwrap(), 0.0);
    }
}
