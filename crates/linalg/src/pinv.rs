//! Moore–Penrose pseudo-inverse (paper Eqs. 7–9).
//!
//! The paper's CASE 2 (over-specified hole filling) computes
//! `[V']^-1 = S diag(1/sigma_j) R^t` from the SVD `V' = R diag(sigma_j) S^t`
//! and uses it as a least-squares solve. Singular values below a relative
//! threshold are zeroed rather than inverted, which is what makes the
//! pseudo-inverse well-defined for rank-deficient systems.

use crate::solver::SvdSolver;
use crate::{Matrix, Result};

/// Default relative cutoff below which singular values are treated as zero.
pub const DEFAULT_RANK_TOL: f64 = 1e-12;

/// Computes the Moore–Penrose pseudo-inverse `A^+`.
///
/// Singular values `sigma_j <= rel_tol * sigma_max` are dropped. For a
/// square nonsingular matrix this equals the ordinary inverse; for
/// rectangular or singular systems, `A^+ b` is the minimum-norm
/// least-squares solution of `A x = b`.
///
/// ```
/// use linalg::{Matrix, pinv::pseudo_inverse};
/// let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]])?;
/// let p = pseudo_inverse(&a, 1e-12)?;
/// let prod = a.matmul(&p)?;
/// assert!(prod.max_abs_diff(&Matrix::identity(2)).unwrap() < 1e-12);
/// # Ok::<(), linalg::LinalgError>(())
/// ```
pub fn pseudo_inverse(a: &Matrix, rel_tol: f64) -> Result<Matrix> {
    // A^+ = (V diag(1/s)) U^t, materialized from the factored solver.
    SvdSolver::new(a, rel_tol)?.pseudo_inverse()
}

/// Solves `A x = b` in the minimum-norm least-squares sense via the
/// factored SVD — no pseudo-inverse matrix is ever materialized.
///
/// For repeated solves against the same `A`, build an [`SvdSolver`] once
/// and reuse it; this helper re-factors per call.
pub fn solve_least_squares(a: &Matrix, b: &[f64], rel_tol: f64) -> Result<Vec<f64>> {
    SvdSolver::new(a, rel_tol)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_of_nonsingular_square() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let p = pseudo_inverse(&a, DEFAULT_RANK_TOL).unwrap();
        let prod = a.matmul(&p).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(2)).unwrap() < 1e-12);
    }

    #[test]
    fn penrose_conditions_on_rank_deficient_matrix() {
        // Rank-1 matrix; check all four Moore-Penrose conditions.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let p = pseudo_inverse(&a, DEFAULT_RANK_TOL).unwrap();
        assert_eq!(p.shape(), (2, 3));

        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        assert!(apa.max_abs_diff(&a).unwrap() < 1e-12, "A A+ A != A");

        let pap = p.matmul(&a).unwrap().matmul(&p).unwrap();
        assert!(pap.max_abs_diff(&p).unwrap() < 1e-12, "A+ A A+ != A+");

        let ap = a.matmul(&p).unwrap();
        assert!(
            ap.max_abs_diff(&ap.transpose()).unwrap() < 1e-12,
            "A A+ not symmetric"
        );

        let pa = p.matmul(&a).unwrap();
        assert!(
            pa.max_abs_diff(&pa.transpose()).unwrap() < 1e-12,
            "A+ A not symmetric"
        );
    }

    #[test]
    fn least_squares_solution_of_overdetermined_system() {
        // Fit y = 2x + 1 exactly: design matrix [x, 1].
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]).unwrap();
        let b = [1.0, 3.0, 5.0, 7.0];
        let x = solve_least_squares(&a, &b, DEFAULT_RANK_TOL).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: solution must be the projection.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        let b = [1.0, 3.0, 5.0];
        let x = solve_least_squares(&a, &b, DEFAULT_RANK_TOL).unwrap();
        // First column fitted to mean(1,3)=2, second to 5.
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn minimum_norm_solution_of_underdetermined_system() {
        // x1 + x2 = 2 has minimum-norm solution (1, 1).
        let a = Matrix::row_vector(&[1.0, 1.0]);
        let x = solve_least_squares(&a, &[2.0], DEFAULT_RANK_TOL).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pinv_of_zero_matrix_is_zero() {
        let a = Matrix::zeros(2, 3);
        let p = pseudo_inverse(&a, DEFAULT_RANK_TOL).unwrap();
        assert_eq!(p.shape(), (3, 2));
        assert_eq!(p.max_abs(), 0.0);
    }

    #[test]
    fn pinv_of_orthonormal_columns_is_transpose() {
        let s = 1.0 / 2.0_f64.sqrt();
        let a = Matrix::from_rows(&[&[s, s], &[s, -s], &[0.0, 0.0]]).unwrap();
        let p = pseudo_inverse(&a, DEFAULT_RANK_TOL).unwrap();
        assert!(p.max_abs_diff(&a.transpose()).unwrap() < 1e-12);
    }
}
