//! Householder QR decomposition and least-squares solve.
//!
//! Not used by the paper's own pseudo-code — CASE 2 uses the SVD
//! pseudo-inverse — but provided as an alternative least-squares backend
//! for the hole-solver ablation (`bench`), and as a second opinion in the
//! test suites.

// Triangular solves index rows and columns of packed factors with the
// loop variable; iterator rewrites obscure the recurrences, so the lint
// is opted out for this file.
#![allow(clippy::needless_range_loop)]

use crate::cmp;
use crate::{LinalgError, Matrix, Result};

/// QR decomposition `A = Q R` with `Q` having orthonormal columns
/// (thin QR: for `m x n` input with `m >= n`, `Q` is `m x n`, `R` is `n x n`).
#[derive(Debug, Clone)]
pub struct Qr {
    /// Orthonormal factor.
    pub q: Matrix,
    /// Upper-triangular factor.
    pub r: Matrix,
}

impl Qr {
    /// Computes the thin QR factorization of a tall (or square) matrix.
    ///
    /// Returns an error for `m < n` inputs or empty matrices.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty { op: "qr" });
        }
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                op: "qr",
                lhs: (m, n),
                rhs: (n, n),
            });
        }

        // Householder vectors stored per column; R built in place.
        let mut r = a.clone();
        let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);

        for k in 0..n {
            // Build the Householder vector for column k below the diagonal.
            let mut v: Vec<f64> = (k..m).map(|i| r[(i, k)]).collect();
            let alpha = -v[0].signum() * crate::vector::norm(&v);
            if cmp::exact_zero(alpha) {
                // Column already zero below (and at) the diagonal; identity
                // reflection.
                vs.push(vec![0.0; m - k]);
                continue;
            }
            v[0] -= alpha;
            let vnorm = crate::vector::norm(&v);
            if vnorm > 0.0 {
                for x in &mut v {
                    *x /= vnorm;
                }
            }
            // Apply H = I - 2 v v^t to the trailing submatrix.
            for j in k..n {
                let mut proj = 0.0;
                for (t, &vi) in v.iter().enumerate() {
                    proj += vi * r[(k + t, j)];
                }
                proj *= 2.0;
                for (t, &vi) in v.iter().enumerate() {
                    r[(k + t, j)] -= proj * vi;
                }
            }
            vs.push(v);
        }

        // Zero strictly-below-diagonal entries (clean numerical dust) and
        // truncate R to n x n.
        let mut r_thin = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r_thin[(i, j)] = r[(i, j)];
            }
        }

        // Accumulate thin Q by applying reflections to the first n columns
        // of the identity, in reverse order.
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            q[(j, j)] = 1.0;
        }
        for k in (0..n).rev() {
            let v = &vs[k];
            if v.iter().all(|&x| cmp::exact_zero(x)) {
                continue;
            }
            for j in 0..n {
                let mut proj = 0.0;
                for (t, &vi) in v.iter().enumerate() {
                    proj += vi * q[(k + t, j)];
                }
                proj *= 2.0;
                for (t, &vi) in v.iter().enumerate() {
                    q[(k + t, j)] -= proj * vi;
                }
            }
        }

        Ok(Qr { q, r: r_thin })
    }

    /// Solves `A x = b` in the least-squares sense: `R x = Q^t b` by back
    /// substitution. Returns [`LinalgError::Singular`] when `R` has a
    /// (near-)zero diagonal entry, i.e. `A` is rank deficient.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.q.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "qr_solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        // Q^t b, one strided pass per column — no per-column allocation.
        let mut y = vec![0.0_f64; n];
        for (j, yj) in y.iter_mut().enumerate() {
            *yj = self.q.col_iter(j).zip(b).map(|(q, &bv)| q * bv).sum();
        }
        // Back substitution.
        let scale = self.r.max_abs().max(1.0);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for j in (i + 1)..n {
                sum -= self.r[(i, j)] * y[j];
            }
            let d = self.r[(i, i)];
            if d.abs() <= 1e-13 * scale {
                return Err(LinalgError::Singular { op: "qr_solve" });
            }
            y[i] = sum / d;
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_qr(a: &Matrix, tol: f64) -> Qr {
        let qr = Qr::new(a).unwrap();
        // A = QR.
        let rec = qr.q.matmul(&qr.r).unwrap();
        assert!(
            rec.max_abs_diff(a).unwrap() < tol,
            "QR reconstruction failed"
        );
        // Q^t Q = I.
        let qtq = qr.q.transpose().matmul(&qr.q).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(a.cols())).unwrap() < tol);
        // R upper triangular.
        for i in 0..qr.r.rows() {
            for j in 0..i {
                assert_eq!(qr.r[(i, j)], 0.0);
            }
        }
        qr
    }

    #[test]
    fn square_factorization() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[3.0, 2.0]]).unwrap();
        check_qr(&a, 1e-12);
    }

    #[test]
    fn tall_factorization() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[1.0, 4.0], &[1.0, 4.0], &[1.0, -1.0]]).unwrap();
        check_qr(&a, 1e-12);
    }

    #[test]
    fn rejects_wide_and_empty() {
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Qr::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn least_squares_matches_pinv() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]).unwrap();
        let b = [1.1, 2.9, 5.2, 6.8];
        let x_qr = Qr::new(&a).unwrap().solve(&b).unwrap();
        let x_pinv = crate::pinv::solve_least_squares(&a, &b, 1e-12).unwrap();
        for i in 0..2 {
            assert!((x_qr[i] - x_pinv[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        assert!(matches!(
            qr.solve(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn solve_rejects_wrong_rhs() {
        let a = Matrix::identity(3);
        let qr = Qr::new(&a).unwrap();
        assert!(qr.solve(&[1.0]).is_err());
    }

    #[test]
    fn exact_square_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = Qr::new(&a).unwrap().solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }
}
