//! Runtime numeric-invariant checks, gated by the `numeric-sanitizer`
//! feature.
//!
//! The static half of the invariant story is `rrlint` (no raw float
//! equality, no panics in library code); this module is the runtime
//! half: debug assertions that the values flowing into the eigensolvers
//! and factorizations are finite and, where required, symmetric. A NaN
//! that sneaks past input validation — a corrupted checkpoint, an
//! overflow in the single-pass accumulator, a bad merge — surfaces
//! *here*, at the boundary where it entered, instead of thirty QL
//! sweeps later as a convergence failure.
//!
//! Cost model: with the feature **off** (the default) or in release
//! builds (`debug_assertions` off), every function in this module is an
//! empty `#[inline]` stub — release behavior and codegen are unchanged,
//! which the reconstruction-bench ±5% gate verifies. With
//! `--features numeric-sanitizer` in a debug/test build, violations
//! panic with the offending location, which the resilience layer's
//! `catch_unwind` ladders already know how to contain.

/// True when the sanitizer actually checks (feature on + debug build).
#[must_use]
pub fn active() -> bool {
    cfg!(all(feature = "numeric-sanitizer", debug_assertions))
}

#[cfg(all(feature = "numeric-sanitizer", debug_assertions))]
mod imp {
    /// Panics if any element of `xs` is NaN or infinite.
    pub fn check_finite_slice(ctx: &str, xs: &[f64]) {
        if let Some((i, v)) = xs
            .iter()
            .enumerate()
            .find(|(_, v)| !v.is_finite())
        {
            // rrlint-allow: RR001 failing fast is this module's contract; debug-only
            panic!("numeric-sanitizer: {ctx}: non-finite value {v} at index {i}");
        }
    }

    /// Panics if `x` is NaN or infinite.
    pub fn check_finite(ctx: &str, x: f64) {
        if !x.is_finite() {
            // rrlint-allow: RR001 failing fast is this module's contract; debug-only
            panic!("numeric-sanitizer: {ctx}: non-finite value {x}");
        }
    }

    /// Panics if the row-major `rows x cols` buffer `data` is not
    /// symmetric to within `tol` (absolute, on the element difference).
    pub fn check_symmetric(ctx: &str, data: &[f64], rows: usize, cols: usize, tol: f64) {
        if rows != cols {
            // rrlint-allow: RR001 failing fast is this module's contract; debug-only
            panic!("numeric-sanitizer: {ctx}: matrix is {rows}x{cols}, not square");
        }
        for i in 0..rows {
            for j in (i + 1)..cols {
                let a = data[i * cols + j];
                let b = data[j * cols + i];
                let d = (a - b).abs();
                // NaN differences must fail too, hence not `!(d <= tol)`.
                if d > tol || d.is_nan() {
                    // rrlint-allow: RR001 failing fast is this module's contract; debug-only
                    panic!(
                        "numeric-sanitizer: {ctx}: asymmetry at ({i},{j}): {a} vs {b} (tol {tol})"
                    );
                }
            }
        }
    }
}

#[cfg(not(all(feature = "numeric-sanitizer", debug_assertions)))]
mod imp {
    /// No-op stub; the sanitizer is compiled out.
    #[inline(always)]
    pub fn check_finite_slice(_ctx: &str, _xs: &[f64]) {}
    /// No-op stub; the sanitizer is compiled out.
    #[inline(always)]
    pub fn check_finite(_ctx: &str, _x: f64) {}
    /// No-op stub; the sanitizer is compiled out.
    #[inline(always)]
    pub fn check_symmetric(_ctx: &str, _data: &[f64], _rows: usize, _cols: usize, _tol: f64) {}
}

pub use imp::{check_finite, check_finite_slice, check_symmetric};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stubs_or_checks_match_feature_state() {
        // Finite inputs must pass in every configuration.
        check_finite("t", 1.0);
        check_finite_slice("t", &[0.0, -2.5, 1e300]);
        check_symmetric("t", &[1.0, 2.0, 2.0, 1.0], 2, 2, 0.0);
    }

    #[test]
    fn violations_caught_iff_active() {
        let caught = std::panic::catch_unwind(|| check_finite("t", f64::NAN)).is_err();
        assert_eq!(caught, active());
        let caught = std::panic::catch_unwind(|| {
            check_finite_slice("t", &[1.0, f64::INFINITY])
        })
        .is_err();
        assert_eq!(caught, active());
        let caught = std::panic::catch_unwind(|| {
            check_symmetric("t", &[1.0, 2.0, 3.0, 1.0], 2, 2, 1e-12)
        })
        .is_err();
        assert_eq!(caught, active());
    }

    #[cfg(all(feature = "numeric-sanitizer", debug_assertions))]
    #[test]
    fn messages_carry_location() {
        let err = std::panic::catch_unwind(|| {
            check_finite_slice("covariance row", &[1.0, f64::NAN])
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("covariance row"), "{msg}");
        assert!(msg.contains("index 1"), "{msg}");
        // NaN asymmetry must not pass the `<=` check.
        assert!(std::panic::catch_unwind(|| {
            check_symmetric("c", &[1.0, f64::NAN, 2.0, 1.0], 2, 2, 1e300)
        })
        .is_err());
    }
}
