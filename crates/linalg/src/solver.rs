//! Reusable least-squares solver: factor once, solve many times.
//!
//! The paper's hole-filling equations (Eqs. 7–9) solve `V' x = b'` through
//! the pseudo-inverse of `V'`, and the guessing-error evaluation (Figs.
//! 6–7) solves the *same* `V'` for thousands of right-hand sides — one per
//! test row. Recomputing the Golub–Kahan SVD per right-hand side wastes
//! almost all of that work: the factorization depends only on `V'`, not on
//! `b'`.
//!
//! [`SvdSolver`] separates the two phases. Construction runs the SVD once
//! and stores the factors needed for minimum-norm least-squares solves:
//! `W = V Σ⁺` and `U`. Each subsequent [`SvdSolver::solve`] is then two
//! cheap matrix-vector products, `x = W (Uᵗ b)` — `O(mn)` instead of the
//! `O(mn²)`-with-a-large-constant iterative SVD.

use crate::cmp;
use crate::svd::Svd;
use crate::{LinalgError, Matrix, Result};

/// A factored Moore–Penrose least-squares solver for a fixed matrix `A`.
///
/// For any right-hand side `b`, [`SvdSolver::solve`] returns the
/// minimum-norm least-squares solution of `A x = b` — identical (up to
/// floating-point rounding) to `pseudo_inverse(A)? * b`, but amortizing
/// the factorization across calls.
#[derive(Debug, Clone)]
pub struct SvdSolver {
    /// `W = V Σ⁺`: right singular vectors with columns scaled by the
    /// inverted (thresholded) singular values. Shape `n x r_cols`.
    w: Matrix,
    /// Left singular vectors `U` (`m x r_cols`); applied transposed via a
    /// vector-matrix product, so the transpose is never materialized.
    u: Matrix,
    /// Numerical rank under the construction tolerance.
    rank: usize,
    /// Shape of the original matrix `A`.
    shape: (usize, usize),
    /// QR sweeps the underlying Golub–Kahan SVD needed to converge.
    sweeps: usize,
    /// Condition number over the *retained* spectrum:
    /// `sigma_max / sigma_min_retained` (0.0 for a rank-0 matrix).
    condition: f64,
}

impl SvdSolver {
    /// Factors `a`, zeroing singular values `<= rel_tol * sigma_max` (the
    /// same convention as [`crate::pinv::pseudo_inverse`]).
    pub fn new(a: &Matrix, rel_tol: f64) -> Result<Self> {
        crate::sanitize::check_finite("solver rel_tol", rel_tol);
        let svd = Svd::new(a)?;
        let smax = svd.singular_values.first().copied().unwrap_or(0.0);
        let cutoff = rel_tol * smax;
        let inv_s: Vec<f64> = svd
            .singular_values
            .iter()
            .map(|&s| if s > cutoff && s > 0.0 { 1.0 / s } else { 0.0 })
            .collect();
        let rank = inv_s.iter().filter(|&&v| !cmp::exact_zero(v)).count();
        let condition = if rank > 0 {
            smax / svd.singular_values[rank - 1]
        } else {
            0.0
        };
        // Scale V's columns by the inverted spectrum: W = V Σ⁺. Column
        // scaling is exact (one multiply per element), so this equals the
        // matmul with diag(inv_s) the one-shot pseudo-inverse performs.
        let mut w = svd.v;
        for i in 0..w.rows() {
            for (x, &inv) in w.row_mut(i).iter_mut().zip(&inv_s) {
                *x *= inv;
            }
        }
        Ok(SvdSolver {
            w,
            rank,
            shape: a.shape(),
            sweeps: svd.sweeps,
            condition,
            u: svd.u,
        })
    }

    /// Shape `(m, n)` of the factored matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.shape
    }

    /// Numerical rank under the construction tolerance.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// QR sweeps the underlying SVD needed to converge (0 when the input
    /// was already diagonal after bidiagonalization).
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Condition number over the retained spectrum:
    /// `sigma_max / sigma_min_retained`, or 0.0 for a rank-0 matrix.
    pub fn condition(&self) -> f64 {
        self.condition
    }

    /// Minimum-norm least-squares solution of `A x = b`.
    ///
    /// Two matvecs: `t = Uᵗ b` then `x = W t`. Returns
    /// [`LinalgError::DimensionMismatch`] when `b.len() != m`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.shape.0 {
            return Err(LinalgError::DimensionMismatch {
                op: "svd_solve",
                lhs: self.shape,
                rhs: (b.len(), 1),
            });
        }
        let t = self.u.vec_mul(b)?; // Uᵗ b without materializing Uᵗ
        self.w.mul_vec(&t)
    }

    /// Materializes the pseudo-inverse `A⁺ = W Uᵗ` (`n x m`).
    ///
    /// Useful when a caller genuinely needs the matrix; for solving, prefer
    /// [`SvdSolver::solve`].
    pub fn pseudo_inverse(&self) -> Result<Matrix> {
        self.w.matmul_nt(&self.u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pinv::{pseudo_inverse, DEFAULT_RANK_TOL};

    fn solver(a: &Matrix) -> SvdSolver {
        SvdSolver::new(a, DEFAULT_RANK_TOL).unwrap()
    }

    #[test]
    fn solve_matches_one_shot_pseudo_inverse() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[0.0, 3.0, 1.0],
            &[1.0, 1.0, 1.0],
            &[-2.0, 0.5, 2.0],
        ])
        .unwrap();
        let s = solver(&a);
        assert_eq!(s.shape(), (4, 3));
        assert_eq!(s.rank(), 3);
        let pinv = pseudo_inverse(&a, DEFAULT_RANK_TOL).unwrap();
        for b in [
            vec![1.0, 0.0, 0.0, 0.0],
            vec![1.0, 2.0, 3.0, 4.0],
            vec![-0.5, 0.25, 7.0, -1.0],
        ] {
            let fast = s.solve(&b).unwrap();
            let slow = pinv.mul_vec(&b).unwrap();
            for (x, y) in fast.iter().zip(&slow) {
                assert!((x - y).abs() < 1e-12, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn materialized_pseudo_inverse_matches_pinv_module() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let s = solver(&a);
        assert_eq!(s.rank(), 1);
        let ours = s.pseudo_inverse().unwrap();
        let reference = pseudo_inverse(&a, DEFAULT_RANK_TOL).unwrap();
        assert!(ours.max_abs_diff(&reference).unwrap() < 1e-13);
    }

    #[test]
    fn square_nonsingular_solves_exactly() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let s = solver(&a);
        // A x = b with x = (1, -1) -> b = (-3, -4).
        let x = s.solve(&[-3.0, -4.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn minimum_norm_solution_of_underdetermined_system() {
        let a = Matrix::row_vector(&[1.0, 1.0]);
        let s = solver(&a);
        let x = s.solve(&[2.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_on_overdetermined_system() {
        // Fit y = 2x + 1 exactly.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]).unwrap();
        let s = solver(&a);
        let x = s.solve(&[1.0, 3.0, 5.0, 7.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix_has_rank_zero_and_zero_solution() {
        let a = Matrix::zeros(3, 2);
        let s = solver(&a);
        assert_eq!(s.rank(), 0);
        let x = s.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert!(x.iter().all(|&v| cmp::exact_zero(v)));
        assert_eq!(s.condition(), 0.0);
    }

    #[test]
    fn convergence_accessors_report_effort_and_conditioning() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0], &[0.5, -1.0]]).unwrap();
        let s = solver(&a);
        assert!(s.sweeps() >= 1);
        assert!(s.condition() >= 1.0);
        assert!(s.condition().is_finite());
        // An orthogonal-column matrix is perfectly conditioned.
        let q = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let sq = solver(&q);
        assert!((sq.condition() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dimension_validation() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let s = solver(&a);
        assert!(s.solve(&[1.0, 2.0]).is_err());
        assert!(s.solve(&[1.0, 2.0, 3.0, 4.0]).is_err());
    }
}
