//! Singular value decomposition (Golub–Kahan–Reinsch).
//!
//! The paper's over-specified hole-filling case (Sec. 4.4, CASE 2) solves
//! `V' x = b'` in the least-squares sense through the Moore–Penrose
//! pseudo-inverse, "using the singular value decomposition of V'" (Eqs.
//! 7–9). This module provides that SVD: Householder bidiagonalization
//! followed by implicit-shift QR on the bidiagonal form — the classic
//! `svdcmp` routine.

use crate::cmp;
use crate::{hypot, sign, LinalgError, Matrix, Result};

/// Maximum QR sweeps per singular value.
pub const MAX_SVD_ITERATIONS: usize = 60;

/// Thin singular value decomposition `A = U diag(s) V^t`.
///
/// For an `m x n` input with `m >= n`: `u` is `m x n` with orthonormal
/// columns, `singular_values` has length `n` (descending, nonnegative), and
/// `v` is `n x n` orthogonal. Inputs with `m < n` are handled by decomposing
/// the transpose, so `u` is `m x m` and `v` is `n x m`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns).
    pub u: Matrix,
    /// Singular values, sorted descending.
    pub singular_values: Vec<f64>,
    /// Right singular vectors (columns).
    pub v: Matrix,
    /// Total implicit-QR sweeps spent diagonalizing the bidiagonal
    /// form, summed over all singular values (0 when the input was
    /// already diagonal).
    pub sweeps: usize,
}

impl Svd {
    /// Computes the thin SVD of an arbitrary real matrix.
    pub fn new(a: &Matrix) -> Result<Self> {
        crate::sanitize::check_finite_slice("svd input", a.data());
        if a.rows() == 0 || a.cols() == 0 {
            return Err(LinalgError::Empty { op: "svd" });
        }
        if a.rows() >= a.cols() {
            svd_tall(a)
        } else {
            // A = (A^t)^t = (U' S V'^t)^t = V' S U'^t.
            let t = svd_tall(&a.transpose())?;
            Ok(Svd {
                u: t.v,
                singular_values: t.singular_values,
                v: t.u,
                sweeps: t.sweeps,
            })
        }
    }

    /// Rank of the matrix: singular values above `tol * s_max`.
    pub fn rank(&self, rel_tol: f64) -> usize {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        if cmp::exact_zero(smax) {
            return 0;
        }
        self.singular_values
            .iter()
            .filter(|&&s| s > rel_tol * smax)
            .count()
    }

    /// Condition number `s_max / s_min` (`inf` if singular).
    pub fn condition_number(&self) -> f64 {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        let smin = self.singular_values.last().copied().unwrap_or(0.0);
        if cmp::exact_zero(smin) {
            f64::INFINITY
        } else {
            smax / smin
        }
    }

    /// Reconstructs the original matrix `U diag(s) V^t` (testing aid).
    pub fn reconstruct(&self) -> Result<Matrix> {
        // Scale U's columns by the spectrum, then multiply by V^t via the
        // transpose-free row-dot kernel.
        let mut us = self.u.clone();
        for i in 0..us.rows() {
            for (x, &s) in us.row_mut(i).iter_mut().zip(&self.singular_values) {
                *x *= s;
            }
        }
        us.matmul_nt(&self.v)
    }
}

/// SVD for `m >= n` matrices — the core GKR routine.
fn svd_tall(input: &Matrix) -> Result<Svd> {
    let m = input.rows();
    let n = input.cols();
    debug_assert!(m >= n);

    let mut a = input.clone(); // becomes U
    let mut w = vec![0.0_f64; n]; // singular values
    let mut v = Matrix::zeros(n, n);
    let mut rv1 = vec![0.0_f64; n];

    // --- Householder bidiagonalization ---------------------------------
    let mut g = 0.0_f64;
    let mut scale = 0.0_f64;
    let mut anorm = 0.0_f64;
    for i in 0..n {
        let l = i + 1;
        rv1[i] = scale * g;
        g = 0.0;
        scale = 0.0;
        if i < m {
            for k in i..m {
                scale += a[(k, i)].abs();
            }
            if !cmp::exact_zero(scale) {
                let mut s = 0.0_f64;
                for k in i..m {
                    a[(k, i)] /= scale;
                    s += a[(k, i)] * a[(k, i)];
                }
                let f = a[(i, i)];
                g = -sign(s.sqrt(), f);
                let h = f * g - s;
                a[(i, i)] = f - g;
                for j in l..n {
                    let mut s = 0.0_f64;
                    for k in i..m {
                        s += a[(k, i)] * a[(k, j)];
                    }
                    let f = s / h;
                    for k in i..m {
                        let inc = f * a[(k, i)];
                        a[(k, j)] += inc;
                    }
                }
                for k in i..m {
                    a[(k, i)] *= scale;
                }
            }
        }
        w[i] = scale * g;
        g = 0.0;
        scale = 0.0;
        if i < m && i + 1 != n {
            for k in l..n {
                scale += a[(i, k)].abs();
            }
            if !cmp::exact_zero(scale) {
                let mut s = 0.0_f64;
                for k in l..n {
                    a[(i, k)] /= scale;
                    s += a[(i, k)] * a[(i, k)];
                }
                let f = a[(i, l)];
                g = -sign(s.sqrt(), f);
                let h = f * g - s;
                a[(i, l)] = f - g;
                for k in l..n {
                    rv1[k] = a[(i, k)] / h;
                }
                for j in l..m {
                    let mut s = 0.0_f64;
                    for k in l..n {
                        s += a[(j, k)] * a[(i, k)];
                    }
                    for k in l..n {
                        let inc = s * rv1[k];
                        a[(j, k)] += inc;
                    }
                }
                for k in l..n {
                    a[(i, k)] *= scale;
                }
            }
        }
        anorm = anorm.max(w[i].abs() + rv1[i].abs());
    }

    // --- Accumulate right-hand transformations (V) ----------------------
    {
        let mut l = n; // sentinel: "previous i + 1"
        for i in (0..n).rev() {
            if i + 1 < n {
                if !cmp::exact_zero(g) {
                    for j in l..n {
                        v[(j, i)] = (a[(i, j)] / a[(i, l)]) / g;
                    }
                    for j in l..n {
                        let mut s = 0.0_f64;
                        for k in l..n {
                            s += a[(i, k)] * v[(k, j)];
                        }
                        for k in l..n {
                            let inc = s * v[(k, i)];
                            v[(k, j)] += inc;
                        }
                    }
                }
                for j in l..n {
                    v[(i, j)] = 0.0;
                    v[(j, i)] = 0.0;
                }
            }
            v[(i, i)] = 1.0;
            g = rv1[i];
            l = i;
        }
    }

    // --- Accumulate left-hand transformations (U) -----------------------
    for i in (0..n.min(m)).rev() {
        let l = i + 1;
        g = w[i];
        for j in l..n {
            a[(i, j)] = 0.0;
        }
        if !cmp::exact_zero(g) {
            g = 1.0 / g;
            for j in l..n {
                let mut s = 0.0_f64;
                for k in l..m {
                    s += a[(k, i)] * a[(k, j)];
                }
                let f = (s / a[(i, i)]) * g;
                for k in i..m {
                    let inc = f * a[(k, i)];
                    a[(k, j)] += inc;
                }
            }
            for j in i..m {
                a[(j, i)] *= g;
            }
        } else {
            for j in i..m {
                a[(j, i)] = 0.0;
            }
        }
        a[(i, i)] += 1.0;
    }

    // --- Diagonalize the bidiagonal form --------------------------------
    let mut total_sweeps = 0usize;
    for k in (0..n).rev() {
        let mut converged = false;
        for its in 0..MAX_SVD_ITERATIONS {
            // Test for splitting.
            let mut l = k;
            let mut flag = true;
            loop {
                if rv1[l].abs() + anorm == anorm {
                    flag = false;
                    break;
                }
                // rv1[0] == 0 guarantees l >= 1 here.
                if w[l - 1].abs() + anorm == anorm {
                    break;
                }
                l -= 1;
            }
            if flag {
                // Cancellation of rv1[l] if l > 0.
                let nm = l - 1;
                let mut c = 0.0_f64;
                let mut s = 1.0_f64;
                for i in l..=k {
                    let f = s * rv1[i];
                    rv1[i] *= c;
                    if f.abs() + anorm == anorm {
                        break;
                    }
                    g = w[i];
                    let h = hypot(f, g);
                    w[i] = h;
                    let h_inv = 1.0 / h;
                    c = g * h_inv;
                    s = -f * h_inv;
                    for j in 0..m {
                        let y = a[(j, nm)];
                        let z = a[(j, i)];
                        a[(j, nm)] = y * c + z * s;
                        a[(j, i)] = z * c - y * s;
                    }
                }
            }
            let z = w[k];
            if l == k {
                // Convergence; enforce nonnegative singular value.
                if z < 0.0 {
                    w[k] = -z;
                    for j in 0..n {
                        v[(j, k)] = -v[(j, k)];
                    }
                }
                converged = true;
                break;
            }
            if its + 1 == MAX_SVD_ITERATIONS {
                break;
            }
            total_sweeps += 1;

            // Shift from bottom 2x2 minor.
            let mut x = w[l];
            let nm = k - 1;
            let mut y = w[nm];
            g = rv1[nm];
            let mut h = rv1[k];
            let mut f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y);
            g = hypot(f, 1.0);
            f = ((x - z) * (x + z) + h * ((y / (f + sign(g, f))) - h)) / x;

            // Next QR transformation.
            let mut c = 1.0_f64;
            let mut s = 1.0_f64;
            for j in l..=nm {
                let i = j + 1;
                g = rv1[i];
                y = w[i];
                h = s * g;
                g *= c;
                let mut zz = hypot(f, h);
                rv1[j] = zz;
                c = f / zz;
                s = h / zz;
                f = x * c + g * s;
                g = g * c - x * s;
                h = y * s;
                y *= c;
                for jj in 0..n {
                    let xx = v[(jj, j)];
                    let z2 = v[(jj, i)];
                    v[(jj, j)] = xx * c + z2 * s;
                    v[(jj, i)] = z2 * c - xx * s;
                }
                zz = hypot(f, h);
                w[j] = zz;
                if !cmp::exact_zero(zz) {
                    let inv = 1.0 / zz;
                    c = f * inv;
                    s = h * inv;
                }
                f = c * g + s * y;
                x = c * y - s * g;
                for jj in 0..m {
                    let yy = a[(jj, j)];
                    let z2 = a[(jj, i)];
                    a[(jj, j)] = yy * c + z2 * s;
                    a[(jj, i)] = z2 * c - yy * s;
                }
            }
            rv1[l] = 0.0;
            rv1[k] = f;
            w[k] = x;
        }
        if !converged {
            return Err(LinalgError::NoConvergence {
                op: "svd",
                iterations: MAX_SVD_ITERATIONS,
            });
        }
    }

    // --- Sort singular values descending, permuting U and V columns -----
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| w[j].partial_cmp(&w[i]).unwrap_or(std::cmp::Ordering::Equal));
    let singular_values: Vec<f64> = order.iter().map(|&i| w[i]).collect();
    let u = permute_cols(&a, &order);
    let v = permute_cols(&v, &order);

    Ok(Svd {
        u,
        singular_values,
        v,
        sweeps: total_sweeps,
    })
}

fn permute_cols(m: &Matrix, order: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), order.len());
    for (new_j, &old_j) in order.iter().enumerate() {
        for (i, v) in m.col_iter(old_j).enumerate() {
            out[(i, new_j)] = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_svd(a: &Matrix, tol: f64) -> Svd {
        let svd = Svd::new(a).unwrap();
        // Reconstruction.
        let rec = svd.reconstruct().unwrap();
        let diff = rec.max_abs_diff(a).unwrap();
        assert!(diff < tol, "reconstruction error {diff} (tol {tol})");
        // Orthonormal columns.
        let utu = svd.u.transpose().matmul(&svd.u).unwrap();
        let k = utu.rows();
        assert!(
            utu.max_abs_diff(&Matrix::identity(k)).unwrap() < tol,
            "U columns not orthonormal"
        );
        let vtv = svd.v.transpose().matmul(&svd.v).unwrap();
        let k = vtv.rows();
        assert!(
            vtv.max_abs_diff(&Matrix::identity(k)).unwrap() < tol,
            "V columns not orthonormal"
        );
        // Nonnegative, descending.
        for s in &svd.singular_values {
            assert!(*s >= 0.0);
        }
        for pair in svd.singular_values.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        svd
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diagonal(&[3.0, 1.0, 2.0]);
        let svd = check_svd(&a, 1e-12);
        assert!((svd.singular_values[0] - 3.0).abs() < 1e-12);
        assert!((svd.singular_values[1] - 2.0).abs() < 1e-12);
        assert!((svd.singular_values[2] - 1.0).abs() < 1e-12);
        // Already diagonal: no QR sweeps needed.
        assert_eq!(svd.sweeps, 0);
    }

    #[test]
    fn sweep_count_reported_for_coupled_input() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 5.0]]).unwrap();
        let svd = check_svd(&a, 1e-12);
        assert!(svd.sweeps >= 1);
        assert!(svd.sweeps <= 2 * MAX_SVD_ITERATIONS);
        // The transpose path also reports its (possibly different) effort:
        // it bidiagonalizes A^T, so the sweep count needn't match.
        let svd_t = Svd::new(&a.transpose()).unwrap();
        assert!(svd_t.sweeps >= 1);
        assert!(svd_t.sweeps <= 2 * MAX_SVD_ITERATIONS);
    }

    #[test]
    fn known_singular_values() {
        // A = [[3, 0], [4, 5]] has singular values sqrt(45) and sqrt(5).
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 5.0]]).unwrap();
        let svd = check_svd(&a, 1e-12);
        assert!((svd.singular_values[0] - 45.0_f64.sqrt()).abs() < 1e-12);
        assert!((svd.singular_values[1] - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn tall_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let svd = check_svd(&a, 1e-12);
        assert_eq!(svd.u.shape(), (4, 2));
        assert_eq!(svd.v.shape(), (2, 2));
        assert_eq!(svd.singular_values.len(), 2);
    }

    #[test]
    fn wide_matrix_via_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]]).unwrap();
        let svd = check_svd(&a, 1e-12);
        assert_eq!(svd.u.shape(), (2, 2));
        assert_eq!(svd.v.shape(), (4, 2));
    }

    #[test]
    fn rank_deficient_matrix() {
        // Rank 1: second row is twice the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let svd = check_svd(&a, 1e-12);
        assert_eq!(svd.rank(1e-10), 1);
        assert!(svd.singular_values[1].abs() < 1e-12);
        assert_eq!(svd.condition_number(), f64::INFINITY);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(3, 2);
        let svd = check_svd(&a, 1e-14);
        assert_eq!(svd.rank(1e-10), 0);
        assert!(svd.singular_values.iter().all(|&s| cmp::exact_zero(s)));
    }

    #[test]
    fn single_column_and_row() {
        let col = Matrix::column_vector(&[3.0, 4.0]);
        let svd = check_svd(&col, 1e-12);
        assert!((svd.singular_values[0] - 5.0).abs() < 1e-12);

        let row = Matrix::row_vector(&[3.0, 4.0]);
        let svd = check_svd(&row, 1e-12);
        assert!((svd.singular_values[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_rejected() {
        assert!(Svd::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn singular_values_match_eigenvalues_of_gram_matrix() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[0.0, 3.0, 1.0],
            &[1.0, 1.0, 1.0],
            &[-2.0, 0.5, 2.0],
        ])
        .unwrap();
        let svd = check_svd(&a, 1e-11);
        let gram = a.transpose().matmul(&a).unwrap();
        let eig = crate::eigen::SymmetricEigen::new(&gram).unwrap();
        for j in 0..3 {
            let expected = eig.eigenvalues[j].max(0.0).sqrt();
            assert!(
                (svd.singular_values[j] - expected).abs() < 1e-10,
                "sv {j}: {} vs sqrt(eigenvalue) {}",
                svd.singular_values[j],
                expected
            );
        }
    }

    #[test]
    fn pseudo_random_matrices_reconstruct() {
        let mut state = 0x9E3779B97F4A7C15_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for &(m, n) in &[(5, 5), (8, 3), (3, 8), (10, 10), (20, 7)] {
            let a = Matrix::from_fn(m, n, |_, _| next() * 10.0);
            check_svd(&a, 1e-9);
        }
    }
}
