//! Implicit-shift QL iteration for symmetric tridiagonal matrices.
//!
//! This is the EISPACK `tql2` routine (Numerical Recipes `tqli`): given the
//! diagonal `d` and sub-diagonal `e` of a symmetric tridiagonal matrix plus
//! an orthogonal matrix `z` (typically the Householder accumulation from
//! [`crate::householder`]), it overwrites `d` with the eigenvalues and the
//! columns of `z` with the corresponding eigenvectors.

use crate::cmp;
use crate::{hypot, sign, LinalgError, Matrix, Result};

/// Maximum QL sweeps per eigenvalue before reporting non-convergence.
pub const MAX_QL_ITERATIONS: usize = 50;

/// How hard the QL iteration had to work: total implicit-shift sweeps
/// across all eigenvalues, and the largest off-diagonal magnitude left
/// behind at acceptance (the deflation residual).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QlConvergence {
    /// Total QL iterations summed over all eigenvalues.
    pub iterations: usize,
    /// `max |e[i]|` remaining when every block was deflated.
    pub residual: f64,
}

/// Diagonalizes a symmetric tridiagonal matrix in place.
///
/// * `d` — diagonal on input, eigenvalues on output (length `n`).
/// * `e` — sub-diagonal on input with `e[0]` unused; destroyed.
/// * `z` — `n x n` orthogonal matrix; its columns are rotated into the
///   eigenvectors (pass the identity to diagonalize a raw tridiagonal
///   matrix).
///
/// Eigenvalues come out unordered; [`crate::eigen`] sorts them.
/// Returns the iteration count and final residual so callers can report
/// convergence behaviour instead of discarding it.
pub fn ql_implicit(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> Result<QlConvergence> {
    let n = d.len();
    if e.len() != n || z.shape() != (n, n) {
        return Err(LinalgError::DimensionMismatch {
            op: "ql_implicit",
            lhs: (n, 1),
            rhs: z.shape(),
        });
    }
    if n == 0 {
        return Err(LinalgError::Empty { op: "ql_implicit" });
    }

    // Renumber e so that e[i] couples d[i] and d[i+1].
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    let mut total_iterations = 0usize;
    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find a negligible off-diagonal element e[m]; the block
            // [l..=m] is then isolated.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            total_iterations += 1;
            if iter > MAX_QL_ITERATIONS {
                return Err(LinalgError::NoConvergence {
                    op: "ql_implicit",
                    iterations: MAX_QL_ITERATIONS,
                });
            }

            // Form the implicit Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = hypot(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + sign(r, g));
            let mut s = 1.0_f64;
            let mut c = 1.0_f64;
            let mut p = 0.0_f64;

            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = hypot(f, g);
                e[i + 1] = r;
                if cmp::exact_zero(r) {
                    // Recover from underflow by deflating.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    // Off-diagonals that passed the negligibility test were left in
    // place, so the largest surviving magnitude is the residual.
    let residual = e[..n - 1].iter().fold(0.0_f64, |acc, &v| acc.max(v.abs()));
    Ok(QlConvergence {
        iterations: total_iterations,
        residual,
    })
}

/// Convenience wrapper: eigendecomposition of a raw symmetric tridiagonal
/// matrix given as `(diagonal, sub_diagonal)` where `sub_diagonal[i]`
/// couples rows `i-1` and `i` (index 0 unused).
///
/// Returns `(eigenvalues, eigenvector_matrix)` with eigenvectors as columns,
/// both unordered.
pub fn eigen_tridiagonal(diagonal: &[f64], sub_diagonal: &[f64]) -> Result<(Vec<f64>, Matrix)> {
    let n = diagonal.len();
    let mut d = diagonal.to_vec();
    let mut e = sub_diagonal.to_vec();
    let mut z = Matrix::identity(n);
    ql_implicit(&mut d, &mut e, &mut z)?;
    Ok((d, z))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<f64>) -> Vec<f64> {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn rejects_bad_shapes() {
        let mut d = vec![1.0, 2.0];
        let mut e = vec![0.0];
        let mut z = Matrix::identity(2);
        assert!(ql_implicit(&mut d, &mut e, &mut z).is_err());

        let mut d: Vec<f64> = vec![];
        let mut e: Vec<f64> = vec![];
        let mut z = Matrix::zeros(0, 0);
        assert!(ql_implicit(&mut d, &mut e, &mut z).is_err());
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let (vals, vecs) = eigen_tridiagonal(&[3.0, 1.0, 2.0], &[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(sorted(vals), vec![1.0, 2.0, 3.0]);
        assert!(vecs.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-14);
    }

    #[test]
    fn two_by_two_known_eigenvalues() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let (vals, _) = eigen_tridiagonal(&[2.0, 2.0], &[0.0, 1.0]).unwrap();
        let s = sorted(vals);
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!((s[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn laplacian_chain_eigenvalues() {
        // The path-graph Laplacian-like matrix with diagonal 2 and
        // off-diagonal -1 has eigenvalues 2 - 2 cos(k*pi/(n+1)).
        let n = 8;
        let d = vec![2.0; n];
        let mut e = vec![-1.0; n];
        e[0] = 0.0;
        let (vals, vecs) = eigen_tridiagonal(&d, &e).unwrap();
        let got = sorted(vals);
        for (k, &v) in got.iter().enumerate() {
            let expected =
                2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!(
                (v - expected).abs() < 1e-10,
                "eigenvalue {k}: {v} vs {expected}"
            );
        }
        // Eigenvector matrix must stay orthogonal.
        let qtq = vecs.transpose().matmul(&vecs).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(n)).unwrap() < 1e-10);
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let diag = [4.0, 1.0, -2.0, 0.5, 3.0];
        let mut sub = [0.0, 1.5, -0.5, 2.0, 1.0];
        sub[0] = 0.0;
        let (vals, vecs) = eigen_tridiagonal(&diag, &sub).unwrap();

        // Rebuild dense T and check T v = lambda v for each pair.
        let n = diag.len();
        let mut t = Matrix::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = diag[i];
            if i > 0 {
                t[(i, i - 1)] = sub[i];
                t[(i - 1, i)] = sub[i];
            }
        }
        for (j, &val) in vals.iter().enumerate() {
            let v = vecs.col(j);
            let tv = t.mul_vec(&v).unwrap();
            for (i, (tvi, vi)) in tv.iter().zip(&v).enumerate() {
                assert!(
                    (tvi - val * vi).abs() < 1e-10,
                    "pair {j}: (Tv)_{i}={} vs lambda v_{i}={}",
                    tvi,
                    val * vi
                );
            }
        }
    }

    #[test]
    fn single_element() {
        let (vals, vecs) = eigen_tridiagonal(&[5.0], &[0.0]).unwrap();
        assert_eq!(vals, vec![5.0]);
        assert_eq!(vecs, Matrix::identity(1));
    }

    #[test]
    fn reports_iterations_and_residual() {
        // A diagonal matrix needs zero sweeps and has zero residual.
        let mut d = vec![3.0, 1.0, 2.0];
        let mut e = vec![0.0, 0.0, 0.0];
        let mut z = Matrix::identity(3);
        let conv = ql_implicit(&mut d, &mut e, &mut z).unwrap();
        assert_eq!(conv.iterations, 0);
        assert_eq!(conv.residual, 0.0);

        // A coupled matrix needs at least one sweep and leaves a
        // residual below the negligibility threshold.
        let mut d = vec![2.0; 8];
        let mut e = vec![-1.0; 8];
        e[0] = 0.0;
        let mut z = Matrix::identity(8);
        let conv = ql_implicit(&mut d, &mut e, &mut z).unwrap();
        assert!(conv.iterations >= 1);
        assert!(conv.iterations <= 8 * MAX_QL_ITERATIONS);
        let scale: f64 = d.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
        assert!(conv.residual <= 2.0 * f64::EPSILON * scale.max(1.0) * 2.0);
    }
}
