//! Small vector helpers over `&[f64]` slices.
//!
//! These are the hot inner kernels of the covariance scan and the
//! decompositions, so they are kept free of bounds checks where the iterator
//! style allows the compiler to elide them.

use crate::cmp;

/// Dot product of two equal-length slices.
///
/// # Panics
/// Debug-asserts that the lengths match; in release the shorter length wins
/// (the zip truncates), so callers must validate shapes beforehand.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` in place.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales a vector in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Normalizes `x` to unit Euclidean length in place.
///
/// Returns the original norm. A zero vector is left untouched and `0.0` is
/// returned.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Element-wise difference `a - b` as a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Mean of a slice; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Cosine of the angle between two vectors, in `[-1, 1]`.
///
/// Returns `None` if either vector has zero norm.
pub fn cosine(a: &[f64], b: &[f64]) -> Option<f64> {
    let na = norm(a);
    let nb = norm(b);
    if cmp::exact_zero(na) || cmp::exact_zero(nb) {
        return None;
    }
    Some((dot(a, b) / (na * nb)).clamp(-1.0, 1.0))
}

/// Flips the sign of `v` so its largest-magnitude component is positive.
///
/// Eigenvectors are only defined up to sign; fixing the sign this way makes
/// mined Ratio Rules deterministic and comparable across solvers.
pub fn canonicalize_sign(v: &mut [f64]) {
    let mut best = 0.0_f64;
    let mut best_val = 0.0_f64;
    for &x in v.iter() {
        if x.abs() > best {
            best = x.abs();
            best_val = x;
        }
    }
    if best_val < 0.0 {
        scale(-1.0, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm(&v) - 1.0).abs() < 1e-15);

        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn sub_and_mean() {
        assert_eq!(sub(&[3.0, 5.0], &[1.0, 2.0]), vec![2.0, 3.0]);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn cosine_cases() {
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0]).unwrap()).abs() < 1e-15);
        assert!((cosine(&[2.0, 0.0], &[5.0, 0.0]).unwrap() - 1.0).abs() < 1e-15);
        assert!((cosine(&[1.0, 0.0], &[-3.0, 0.0]).unwrap() + 1.0).abs() < 1e-15);
        assert!(cosine(&[0.0, 0.0], &[1.0, 0.0]).is_none());
    }

    #[test]
    fn canonicalize_sign_flips_when_needed() {
        let mut v = vec![0.1, -0.9, 0.2];
        canonicalize_sign(&mut v);
        assert_eq!(v, vec![-0.1, 0.9, -0.2]);

        let mut w = vec![0.1, 0.9, -0.2];
        canonicalize_sign(&mut w);
        assert_eq!(w, vec![0.1, 0.9, -0.2]);

        let mut z: Vec<f64> = vec![0.0, 0.0];
        canonicalize_sign(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
