//! Property-based tests for the linear algebra substrate.
//!
//! These check algebraic invariants on randomly generated matrices rather
//! than hand-picked examples: orthogonality of computed bases,
//! reconstruction identities, and agreement between independent algorithms
//! (Householder+QL vs Jacobi, SVD vs Gram-matrix eigenvalues).

use linalg::cholesky::Cholesky;
use linalg::eigen::SymmetricEigen;
use linalg::jacobi::jacobi_eigen;
use linalg::lu;
use linalg::pinv::pseudo_inverse;
use linalg::qr::Qr;
use linalg::svd::Svd;
use linalg::Matrix;
use proptest::prelude::*;

/// Strategy: arbitrary matrix with entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

/// Strategy: random symmetric matrix of side `n`.
fn symmetric(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(|m| {
        let mt = m.transpose();
        (&m + &mt).unwrap().scale(0.5)
    })
}

/// Strategy: random SPD matrix `B B^t + n*I`.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n).prop_map(move |b| {
        let g = b.matmul(&b.transpose()).unwrap();
        let bump = Matrix::identity(n).scale(n as f64);
        (&g + &bump).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in matrix(4, 3), b in matrix(3, 5), c in matrix(5, 2)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        let diff = left.max_abs_diff(&right).unwrap();
        prop_assert!(diff < 1e-9, "associativity violated by {diff}");
    }

    #[test]
    fn transpose_reverses_product(a in matrix(4, 3), b in matrix(3, 5)) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-10);
    }

    #[test]
    fn eigen_reconstructs_symmetric(a in symmetric(6)) {
        let e = SymmetricEigen::new(&a).unwrap();
        let rec = e.reconstruct().unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!(rec.max_abs_diff(&a).unwrap() < 1e-9 * scale);
    }

    #[test]
    fn eigenvalue_sum_equals_trace(a in symmetric(5)) {
        let e = SymmetricEigen::new(&a).unwrap();
        let sum: f64 = e.eigenvalues.iter().sum();
        prop_assert!((sum - a.trace()).abs() < 1e-9 * a.max_abs().max(1.0));
    }

    #[test]
    fn eigenvectors_orthonormal(a in symmetric(6)) {
        let e = SymmetricEigen::new(&a).unwrap();
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        prop_assert!(vtv.max_abs_diff(&Matrix::identity(6)).unwrap() < 1e-10);
    }

    #[test]
    fn jacobi_agrees_with_ql_on_eigenvalues(a in symmetric(5)) {
        let e = SymmetricEigen::new(&a).unwrap();
        let jac = jacobi_eigen(&a, 1e-8).unwrap();
        let scale = a.max_abs().max(1.0);
        for (x, y) in e.eigenvalues.iter().zip(&jac.eigenvalues) {
            prop_assert!((x - y).abs() < 1e-8 * scale, "{x} vs {y}");
        }
        // Both solvers report coherent convergence info.
        prop_assert!(e.convergence.residual.is_finite());
        prop_assert!(jac.convergence.residual.is_finite());
        prop_assert!(jac.convergence.iterations <= linalg::jacobi::MAX_JACOBI_SWEEPS);
    }

    #[test]
    fn svd_reconstructs(a in matrix(7, 4)) {
        let svd = Svd::new(&a).unwrap();
        let rec = svd.reconstruct().unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!(rec.max_abs_diff(&a).unwrap() < 1e-9 * scale);
    }

    #[test]
    fn svd_frobenius_identity(a in matrix(5, 6)) {
        // ||A||_F^2 == sum of squared singular values.
        let svd = Svd::new(&a).unwrap();
        let fro2 = a.frobenius_norm().powi(2);
        let ssq: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - ssq).abs() < 1e-8 * fro2.max(1.0));
    }

    #[test]
    fn pinv_satisfies_first_penrose_condition(a in matrix(6, 3)) {
        let p = pseudo_inverse(&a, 1e-12).unwrap();
        let apa = a.matmul(&p).unwrap().matmul(&a).unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!(apa.max_abs_diff(&a).unwrap() < 1e-8 * scale);
    }

    #[test]
    fn lu_solve_has_small_residual(a in spd(5), b in proptest::collection::vec(-10.0..10.0f64, 5)) {
        // SPD inputs are guaranteed nonsingular.
        let x = lu::solve(&a, &b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for i in 0..5 {
            prop_assert!((ax[i] - b[i]).abs() < 1e-8 * a.max_abs().max(1.0));
        }
    }

    #[test]
    fn lu_and_cholesky_agree_on_spd(a in spd(4), b in proptest::collection::vec(-5.0..5.0f64, 4)) {
        let x_lu = lu::solve(&a, &b).unwrap();
        let x_ch = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        for i in 0..4 {
            prop_assert!((x_lu[i] - x_ch[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn cholesky_reconstructs(a in spd(5)) {
        let c = Cholesky::new(&a).unwrap();
        let rec = c.l.matmul(&c.l.transpose()).unwrap();
        prop_assert!(rec.max_abs_diff(&a).unwrap() < 1e-8 * a.max_abs());
    }

    #[test]
    fn qr_reconstructs_and_q_orthonormal(a in matrix(6, 4)) {
        let qr = Qr::new(&a).unwrap();
        let rec = qr.q.matmul(&qr.r).unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!(rec.max_abs_diff(&a).unwrap() < 1e-9 * scale);
        let qtq = qr.q.transpose().matmul(&qr.q).unwrap();
        prop_assert!(qtq.max_abs_diff(&Matrix::identity(4)).unwrap() < 1e-10);
    }

    #[test]
    fn determinant_product_rule(a in spd(3), b in spd(3)) {
        let det_a = lu::Lu::new(&a).unwrap().determinant();
        let det_b = lu::Lu::new(&b).unwrap().determinant();
        let det_ab = lu::Lu::new(&a.matmul(&b).unwrap()).unwrap().determinant();
        let rel = ((det_ab - det_a * det_b) / det_ab.abs().max(1.0)).abs();
        prop_assert!(rel < 1e-8, "det(AB)={det_ab} vs det(A)det(B)={}", det_a * det_b);
    }

    #[test]
    fn svd_rank_bounded_by_min_dim(a in matrix(5, 3)) {
        let svd = Svd::new(&a).unwrap();
        prop_assert!(svd.rank(1e-12) <= 3);
    }

    #[test]
    fn svd_is_scale_equivariant_across_extreme_magnitudes(
        a in matrix(5, 4),
        exp in -120i32..120,
    ) {
        // Scaling the matrix scales the singular values and leaves the
        // singular vectors unchanged — across 240 orders of magnitude
        // (the hypot-based kernels must neither overflow nor underflow).
        let scale = 10f64.powi(exp);
        let scaled = a.scale(scale);
        let s1 = Svd::new(&a).unwrap();
        let s2 = Svd::new(&scaled).unwrap();
        for (x, y) in s1.singular_values.iter().zip(&s2.singular_values) {
            let expected = x * scale;
            prop_assert!(
                (y - expected).abs() <= 1e-9 * expected.abs().max(f64::MIN_POSITIVE),
                "sv {x} scaled to {y}, expected {expected}"
            );
        }
        // First singular vector matches up to sign when well separated.
        if s1.singular_values[0] > 1.5 * s1.singular_values[1] {
            let c = linalg::vector::cosine(&s1.v.col(0), &s2.v.col(0)).unwrap();
            prop_assert!(c.abs() > 1.0 - 1e-8, "cosine {c}");
        }
    }

    #[test]
    fn lanczos_top1_matches_dense(a in symmetric(8)) {
        let dense = SymmetricEigen::new(&a).unwrap();
        let lz = linalg::lanczos::lanczos_top_k(&a, 1, Some(8)).unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!(
            (lz.eigenvalues[0] - dense.eigenvalues[0]).abs() < 1e-8 * scale,
            "{} vs {}", lz.eigenvalues[0], dense.eigenvalues[0]
        );
    }

    #[test]
    fn spectral_norm_consistent_with_svd(a in matrix(4, 6)) {
        let power = linalg::norms::spectral_norm(&a, 1e-12).unwrap();
        let svd = Svd::new(&a).unwrap();
        let s1 = svd.singular_values[0];
        prop_assert!((power - s1).abs() <= 1e-6 * s1.max(1.0), "{power} vs {s1}");
    }
}
