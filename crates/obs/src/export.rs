//! Exporters: one JSON document carrying both the metric snapshot and
//! the span trace, and Prometheus text exposition for the metrics.

use crate::json::{write_escaped, JsonValue};
use crate::registry::{MetricValue, Snapshot};
use crate::span::SpanRecord;

fn nums(values: &[f64]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| JsonValue::Num(v)).collect())
}

fn counts(values: &[u64]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| JsonValue::Num(v as f64)).collect())
}

/// Build the combined `{"metrics": {...}, "trace": [...]}` document.
pub fn to_json_value(snapshot: &Snapshot, trace: &[SpanRecord]) -> JsonValue {
    let metrics = snapshot
        .metrics
        .iter()
        .map(|(name, value)| {
            let body = match value {
                MetricValue::Counter(v) => JsonValue::Obj(vec![
                    ("type".into(), JsonValue::Str("counter".into())),
                    ("value".into(), JsonValue::Num(*v as f64)),
                ]),
                MetricValue::Gauge(v) => JsonValue::Obj(vec![
                    ("type".into(), JsonValue::Str("gauge".into())),
                    ("value".into(), JsonValue::Num(*v)),
                ]),
                MetricValue::Histogram {
                    bounds,
                    counts: bucket_counts,
                    sum,
                    count,
                } => JsonValue::Obj(vec![
                    ("type".into(), JsonValue::Str("histogram".into())),
                    ("bounds".into(), nums(bounds)),
                    ("counts".into(), counts(bucket_counts)),
                    ("sum".into(), JsonValue::Num(*sum)),
                    ("count".into(), JsonValue::Num(*count as f64)),
                ]),
                MetricValue::Quantile(q) => JsonValue::Obj(vec![
                    ("type".into(), JsonValue::Str("quantile".into())),
                    (
                        "buckets".into(),
                        JsonValue::Arr(
                            q.buckets
                                .iter()
                                .map(|&(idx, c)| {
                                    JsonValue::Arr(vec![
                                        JsonValue::Num(f64::from(idx)),
                                        JsonValue::Num(c as f64),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("sum".into(), JsonValue::Num(q.sum)),
                    ("count".into(), JsonValue::Num(q.count as f64)),
                    ("max".into(), JsonValue::Num(q.max)),
                    // Derived quantiles for human readers; from_json
                    // rebuilds from the buckets and ignores these.
                    ("p50".into(), JsonValue::Num(q.quantile(0.5))),
                    ("p90".into(), JsonValue::Num(q.quantile(0.9))),
                    ("p99".into(), JsonValue::Num(q.quantile(0.99))),
                    ("p999".into(), JsonValue::Num(q.quantile(0.999))),
                ]),
            };
            (name.clone(), body)
        })
        .collect();
    let spans = trace
        .iter()
        .map(|r| {
            JsonValue::Obj(vec![
                ("name".into(), JsonValue::Str(r.name.clone())),
                ("depth".into(), JsonValue::Num(r.depth as f64)),
                ("ns".into(), JsonValue::Num(r.ns as f64)),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("metrics".into(), JsonValue::Obj(metrics)),
        ("trace".into(), JsonValue::Arr(spans)),
    ])
}

/// Serialize the snapshot and trace as pretty-printed JSON.
pub fn to_json(snapshot: &Snapshot, trace: &[SpanRecord]) -> String {
    to_json_value(snapshot, trace).write(true)
}

/// Rebuild a [`Snapshot`] and trace from [`to_json`] output.
/// Unknown fields are ignored; malformed documents return an error
/// string describing the first problem.
pub fn from_json(text: &str) -> Result<(Snapshot, Vec<SpanRecord>), String> {
    let doc = crate::json::parse(text).map_err(|e| e.to_string())?;
    let mut metrics = Vec::new();
    let metric_members = doc
        .get("metrics")
        .and_then(JsonValue::as_obj)
        .ok_or("missing 'metrics' object")?;
    for (name, body) in metric_members {
        let kind = body
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("metric '{name}' missing type"))?;
        let value = match kind {
            "counter" => MetricValue::Counter(
                body.get("value")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("counter '{name}' missing value"))?
                    as u64,
            ),
            "gauge" => MetricValue::Gauge(
                body.get("value")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("gauge '{name}' missing value"))?,
            ),
            "histogram" => {
                let get_nums = |key: &str| -> Result<Vec<f64>, String> {
                    body.get(key)
                        .and_then(JsonValue::as_arr)
                        .ok_or_else(|| format!("histogram '{name}' missing {key}"))?
                        .iter()
                        .map(|v| {
                            v.as_f64()
                                .ok_or_else(|| format!("histogram '{name}' non-numeric {key}"))
                        })
                        .collect()
                };
                MetricValue::Histogram {
                    bounds: get_nums("bounds")?,
                    counts: get_nums("counts")?.into_iter().map(|v| v as u64).collect(),
                    sum: body
                        .get("sum")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("histogram '{name}' missing sum"))?,
                    count: body
                        .get("count")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("histogram '{name}' missing count"))?
                        as u64,
                }
            }
            "quantile" => {
                let mut buckets = Vec::new();
                for pair in body
                    .get("buckets")
                    .and_then(JsonValue::as_arr)
                    .ok_or_else(|| format!("quantile '{name}' missing buckets"))?
                {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| format!("quantile '{name}' malformed bucket pair"))?;
                    let idx = pair[0]
                        .as_f64()
                        .ok_or_else(|| format!("quantile '{name}' non-numeric bucket index"))?;
                    let c = pair[1]
                        .as_f64()
                        .ok_or_else(|| format!("quantile '{name}' non-numeric bucket count"))?;
                    buckets.push((idx as u32, c as u64));
                }
                MetricValue::Quantile(crate::quantile::QuantileSnapshot {
                    buckets,
                    count: body
                        .get("count")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("quantile '{name}' missing count"))?
                        as u64,
                    sum: body
                        .get("sum")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("quantile '{name}' missing sum"))?,
                    max: body
                        .get("max")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("quantile '{name}' missing max"))?,
                })
            }
            other => return Err(format!("metric '{name}' has unknown type '{other}'")),
        };
        metrics.push((name.clone(), value));
    }
    let mut trace = Vec::new();
    if let Some(spans) = doc.get("trace").and_then(JsonValue::as_arr) {
        for span in spans {
            trace.push(SpanRecord {
                name: span
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("span missing name")?
                    .to_string(),
                depth: span
                    .get("depth")
                    .and_then(JsonValue::as_f64)
                    .ok_or("span missing depth")? as usize,
                ns: span
                    .get("ns")
                    .and_then(JsonValue::as_f64)
                    .ok_or("span missing ns")? as u64,
            });
        }
    }
    Ok((Snapshot { metrics }, trace))
}

/// Sanitize into the Prometheus metric-name alphabet
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`; invalid characters become `_` and a
/// leading digit gains a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a HELP text: Prometheus requires `\\` and `\n` escaping.
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

/// Render the snapshot in Prometheus text exposition format. The HELP
/// line carries the original (unsanitized) metric name so nothing is
/// lost when sanitization rewrites characters.
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.metrics {
        let pname = sanitize_name(name);
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# HELP {pname} {}\n", escape_help(name)));
                out.push_str(&format!("# TYPE {pname} counter\n"));
                out.push_str(&format!("{pname} {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# HELP {pname} {}\n", escape_help(name)));
                out.push_str(&format!("# TYPE {pname} gauge\n"));
                out.push_str(&format!("{pname} {}\n", fmt_f64(*v)));
            }
            MetricValue::Histogram {
                bounds,
                counts,
                sum,
                count,
            } => {
                out.push_str(&format!("# HELP {pname} {}\n", escape_help(name)));
                out.push_str(&format!("# TYPE {pname} histogram\n"));
                let mut cumulative = 0u64;
                for (i, &c) in counts.iter().enumerate() {
                    cumulative += c;
                    let le = bounds
                        .get(i)
                        .copied()
                        .map_or_else(|| "+Inf".to_string(), fmt_f64);
                    out.push_str(&format!("{pname}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                }
                out.push_str(&format!("{pname}_sum {}\n", fmt_f64(*sum)));
                out.push_str(&format!("{pname}_count {count}\n"));
            }
            MetricValue::Quantile(q) => {
                out.push_str(&format!("# HELP {pname} {}\n", escape_help(name)));
                out.push_str(&format!("# TYPE {pname} summary\n"));
                for (label, quantile) in
                    [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99), ("0.999", 0.999)]
                {
                    out.push_str(&format!(
                        "{pname}{{quantile=\"{label}\"}} {}\n",
                        fmt_f64(q.quantile(quantile))
                    ));
                }
                out.push_str(&format!("{pname}_sum {}\n", fmt_f64(q.sum)));
                out.push_str(&format!("{pname}_count {}\n", q.count));
                out.push_str(&format!("{pname}_max {}\n", fmt_f64(q.max)));
            }
        }
    }
    out
}

/// Render the snapshot as an aligned human-readable table (the
/// `profile` subcommand's metric dump).
pub fn render_table(snapshot: &Snapshot) -> String {
    if snapshot.metrics.is_empty() {
        return String::from("(no metrics recorded)\n");
    }
    let width = snapshot
        .metrics
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (name, value) in &snapshot.metrics {
        let rendered = match value {
            MetricValue::Counter(v) => format!("{v}"),
            MetricValue::Gauge(v) => {
                // rrlint-allow: RR002 integer-valuedness test; obs is dependency-free so linalg::cmp is unavailable
                if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v:.4}")
                }
            }
            MetricValue::Histogram { sum, count, .. } => {
                let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                format!("count={count} sum={sum:.0} mean={mean:.1}")
            }
            MetricValue::Quantile(q) => format!(
                "count={} p50={:.1} p99={:.1} max={:.1}",
                q.count,
                q.quantile(0.5),
                q.quantile(0.99),
                q.max
            ),
        };
        out.push_str(&format!("{name:<width$}  {rendered}\n"));
    }
    out
}

/// A small JSON-escaping helper re-exported for other crates' tests.
pub fn escape_json_string(s: &str) -> String {
    let mut out = String::new();
    write_escaped(s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> (Snapshot, Vec<SpanRecord>) {
        let reg = Registry::new();
        reg.counter("rows_scanned_total").add(1_000);
        reg.gauge("rows_per_s").set(2.5e6);
        reg.gauge("residual").set(3.25e-15);
        let h = reg.histogram("shard_ns", &[1e3, 1e6, 1e9]);
        h.observe(500.0);
        h.observe(2e6);
        h.observe(5e9);
        let q = reg.quantile("lat_us");
        for i in 1..=200 {
            q.observe(f64::from(i) * 12.5);
        }
        let trace = vec![
            SpanRecord {
                name: "mine".into(),
                depth: 0,
                ns: 1_000_000,
            },
            SpanRecord {
                name: "covariance_scan".into(),
                depth: 1,
                ns: 700_000,
            },
        ];
        (reg.snapshot(), trace)
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let (snap, trace) = sample();
        let text = to_json(&snap, &trace);
        let (snap2, trace2) = from_json(&text).unwrap();
        assert_eq!(snap, snap2);
        assert_eq!(trace, trace2);
    }

    #[test]
    fn json_has_the_expected_shape() {
        let (snap, trace) = sample();
        let doc = crate::json::parse(&to_json(&snap, &trace)).unwrap();
        let m = doc.get("metrics").unwrap();
        assert_eq!(
            m.get("rows_scanned_total").unwrap().get("type").unwrap().as_str(),
            Some("counter")
        );
        assert_eq!(
            m.get("rows_per_s").unwrap().get("value").unwrap().as_f64(),
            Some(2.5e6)
        );
        assert_eq!(doc.get("trace").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn prometheus_renders_quantiles_as_a_summary() {
        let (snap, _) = sample();
        let text = to_prometheus(&snap);
        assert!(text.contains("# TYPE lat_us summary"));
        assert!(text.contains("lat_us{quantile=\"0.99\"}"));
        assert!(text.contains("lat_us{quantile=\"0.999\"}"));
        assert!(text.contains("lat_us_count 200"));
        assert!(text.contains("lat_us_max 2500"));
    }

    #[test]
    fn sanitize_name_enforces_the_prometheus_alphabet() {
        assert_eq!(sanitize_name("rows_per_s"), "rows_per_s");
        assert_eq!(sanitize_name("ge_h.shard-3 ns"), "ge_h_shard_3_ns");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn help_line_escapes_backslash_and_newline() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
    }
}
