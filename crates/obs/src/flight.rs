//! Flight recorder: a fixed-size, lock-striped ring of structured
//! events for post-hoc incident analysis.
//!
//! Metrics answer "how many / how fast"; the flight recorder answers
//! "what exactly happened just before things went wrong" — which rows
//! were quarantined, when the degradation ladder stepped down, which
//! requests were shed with 429/503, what each coalesced batch looked
//! like. It is always cheap enough to leave on in production:
//!
//! * an event is a fixed-size `Copy` struct whose name is a `&'static
//!   str` from [`crate::names`] — recording allocates nothing;
//! * the buffer is [`N_STRIPES`] independent rings of
//!   [`STRIPE_CAP`] slots each, preallocated on the first record, with
//!   a thread-sticky stripe choice so concurrent recorders rarely share
//!   a lock;
//! * at capacity each stripe overwrites its own oldest slot — the
//!   recorder keeps the most recent ~[`capacity`] events, which is the
//!   window you want when a process is about to die.
//!
//! Recording is gated separately from metrics ([`set_flight_enabled`])
//! because the CLI enables it only for `serve`, `serve-bench`, and
//! `--flight` runs; [`flight_to_jsonl`] renders a drained snapshot as
//! one JSON object per line for error-exit dumps and the
//! `/debug/flightrecorder` endpoint.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Independent ring stripes (writers hash to one by thread).
pub const N_STRIPES: usize = 8;

/// Slots per stripe.
pub const STRIPE_CAP: usize = 512;

/// Total event capacity of the recorder.
pub const fn capacity() -> usize {
    N_STRIPES * STRIPE_CAP
}

static FLIGHT_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn flight-recorder event capture on or off, process-wide
/// (independent of [`crate::set_enabled`]).
pub fn set_flight_enabled(on: bool) {
    FLIGHT_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the flight recorder is currently capturing.
#[inline]
pub fn flight_enabled() -> bool {
    FLIGHT_ENABLED.load(Ordering::Relaxed)
}

/// One recorded event. `a`/`b` are event-specific integer payloads and
/// `x` an event-specific float (e.g. for a batch-coalesce event:
/// `a` = batch id, `b` = rows, `x` = distinct hole patterns); unused
/// fields are zero. Interpretations are catalogued in
/// `docs/OBSERVABILITY.md`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// Process-global record sequence (total order across stripes).
    pub seq: u64,
    /// Microseconds since the trace epoch ([`crate::trace::now_us`]).
    pub t_us: u64,
    /// Registered event name (`crate::names::EVENT_*`).
    pub name: &'static str,
    /// First integer payload.
    pub a: u64,
    /// Second integer payload.
    pub b: u64,
    /// Float payload.
    pub x: f64,
}

struct Ring {
    /// Preallocated to `STRIPE_CAP` on first use; `push` never grows it
    /// past that, so steady-state recording does not allocate.
    slots: Vec<FlightEvent>,
    /// Next overwrite position once full.
    next: usize,
}

impl Ring {
    fn push(&mut self, event: FlightEvent) {
        if self.slots.len() < STRIPE_CAP {
            self.slots.push(event);
        } else {
            self.slots[self.next] = event;
            self.next = (self.next + 1) % STRIPE_CAP;
        }
    }
}

fn stripes() -> &'static [Mutex<Ring>; N_STRIPES] {
    static STRIPES: OnceLock<[Mutex<Ring>; N_STRIPES]> = OnceLock::new();
    STRIPES.get_or_init(|| {
        std::array::from_fn(|_| {
            Mutex::new(Ring {
                slots: Vec::with_capacity(STRIPE_CAP),
                next: 0,
            })
        })
    })
}

fn stripe_of_thread() -> usize {
    use std::cell::Cell;
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = Cell::new(usize::MAX);
    }
    STRIPE.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            idx = NEXT.fetch_add(1, Ordering::Relaxed) % N_STRIPES;
            s.set(idx);
        }
        idx
    })
}

/// Record one event (no-op while the recorder is disabled). `name`
/// must be a registered `EVENT_*` constant from [`crate::names`]; the
/// `&'static` bound plus preallocated rings keep this allocation-free.
#[inline]
pub fn flight_event(name: &'static str, a: u64, b: u64, x: f64) {
    if !flight_enabled() {
        return;
    }
    static SEQ: AtomicU64 = AtomicU64::new(1);
    let event = FlightEvent {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        t_us: crate::trace::now_us(),
        name,
        a,
        b,
        x,
    };
    let mut ring = stripes()[stripe_of_thread()]
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    ring.push(event);
}

/// Copy out every retained event, in global `seq` order.
pub fn flight_snapshot() -> Vec<FlightEvent> {
    let mut events = Vec::new();
    for stripe in stripes() {
        let ring = stripe.lock().unwrap_or_else(|e| e.into_inner());
        events.extend_from_slice(&ring.slots);
    }
    events.sort_by_key(|e| e.seq);
    events
}

/// Drop every retained event (capacity stays allocated).
pub fn flight_clear() {
    for stripe in stripes() {
        let mut ring = stripe.lock().unwrap_or_else(|e| e.into_inner());
        ring.slots.clear();
        ring.next = 0;
    }
}

/// Render events as JSONL: one compact JSON object per line, ending
/// with a trailing newline when non-empty.
pub fn flight_to_jsonl(events: &[FlightEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for e in events {
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"seq\":{},\"t_us\":{},\"event\":",
            e.seq, e.t_us
        );
        crate::json::write_escaped(e.name, &mut line);
        let _ = write!(line, ",\"a\":{},\"b\":{},\"x\":{}", e.a, e.b, e.x);
        line.push('}');
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global, so every stateful scenario runs
    // inside one test function (the Rust harness would otherwise
    // interleave them and overwrite each other's rings).

    #[test]
    fn recorder_lifecycle_end_to_end() {
        // Disabled: nothing captured.
        set_flight_enabled(false);
        flight_event("ghost_event", 1, 2, 3.0);
        assert!(flight_snapshot().iter().all(|e| e.name != "ghost_event"));

        // Enabled: events come back in sequence order with payloads.
        flight_clear();
        set_flight_enabled(true);
        flight_event("order_probe", 10, 20, 0.5);
        flight_event("order_probe", 11, 21, 1.5);
        let mine: Vec<_> = flight_snapshot()
            .into_iter()
            .filter(|e| e.name == "order_probe")
            .collect();
        assert_eq!(mine.len(), 2);
        assert!(mine[0].seq < mine[1].seq, "sequence order violated");
        assert_eq!((mine[0].a, mine[0].b, mine[0].x), (10, 20, 0.5));

        // Concurrent recorders: no torn payloads, nothing dropped
        // (total volume fits the capacity).
        flight_clear();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                scope.spawn(move || {
                    for i in 0..100 {
                        flight_event("conc_probe", t, i, (t * 100 + i) as f64);
                    }
                });
            }
        });
        let conc: Vec<_> = flight_snapshot()
            .into_iter()
            .filter(|e| e.name == "conc_probe")
            .collect();
        assert_eq!(conc.len(), 400);
        for e in &conc {
            assert_eq!(e.x, (e.a * 100 + e.b) as f64, "payload torn");
        }

        // Flood: each stripe overwrites its own oldest slots; the
        // total stays bounded and only the newest survive.
        flight_clear();
        for i in 0..(capacity() as u64 + 500) {
            flight_event("flood_probe", i, 0, 0.0);
        }
        let floods = flight_snapshot();
        assert!(floods.len() <= capacity());
        assert!(!floods.is_empty());
        assert!(
            floods.iter().all(|e| e.name == "flood_probe" && e.a >= 500),
            "oldest not overwritten"
        );

        set_flight_enabled(false);
        flight_clear();
        assert!(flight_snapshot().is_empty());
    }

    #[test]
    fn jsonl_lines_parse_as_json() {
        let events = vec![FlightEvent {
            seq: 3,
            t_us: 99,
            name: "serve_shed_429",
            a: 7,
            b: 0,
            x: 1.25,
        }];
        let jsonl = flight_to_jsonl(&events);
        assert!(jsonl.ends_with('\n'));
        let line = jsonl.lines().next().expect("one line");
        let parsed = crate::json::parse(line).expect("valid JSON");
        assert_eq!(parsed.get("seq").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(
            parsed.get("event").and_then(|v| v.as_str()),
            Some("serve_shed_429")
        );
        assert_eq!(parsed.get("x").and_then(|v| v.as_f64()), Some(1.25));
    }
}
