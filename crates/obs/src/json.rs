//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! The workspace deliberately has no serde in this crate, and CI builds
//! without the registry, so the exporter round-trip tests need a parser
//! of their own. This one covers exactly the JSON the exporter emits
//! (objects, arrays, strings with standard escapes, finite numbers,
//! booleans, null) and rejects everything else with a byte offset.

use std::fmt;

/// An owned JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Escape `s` into `out` as a JSON string literal (with quotes).
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    // rrlint-allow: RR002 integer-valuedness test; obs is dependency-free so linalg::cmp is unavailable
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        // `{}` on f64 is the shortest representation that parses back
        // to the same bits, so numeric round-trips are exact.
        out.push_str(&format!("{v}"));
    }
}

impl JsonValue {
    fn write_into(&self, out: &mut String, pretty: bool, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(d));
            }
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => write_num(*v, out),
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.write_into(out, pretty, depth + 1);
                }
                if !items.is_empty() {
                    pad(out, depth);
                }
                out.push(']');
            }
            JsonValue::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    write_escaped(k, out);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write_into(out, pretty, depth + 1);
                }
                if !members.is_empty() {
                    pad(out, depth);
                }
                out.push('}');
            }
        }
    }

    /// Serialize; `pretty` indents with two spaces.
    pub fn write(&self, pretty: bool) -> String {
        let mut out = String::new();
        self.write_into(&mut out, pretty, 0);
        if pretty {
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.write(f.alternate()))
    }
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(s: &str) -> Result<JsonValue, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, ParseError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not emitted by our writer.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unexpected end of string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| ParseError {
                message: format!("invalid number '{text}'"),
                offset: start,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_what_it_writes() {
        let doc = JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("cov scan \"fast\"\n".into())),
            ("count".into(), JsonValue::Num(42.0)),
            ("ratio".into(), JsonValue::Num(0.8527313)),
            ("big".into(), JsonValue::Num(1.25e300)),
            ("neg".into(), JsonValue::Num(-17.5)),
            ("on".into(), JsonValue::Bool(true)),
            ("nothing".into(), JsonValue::Null),
            (
                "items".into(),
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Str("two".into())]),
            ),
        ]);
        for pretty in [false, true] {
            let text = doc.write(pretty);
            let back = parse(&text).unwrap();
            assert_eq!(back, doc, "pretty={pretty} text={text}");
        }
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for v in [std::f64::consts::PI, 1e-300, 123456789.123456789, -0.1] {
            let text = JsonValue::Num(v).write(false);
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {text}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(JsonValue::Num(42.0).write(false), "42");
        assert_eq!(JsonValue::Num(-7.0).write(false), "-7");
    }

    #[test]
    fn control_characters_escape_and_return() {
        let s = "tab\there \u{1} quote\" backslash\\";
        let text = JsonValue::Str(s.into()).write(false);
        assert_eq!(parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn rejects_garbage_with_offsets() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{}trailing").is_err());
        let err = parse("   @").unwrap_err();
        assert_eq!(err.offset, 3);
    }

    #[test]
    fn lookup_helpers() {
        let doc = parse(r#"{"a": {"b": [1, 2.5]}}"#).unwrap();
        let arr = doc.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert!(doc.get("missing").is_none());
    }
}
