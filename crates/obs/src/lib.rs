//! Zero-dependency observability for the ratio-rules workspace.
//!
//! Three pieces, all built on `std` alone (the workspace builds every
//! substrate from scratch, and the crates.io registry is unreachable in
//! CI):
//!
//! * a process-global metrics [`Registry`] of counters, gauges, and
//!   fixed-bucket histograms, lock-sharded so concurrent writers from
//!   the parallel evaluators do not serialize on one mutex;
//! * scoped [`Span`] timers that nest (via a thread-local depth) into a
//!   flat trace of `(name, depth, ns)` records, renderable as a tree;
//! * exporters: a JSON document ([`export::to_json`]) with a matching
//!   hand-rolled parser ([`json::parse`]) so round-trips are testable
//!   without serde, and Prometheus text exposition
//!   ([`export::to_prometheus`]).
//!
//! On top of those sit three production-observability layers:
//! log-bucketed [`quantile`] histograms for tail-latency SLO accounting
//! (p50/p90/p99/p999 + max with bounded relative error), explicit
//! cross-thread request [`trace`]s exportable as Chrome trace-event
//! JSON, and a [`flight`] recorder — a fixed-size lock-striped event
//! ring dumped as JSONL when something goes wrong.
//!
//! Recording is off by default. Every recording entry point starts with
//! a single relaxed atomic load ([`enabled`]); while disabled, no clock
//! is read, no lock is taken, and no allocation happens, so instrumented
//! hot paths stay within noise of their uninstrumented selves. Flip it
//! on with [`set_enabled`] (the CLI does this when `--trace`,
//! `--metrics-out`, or the `profile` subcommand is used).
//!
//! ```
//! obs::set_enabled(true);
//! {
//!     let _span = obs::Span::enter("scan");
//!     obs::counter_add("rows_scanned_total", 1000);
//!     obs::gauge_set("rows_per_s", 2.5e6);
//! }
//! let snap = obs::global().snapshot();
//! let trace = obs::take_trace();
//! println!("{}", obs::render_trace(&trace));
//! println!("{}", obs::export::to_json(&snap, &trace));
//! obs::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod json;
pub mod names;
pub mod quantile;
pub mod registry;
pub mod span;
pub mod trace;

pub use flight::{
    flight_clear, flight_enabled, flight_event, flight_snapshot, flight_to_jsonl,
    set_flight_enabled, FlightEvent,
};
pub use quantile::{Quantile, QuantileSnapshot};
pub use registry::{global, MetricValue, Registry, Snapshot, StripedCounter};
pub use span::{render_trace, take_trace, Span, SpanRecord};
pub use trace::{chrome_trace_doc, TraceContext, TracedSpan};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn metric and span recording on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently on.
///
/// A single relaxed load — this branch is the entire cost of
/// instrumentation on a disabled hot path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Add `delta` to the named counter in the global registry.
/// No-op while recording is disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        global().counter(name).add(delta);
    }
}

/// Set the named gauge in the global registry.
/// No-op while recording is disabled.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if enabled() {
        global().gauge(name).set(value);
    }
}

/// Observe `value` into the named fixed-bucket histogram in the global
/// registry. `bounds` are the inclusive upper edges (an implicit `+Inf`
/// bucket is always appended). No-op while recording is disabled.
#[inline]
pub fn observe(name: &str, bounds: &[f64], value: f64) {
    if enabled() {
        global().histogram(name, bounds).observe(value);
    }
}

/// Observe `value` into the named log-bucketed quantile histogram in
/// the global registry (see [`quantile`] for the bucket grid). No-op
/// while recording is disabled.
#[inline]
pub fn observe_quantile(name: &str, value: f64) {
    if enabled() {
        global().quantile(name).observe(value);
    }
}

/// Exponentially spaced histogram bounds: `start, start*factor, ...`
/// (`count` edges). Handy for nanosecond timings.
pub fn exponential_bounds(start: f64, factor: f64, count: usize) -> Vec<f64> {
    let mut edge = start;
    (0..count)
        .map(|_| {
            let e = edge;
            edge *= factor;
            e
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn disabled_recording_is_a_no_op() {
        // Not enabled here: nothing should land in the registry.
        super::set_enabled(false);
        super::counter_add("should_not_exist_total", 7);
        super::gauge_set("should_not_exist", 1.0);
        super::observe("should_not_exist_ns", &[1.0], 0.5);
        super::observe_quantile("should_not_exist_us", 2.0);
        let snap = super::global().snapshot();
        assert!(snap
            .metrics
            .iter()
            .all(|(name, _)| !name.starts_with("should_not_exist")));
    }

    #[test]
    fn exponential_bounds_grow_geometrically() {
        let b = super::exponential_bounds(1.0, 10.0, 4);
        assert_eq!(b, vec![1.0, 10.0, 100.0, 1000.0]);
    }
}
