//! The metric and span name registry.
//!
//! Every metric or span name used as a **string literal** in production
//! code anywhere in the workspace must appear as a literal in this file;
//! `rrlint` rule `RR004` lexes this module and flags call sites whose
//! name literal is missing here. That turns the registry into the single
//! place to review for dashboard/scrape contract changes: renaming a
//! metric without updating this file (and whoever consumes it) fails the
//! lint gate.
//!
//! Dynamically formatted names (`format!("ge_h_shard_{i}_ns")`) cannot be
//! checked statically and are exempt from `RR004`; the bounded families
//! are still documented here via the helper functions at the bottom so
//! the registry stays the one true inventory.
//!
//! The obs crate itself (tests, demos, doc examples) is also exempt —
//! the rule polices *producers*, not the telemetry substrate.

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

/// Rows consumed by the single-pass covariance scan.
pub const COVARIANCE_ROWS_SCANNED_TOTAL: &str = "covariance_rows_scanned_total";
/// Eigensolver ladder stages that failed before one succeeded.
pub const EIGEN_STAGE_FAILURES_TOTAL: &str = "eigen_stage_failures_total";
/// Covariance matrices that needed symmetrization within tolerance.
pub const EIGEN_SYMMETRY_TOLERANCE_HITS_TOTAL: &str = "eigen_symmetry_tolerance_hits_total";
/// Rows quarantined by the fault-tolerant scan (all reasons).
pub const SCAN_ROWS_QUARANTINED_TOTAL: &str = "scan_rows_quarantined_total";
/// Scans aborted because the quarantine budget was exhausted.
pub const SCAN_BUDGET_EXHAUSTED_TOTAL: &str = "scan_budget_exhausted_total";
/// Transient source errors retried by the scan layer.
pub const SCAN_TRANSIENT_RETRIES_TOTAL: &str = "scan_transient_retries_total";
/// Worker panics contained by the parallel scan's catch_unwind.
pub const SCAN_WORKER_PANICS_TOTAL: &str = "scan_worker_panics_total";
/// Row panels folded by the blocked covariance kernel (full or partial).
pub const SCAN_BLOCKS_TOTAL: &str = "scan_blocks_total";
/// Source reads retried by the dataset retry wrapper.
pub const SOURCE_RETRIES_TOTAL: &str = "source_retries_total";
/// Source reads abandoned after the retry budget ran out.
pub const SOURCE_RETRY_GIVE_UPS_TOTAL: &str = "source_retry_give_ups_total";
/// Mining runs that returned a degraded (non-full-fidelity) result.
pub const DEGRADED_RESULTS_TOTAL: &str = "degraded_results_total";
/// Transient faults injected by the chaos dataset wrapper.
pub const FAULTS_INJECTED_TRANSIENT_TOTAL: &str = "faults_injected_transient_total";
/// Corrupt-cell faults injected by the chaos dataset wrapper.
pub const FAULTS_INJECTED_CORRUPT_TOTAL: &str = "faults_injected_corrupt_total";
/// Arity-mismatch faults injected by the chaos dataset wrapper.
pub const FAULTS_INJECTED_ARITY_TOTAL: &str = "faults_injected_arity_total";
/// Truncation faults injected by the chaos dataset wrapper.
pub const FAULTS_INJECTED_TRUNCATION_TOTAL: &str = "faults_injected_truncation_total";

/// HTTP requests accepted by the prediction server (all endpoints).
pub const SERVE_REQUESTS_TOTAL: &str = "serve_requests_total";
/// Requests rejected with 429 because the batch queue was full.
pub const SERVE_REJECTED_TOTAL: &str = "serve_rejected_total";
/// Queued predictions that expired before a batch picked them up.
pub const SERVE_TIMEOUTS_TOTAL: &str = "serve_timeouts_total";
/// Requests that ended in a 4xx/5xx other than backpressure.
pub const SERVE_ERRORS_TOTAL: &str = "serve_errors_total";
/// Batches executed by the coalescing batcher.
pub const SERVE_BATCHES_TOTAL: &str = "serve_batches_total";
/// Rows filled by the batcher (across all batches).
pub const SERVE_ROWS_PREDICTED_TOTAL: &str = "serve_rows_predicted_total";
/// TCP connections accepted by the serve front end.
pub const SERVE_CONNECTIONS_TOTAL: &str = "serve_connections_total";
/// Requests served over an already-open connection (request 2+ of a
/// keep-alive connection).
pub const SERVE_KEEPALIVE_REQUESTS_TOTAL: &str = "serve_keepalive_requests_total";
/// Rows answered from the col-avgs floor because the batch queue was
/// full and `shed_degrade` was on.
pub const SERVE_SHED_DEGRADED_TOTAL: &str = "serve_shed_degraded_total";
/// Models accepted by `POST /models`.
pub const SERVE_MODELS_PUBLISHED_TOTAL: &str = "serve_models_published_total";
/// Publish attempts rejected at the trust boundary.
pub const SERVE_PUBLISH_REJECTED_TOTAL: &str = "serve_publish_rejected_total";
/// Times unpinned traffic was re-pointed at a different version.
pub const SERVE_MODEL_SWAPS_TOTAL: &str = "serve_model_swaps_total";
/// Rows replayed against the shadow (canary) version.
pub const SERVE_SHADOW_SOLVES_TOTAL: &str = "serve_shadow_solves_total";
/// Shadow answers that differed from the active answer
/// (`f64::to_bits`-exact comparison).
pub const SERVE_SHADOW_DIVERGENCES_TOTAL: &str = "serve_shadow_divergences_total";
/// Shadow replays dropped because the bounded shadow queue was full.
pub const SERVE_SHADOW_DROPPED_TOTAL: &str = "serve_shadow_dropped_total";

/// Scan requests accepted by a `mine-shard` worker.
pub const SHARD_SCAN_REQUESTS_TOTAL: &str = "shard_scan_requests_total";
/// Shard scans a worker completed and replied to.
pub const SHARD_SCANS_COMPLETED_TOTAL: &str = "shard_scans_completed_total";
/// Faults injected by a shard worker's chaos plan.
pub const SHARD_CHAOS_FAULTS_TOTAL: &str = "shard_chaos_faults_total";
/// Shard assignments dispatched by the mining coordinator.
pub const COORD_SHARDS_DISPATCHED_TOTAL: &str = "coord_shards_dispatched_total";
/// Shard requests retried after a transport or server failure.
pub const COORD_SHARD_RETRIES_TOTAL: &str = "coord_shard_retries_total";
/// Shards reassigned to a surviving worker after their owner died.
pub const COORD_SHARDS_REASSIGNED_TOTAL: &str = "coord_shards_reassigned_total";
/// Workers the coordinator declared dead.
pub const COORD_WORKERS_LOST_TOTAL: &str = "coord_workers_lost_total";
/// Shard payloads rejected at the coordinator trust boundary.
pub const COORD_PAYLOADS_REJECTED_TOTAL: &str = "coord_payloads_rejected_total";
/// Duplicate shard deliveries dropped by the coordinator.
pub const COORD_DUPLICATES_DROPPED_TOTAL: &str = "coord_duplicates_dropped_total";
/// Shards abandoned after the reassignment budget ran out.
pub const COORD_SHARDS_LOST_TOTAL: &str = "coord_shards_lost_total";

// Per-reason quarantine counters. Produced dynamically
// (`scan_rows_quarantined_{reason}_total`); the expansions are listed so
// scrape configs can be checked against this file.

/// Quarantine counter: unparseable cell.
pub const SCAN_ROWS_QUARANTINED_CORRUPT_CELL_TOTAL: &str =
    "scan_rows_quarantined_corrupt_cell_total";
/// Quarantine counter: row with the wrong number of columns.
pub const SCAN_ROWS_QUARANTINED_ARITY_MISMATCH_TOTAL: &str =
    "scan_rows_quarantined_arity_mismatch_total";
/// Quarantine counter: row lost to a source read error.
pub const SCAN_ROWS_QUARANTINED_SOURCE_ERROR_TOTAL: &str =
    "scan_rows_quarantined_source_error_total";

// ---------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------

/// Covariance scan throughput, rows per second.
pub const COVARIANCE_ROWS_PER_S: &str = "covariance_rows_per_s";
/// Iterations the winning eigensolver stage used.
pub const EIGEN_ITERATIONS: &str = "eigen_iterations";
/// `||C v - lambda v||` residual of the accepted eigendecomposition.
pub const EIGEN_RESIDUAL: &str = "eigen_residual";
/// Max `|C[i][j] - C[j][i]|` observed before symmetrization.
pub const EIGEN_ASYMMETRY: &str = "eigen_asymmetry";
/// Degradation-ladder level of the last mining run (0 = full fidelity).
pub const DEGRADATION_LEVEL: &str = "degradation_level";
/// Hole-pattern solver cache hits.
pub const SOLVER_CACHE_HITS: &str = "solver_cache_hits";
/// Hole-pattern solver cache misses.
pub const SOLVER_CACHE_MISSES: &str = "solver_cache_misses";
/// Live entries in the hole-pattern solver cache.
pub const SOLVER_CACHE_ENTRIES: &str = "solver_cache_entries";
/// Cached solves for the exactly-specified case (b = k).
pub const SOLVER_CACHE_CASE1_EXACT: &str = "solver_cache_case1_exact";
/// Cached solves for the over-specified case (b > k).
pub const SOLVER_CACHE_CASE2_OVER: &str = "solver_cache_case2_over";
/// Cached solves for the under-specified case (b < k).
pub const SOLVER_CACHE_CASE3_UNDER: &str = "solver_cache_case3_under";
/// Hole-fills that fell back to column means after a singular solve.
pub const SOLVER_CACHE_SINGULAR_FALLBACKS: &str = "solver_cache_singular_fallbacks";
/// Worst/best shard wall-time ratio in the parallel GE_h evaluation.
pub const GE_H_SHARD_IMBALANCE: &str = "ge_h_shard_imbalance";
/// Slowest GE_h shard wall time, nanoseconds.
pub const GE_H_SHARD_MAX_NS: &str = "ge_h_shard_max_ns";
/// Fastest GE_h shard wall time, nanoseconds.
pub const GE_H_SHARD_MIN_NS: &str = "ge_h_shard_min_ns";
/// Golub–Kahan sweeps used by the SVD path.
pub const SVD_SWEEPS: &str = "svd_sweeps";
/// Condition number estimate from the SVD path.
pub const SVD_CONDITION: &str = "svd_condition";
/// Jobs waiting in the prediction server's batch queue.
pub const SERVE_QUEUE_DEPTH: &str = "serve_queue_depth";
/// Connections currently held open by workers.
pub const SERVE_CONNECTIONS_ACTIVE: &str = "serve_connections_active";
/// Model versions currently retained by the registry.
pub const SERVE_MODEL_VERSIONS: &str = "serve_model_versions";
/// The version number serving unpinned traffic.
pub const SERVE_ACTIVE_MODEL_VERSION: &str = "serve_active_model_version";
/// Panel height (rows per block) of the blocked covariance kernel.
pub const COVARIANCE_BLOCK_ROWS: &str = "covariance_block_rows";
/// Shard 0's scan throughput (static expansion of the
/// `scan_shard_<i>_rows_per_s` family; shard 0 always exists).
pub const SCAN_SHARD_0_ROWS_PER_S: &str = "scan_shard_0_rows_per_s";
/// Workers the coordinator currently believes are alive.
pub const COORD_WORKERS_HEALTHY: &str = "coord_workers_healthy";
/// Shard accumulators merged into the coordinator's result so far.
pub const COORD_SHARDS_MERGED: &str = "coord_shards_merged";

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

/// Distribution of per-shard GE_h wall times, nanoseconds.
pub const GE_H_SHARD_NS: &str = "ge_h_shard_ns";
/// Distribution of rows per executed batch (coalescing effectiveness).
pub const SERVE_BATCH_SIZE: &str = "serve_batch_size";

// ---------------------------------------------------------------------
// Quantile histograms (log-bucketed; p50/p90/p99/p999 + max)
// ---------------------------------------------------------------------

/// Blocked-kernel panel-fold wall time, nanoseconds.
pub const SCAN_FLUSH_NS: &str = "scan_flush_ns";
/// Enqueue-to-reply latency per prediction, microseconds.
pub const SERVE_LATENCY_US: &str = "serve_latency_us";
/// Time a job waited in the batch queue before its batch started,
/// microseconds.
pub const SERVE_QUEUE_WAIT_US: &str = "serve_queue_wait_us";
/// Wall time of one coalesced `fill_batch` solve, microseconds.
pub const SERVE_SOLVE_US: &str = "serve_solve_us";
/// End-to-end request latency of `/healthz`, microseconds.
pub const SERVE_REQUEST_US_HEALTHZ: &str = "serve_request_us_healthz";
/// End-to-end request latency of `/metrics`, microseconds.
pub const SERVE_REQUEST_US_METRICS: &str = "serve_request_us_metrics";
/// End-to-end request latency of `/rules`, microseconds.
pub const SERVE_REQUEST_US_RULES: &str = "serve_request_us_rules";
/// End-to-end request latency of `/predict`, microseconds.
pub const SERVE_REQUEST_US_PREDICT: &str = "serve_request_us_predict";
/// End-to-end request latency of `/whatif`, microseconds.
pub const SERVE_REQUEST_US_WHATIF: &str = "serve_request_us_whatif";
/// End-to-end request latency of the `/debug/*` endpoints, microseconds.
pub const SERVE_REQUEST_US_DEBUG: &str = "serve_request_us_debug";
/// End-to-end request latency of unrouted (404/405) requests,
/// microseconds.
pub const SERVE_REQUEST_US_OTHER: &str = "serve_request_us_other";
/// End-to-end `GET`/`POST /models` request latency, microseconds.
pub const SERVE_REQUEST_US_MODELS: &str = "serve_request_us_models";
/// Coordinator-observed round-trip time of one shard scan request,
/// microseconds (includes the worker's scan, not just transport).
pub const COORD_SHARD_RTT_US: &str = "coord_shard_rtt_us";

// ---------------------------------------------------------------------
// Flight-recorder events
// ---------------------------------------------------------------------

/// A scan row was quarantined. `a` = row index, `b` = reason ordinal.
pub const EVENT_SCAN_ROW_QUARANTINED: &str = "scan_row_quarantined";
/// The quarantine budget ran out and the scan aborted. `a` = rows
/// quarantined, `b` = rows seen.
pub const EVENT_SCAN_BUDGET_EXHAUSTED: &str = "scan_budget_exhausted";
/// An eigensolver ladder stage failed. `a` = stage ordinal,
/// `b` = 1 if the failure was a contained panic.
pub const EVENT_EIGEN_STAGE_FAILED: &str = "eigen_stage_failed";
/// A mining run was served at a degraded ladder level.
/// `a` = severity (0 full, 1 fewer rules, 2 col-avgs), `x` = rules kept.
pub const EVENT_DEGRADATION_SERVED: &str = "degradation_served";
/// A scan checkpoint was written. `a` = rows absorbed so far.
pub const EVENT_CHECKPOINT_WRITTEN: &str = "checkpoint_written";
/// A request was shed with 429 (batch queue full). `a` = queue depth.
pub const EVENT_SERVE_SHED_429: &str = "serve_shed_429";
/// A connection was shed with 503 (connection queue full).
/// `a` = connection-queue capacity.
pub const EVENT_SERVE_SHED_503: &str = "serve_shed_503";
/// A queued prediction expired before its batch ran. `a` = batch id,
/// `x` = microseconds it waited.
pub const EVENT_SERVE_JOB_EXPIRED: &str = "serve_job_expired";
/// A batch was coalesced and solved. `a` = batch id, `b` = rows,
/// `x` = distinct hole patterns (groups).
pub const EVENT_SERVE_BATCH_COALESCED: &str = "serve_batch_coalesced";
/// A full batch queue degraded rows to the col-avgs floor instead of
/// rejecting (`shed_degrade` mode). `a` = rows floored, `b` = version.
pub const EVENT_SERVE_SHED_DEGRADED: &str = "serve_shed_degraded";
/// A model was accepted by `POST /models`. `a` = version, `b` = 1 when
/// it was also activated.
pub const EVENT_SERVE_MODEL_PUBLISHED: &str = "serve_model_published";
/// Unpinned traffic was re-pointed at a version. `a` = version.
pub const EVENT_SERVE_MODEL_SWAPPED: &str = "serve_model_swapped";
/// A shadow replay differed from the active answer bit-for-bit.
/// `a` = shadow version, `b` = active version.
pub const EVENT_SERVE_SHADOW_DIVERGED: &str = "serve_shadow_diverged";
/// A shard worker began scanning its range. `a` = start row, `b` = end
/// row (exclusive).
pub const EVENT_SHARD_SCAN_STARTED: &str = "shard_scan_started";
/// A shard worker finished its range and replied. `a` = rows absorbed,
/// `b` = rows quarantined.
pub const EVENT_SHARD_SCAN_COMPLETED: &str = "shard_scan_completed";
/// The worker's chaos plan injected a fault. `a` = fault ordinal
/// (crash/hang/slow/corrupt/truncate/duplicate), `b` = request seq.
pub const EVENT_SHARD_CHAOS_INJECTED: &str = "shard_chaos_injected";
/// The coordinator dispatched a shard. `a` = shard index, `b` = worker
/// index.
pub const EVENT_COORD_SHARD_DISPATCHED: &str = "coord_shard_dispatched";
/// A shard's accumulator arrived and passed validation. `a` = shard
/// index, `b` = rows consumed.
pub const EVENT_COORD_SHARD_COMPLETED: &str = "coord_shard_completed";
/// The coordinator declared a worker dead. `a` = worker index,
/// `b` = retries spent.
pub const EVENT_COORD_WORKER_DEAD: &str = "coord_worker_dead";
/// A dead worker's shard was reassigned to a survivor. `a` = shard
/// index, `b` = new worker index, `x` = 1.0 if resuming a checkpoint.
pub const EVENT_COORD_SHARD_REASSIGNED: &str = "coord_shard_reassigned";
/// A shard payload failed trust-boundary validation. `a` = shard index,
/// `b` = worker index.
pub const EVENT_COORD_PAYLOAD_REJECTED: &str = "coord_payload_rejected";
/// A duplicate shard delivery was dropped. `a` = shard index.
pub const EVENT_COORD_DUPLICATE_DROPPED: &str = "coord_duplicate_dropped";
/// The coordinator merged with shards missing (degraded result).
/// `a` = shards merged, `b` = shards lost.
pub const EVENT_COORD_PARTIAL_MERGE: &str = "coord_partial_merge";

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// Whole covariance scan (serial or parallel).
pub const SPAN_COVARIANCE_SCAN: &str = "covariance_scan";
/// Single eigensolver stage.
pub const SPAN_EIGENSOLVE: &str = "eigensolve";
/// Full eigensolver degradation ladder.
pub const SPAN_EIGENSOLVE_LADDER: &str = "eigensolve_ladder";
/// End-to-end mining run.
pub const SPAN_MINE: &str = "mine";
/// Dataset load phase of a CLI command.
pub const SPAN_LOAD: &str = "load";
/// Evaluation phase of a CLI command.
pub const SPAN_EVALUATE: &str = "evaluate";
/// `ratio-rules profile` end-to-end pipeline.
pub const SPAN_PROFILE: &str = "profile";
/// One HTTP request through the prediction server.
pub const SPAN_SERVE_REQUEST: &str = "serve_request";
/// One coalesced batch solve inside the batcher thread.
pub const SPAN_SERVE_BATCH: &str = "serve_batch";
/// One hole-pattern group's solve inside a coalesced batch (recorded
/// into every member request's trace with identical `batch`/`group`
/// args, which is how shared solves show up in a trace viewer).
pub const SPAN_PATTERN_SOLVE: &str = "pattern_solve";
/// End-to-end distributed mining run inside the coordinator.
pub const SPAN_COORDINATE: &str = "coordinate";
/// One shard scan request from dispatch to validated reply.
pub const SPAN_COORD_SHARD_REQUEST: &str = "coord_shard_request";
/// One shard scan inside a worker (request receipt to reply).
pub const SPAN_SHARD_SCAN: &str = "shard_scan";

// ---------------------------------------------------------------------
// Boot families
// ---------------------------------------------------------------------

/// How a boot-seeded metric family is registered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyKind {
    /// Monotone counter (seeded at 0).
    Counter,
    /// Last-write-wins gauge (seeded at 0 unless the owner knows
    /// better, e.g. `covariance_block_rows`).
    Gauge,
    /// Log-bucketed quantile histogram (no bounds to choose).
    Quantile,
    /// Fixed-bucket histogram. Bounds live with the owning subsystem,
    /// which must register the family at construction time; the boot
    /// seeder skips it but the boot test still asserts presence.
    Histogram,
}

/// Every metric family a freshly booted `serve` process must expose on
/// `/metrics` before traffic arrives. The server seeds this list
/// data-driven (rather than a hand-maintained call sequence), so a new
/// family added here can never silently miss the seed path — and the
/// boot test fails if one is added to this file but not here.
pub const SERVE_BOOT_FAMILIES: &[(&str, FamilyKind)] = &[
    (SERVE_REQUESTS_TOTAL, FamilyKind::Counter),
    (SERVE_REJECTED_TOTAL, FamilyKind::Counter),
    (SERVE_TIMEOUTS_TOTAL, FamilyKind::Counter),
    (SERVE_ERRORS_TOTAL, FamilyKind::Counter),
    (SERVE_BATCHES_TOTAL, FamilyKind::Counter),
    (SERVE_ROWS_PREDICTED_TOTAL, FamilyKind::Counter),
    (SERVE_CONNECTIONS_TOTAL, FamilyKind::Counter),
    (SERVE_KEEPALIVE_REQUESTS_TOTAL, FamilyKind::Counter),
    (SERVE_SHED_DEGRADED_TOTAL, FamilyKind::Counter),
    (SERVE_MODELS_PUBLISHED_TOTAL, FamilyKind::Counter),
    (SERVE_PUBLISH_REJECTED_TOTAL, FamilyKind::Counter),
    (SERVE_MODEL_SWAPS_TOTAL, FamilyKind::Counter),
    (SERVE_SHADOW_SOLVES_TOTAL, FamilyKind::Counter),
    (SERVE_SHADOW_DIVERGENCES_TOTAL, FamilyKind::Counter),
    (SERVE_SHADOW_DROPPED_TOTAL, FamilyKind::Counter),
    (COVARIANCE_ROWS_SCANNED_TOTAL, FamilyKind::Counter),
    (SCAN_BLOCKS_TOTAL, FamilyKind::Counter),
    (SERVE_QUEUE_DEPTH, FamilyKind::Gauge),
    (SERVE_CONNECTIONS_ACTIVE, FamilyKind::Gauge),
    (SERVE_MODEL_VERSIONS, FamilyKind::Gauge),
    (SERVE_ACTIVE_MODEL_VERSION, FamilyKind::Gauge),
    (COVARIANCE_BLOCK_ROWS, FamilyKind::Gauge),
    (COVARIANCE_ROWS_PER_S, FamilyKind::Gauge),
    (SCAN_SHARD_0_ROWS_PER_S, FamilyKind::Gauge),
    (SCAN_FLUSH_NS, FamilyKind::Quantile),
    (SERVE_LATENCY_US, FamilyKind::Quantile),
    (SERVE_QUEUE_WAIT_US, FamilyKind::Quantile),
    (SERVE_SOLVE_US, FamilyKind::Quantile),
    (SERVE_REQUEST_US_HEALTHZ, FamilyKind::Quantile),
    (SERVE_REQUEST_US_METRICS, FamilyKind::Quantile),
    (SERVE_REQUEST_US_RULES, FamilyKind::Quantile),
    (SERVE_REQUEST_US_PREDICT, FamilyKind::Quantile),
    (SERVE_REQUEST_US_WHATIF, FamilyKind::Quantile),
    (SERVE_REQUEST_US_DEBUG, FamilyKind::Quantile),
    (SERVE_REQUEST_US_OTHER, FamilyKind::Quantile),
    (SERVE_REQUEST_US_MODELS, FamilyKind::Quantile),
    (SERVE_BATCH_SIZE, FamilyKind::Histogram),
];

/// Every shard-lifecycle metric family a `mine-distributed` coordinator
/// (and the shard workers it drives) must expose before the first
/// dispatch, seeded data-driven exactly like [`SERVE_BOOT_FAMILIES`] so
/// a clean run still shows a zero for every failure-path counter —
/// "0 workers lost" and "not instrumented" must look different.
pub const COORD_BOOT_FAMILIES: &[(&str, FamilyKind)] = &[
    (SHARD_SCAN_REQUESTS_TOTAL, FamilyKind::Counter),
    (SHARD_SCANS_COMPLETED_TOTAL, FamilyKind::Counter),
    (SHARD_CHAOS_FAULTS_TOTAL, FamilyKind::Counter),
    (COORD_SHARDS_DISPATCHED_TOTAL, FamilyKind::Counter),
    (COORD_SHARD_RETRIES_TOTAL, FamilyKind::Counter),
    (COORD_SHARDS_REASSIGNED_TOTAL, FamilyKind::Counter),
    (COORD_WORKERS_LOST_TOTAL, FamilyKind::Counter),
    (COORD_PAYLOADS_REJECTED_TOTAL, FamilyKind::Counter),
    (COORD_DUPLICATES_DROPPED_TOTAL, FamilyKind::Counter),
    (COORD_SHARDS_LOST_TOTAL, FamilyKind::Counter),
    (COORD_WORKERS_HEALTHY, FamilyKind::Gauge),
    (COORD_SHARDS_MERGED, FamilyKind::Gauge),
    (COORD_SHARD_RTT_US, FamilyKind::Quantile),
];

// ---------------------------------------------------------------------
// Dynamic families (not statically checkable; documented for humans)
// ---------------------------------------------------------------------

/// Per-shard GE_h row-count gauge name (`ge_h_shard_<i>_rows`).
#[must_use]
pub fn ge_h_shard_rows(shard: usize) -> String {
    format!("ge_h_shard_{shard}_rows")
}

/// Per-shard GE_h wall-time gauge name (`ge_h_shard_<i>_ns`).
#[must_use]
pub fn ge_h_shard_ns(shard: usize) -> String {
    format!("ge_h_shard_{shard}_ns")
}

/// Per-reason quarantine counter name
/// (`scan_rows_quarantined_<reason>_total`).
#[must_use]
pub fn scan_rows_quarantined(reason: &str) -> String {
    format!("scan_rows_quarantined_{reason}_total")
}

/// Per-shard covariance-scan throughput gauge name
/// (`scan_shard_<i>_rows_per_s`).
#[must_use]
pub fn scan_shard_rows_per_s(shard: usize) -> String {
    format!("scan_shard_{shard}_rows_per_s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_families_expand_to_registered_shapes() {
        assert_eq!(
            scan_rows_quarantined("corrupt_cell"),
            SCAN_ROWS_QUARANTINED_CORRUPT_CELL_TOTAL
        );
        assert_eq!(ge_h_shard_rows(3), "ge_h_shard_3_rows");
        assert_eq!(ge_h_shard_ns(0), "ge_h_shard_0_ns");
        assert_eq!(scan_shard_rows_per_s(0), SCAN_SHARD_0_ROWS_PER_S);
        assert_eq!(scan_shard_rows_per_s(7), "scan_shard_7_rows_per_s");
    }

    #[test]
    fn names_are_prometheus_safe() {
        for n in [
            COVARIANCE_ROWS_SCANNED_TOTAL,
            EIGEN_STAGE_FAILURES_TOTAL,
            EIGEN_SYMMETRY_TOLERANCE_HITS_TOTAL,
            SCAN_ROWS_QUARANTINED_TOTAL,
            SCAN_BUDGET_EXHAUSTED_TOTAL,
            SCAN_TRANSIENT_RETRIES_TOTAL,
            SCAN_WORKER_PANICS_TOTAL,
            SCAN_BLOCKS_TOTAL,
            SOURCE_RETRIES_TOTAL,
            SOURCE_RETRY_GIVE_UPS_TOTAL,
            DEGRADED_RESULTS_TOTAL,
            FAULTS_INJECTED_TRANSIENT_TOTAL,
            FAULTS_INJECTED_CORRUPT_TOTAL,
            FAULTS_INJECTED_ARITY_TOTAL,
            FAULTS_INJECTED_TRUNCATION_TOTAL,
            COVARIANCE_ROWS_PER_S,
            EIGEN_ITERATIONS,
            EIGEN_RESIDUAL,
            EIGEN_ASYMMETRY,
            DEGRADATION_LEVEL,
            SOLVER_CACHE_HITS,
            SOLVER_CACHE_MISSES,
            SOLVER_CACHE_ENTRIES,
            SOLVER_CACHE_CASE1_EXACT,
            SOLVER_CACHE_CASE2_OVER,
            SOLVER_CACHE_CASE3_UNDER,
            SOLVER_CACHE_SINGULAR_FALLBACKS,
            GE_H_SHARD_IMBALANCE,
            GE_H_SHARD_MAX_NS,
            GE_H_SHARD_MIN_NS,
            SVD_SWEEPS,
            SVD_CONDITION,
            SERVE_REQUESTS_TOTAL,
            SERVE_REJECTED_TOTAL,
            SERVE_TIMEOUTS_TOTAL,
            SERVE_ERRORS_TOTAL,
            SERVE_BATCHES_TOTAL,
            SERVE_ROWS_PREDICTED_TOTAL,
            SERVE_QUEUE_DEPTH,
            COVARIANCE_BLOCK_ROWS,
            SCAN_SHARD_0_ROWS_PER_S,
            GE_H_SHARD_NS,
            SCAN_FLUSH_NS,
            SERVE_BATCH_SIZE,
            SERVE_LATENCY_US,
            SERVE_QUEUE_WAIT_US,
            SERVE_SOLVE_US,
            SERVE_REQUEST_US_HEALTHZ,
            SERVE_REQUEST_US_METRICS,
            SERVE_REQUEST_US_RULES,
            SERVE_REQUEST_US_PREDICT,
            SERVE_REQUEST_US_WHATIF,
            SERVE_REQUEST_US_DEBUG,
            SERVE_REQUEST_US_OTHER,
            SERVE_REQUEST_US_MODELS,
            SERVE_CONNECTIONS_TOTAL,
            SERVE_KEEPALIVE_REQUESTS_TOTAL,
            SERVE_SHED_DEGRADED_TOTAL,
            SERVE_MODELS_PUBLISHED_TOTAL,
            SERVE_PUBLISH_REJECTED_TOTAL,
            SERVE_MODEL_SWAPS_TOTAL,
            SERVE_SHADOW_SOLVES_TOTAL,
            SERVE_SHADOW_DIVERGENCES_TOTAL,
            SERVE_SHADOW_DROPPED_TOTAL,
            SERVE_CONNECTIONS_ACTIVE,
            SERVE_MODEL_VERSIONS,
            SERVE_ACTIVE_MODEL_VERSION,
            EVENT_SERVE_SHED_DEGRADED,
            EVENT_SERVE_MODEL_PUBLISHED,
            EVENT_SERVE_MODEL_SWAPPED,
            EVENT_SERVE_SHADOW_DIVERGED,
            SHARD_SCAN_REQUESTS_TOTAL,
            SHARD_SCANS_COMPLETED_TOTAL,
            SHARD_CHAOS_FAULTS_TOTAL,
            COORD_SHARDS_DISPATCHED_TOTAL,
            COORD_SHARD_RETRIES_TOTAL,
            COORD_SHARDS_REASSIGNED_TOTAL,
            COORD_WORKERS_LOST_TOTAL,
            COORD_PAYLOADS_REJECTED_TOTAL,
            COORD_DUPLICATES_DROPPED_TOTAL,
            COORD_SHARDS_LOST_TOTAL,
            COORD_WORKERS_HEALTHY,
            COORD_SHARDS_MERGED,
            COORD_SHARD_RTT_US,
            EVENT_SHARD_SCAN_STARTED,
            EVENT_SHARD_SCAN_COMPLETED,
            EVENT_SHARD_CHAOS_INJECTED,
            EVENT_COORD_SHARD_DISPATCHED,
            EVENT_COORD_SHARD_COMPLETED,
            EVENT_COORD_WORKER_DEAD,
            EVENT_COORD_SHARD_REASSIGNED,
            EVENT_COORD_PAYLOAD_REJECTED,
            EVENT_COORD_DUPLICATE_DROPPED,
            EVENT_COORD_PARTIAL_MERGE,
            SPAN_COORDINATE,
            SPAN_COORD_SHARD_REQUEST,
            SPAN_SHARD_SCAN,
            EVENT_SCAN_ROW_QUARANTINED,
            EVENT_SCAN_BUDGET_EXHAUSTED,
            EVENT_EIGEN_STAGE_FAILED,
            EVENT_DEGRADATION_SERVED,
            EVENT_CHECKPOINT_WRITTEN,
            EVENT_SERVE_SHED_429,
            EVENT_SERVE_SHED_503,
            EVENT_SERVE_JOB_EXPIRED,
            EVENT_SERVE_BATCH_COALESCED,
            SPAN_COVARIANCE_SCAN,
            SPAN_EIGENSOLVE,
            SPAN_EIGENSOLVE_LADDER,
            SPAN_MINE,
            SPAN_LOAD,
            SPAN_EVALUATE,
            SPAN_PROFILE,
            SPAN_SERVE_REQUEST,
            SPAN_SERVE_BATCH,
            SPAN_PATTERN_SOLVE,
        ] {
            assert_eq!(crate::export::sanitize_name(n), n, "name not Prometheus-safe: {n}");
        }
    }

    #[test]
    fn boot_families_are_distinct_and_prometheus_safe() {
        let mut seen = std::collections::HashSet::new();
        for &(name, _) in SERVE_BOOT_FAMILIES {
            assert!(seen.insert(name), "duplicate boot family: {name}");
            assert_eq!(crate::export::sanitize_name(name), name);
        }
        assert!(SERVE_BOOT_FAMILIES.len() >= 24);
    }

    #[test]
    fn coord_boot_families_are_distinct_and_prometheus_safe() {
        let mut seen = std::collections::HashSet::new();
        for &(name, _) in COORD_BOOT_FAMILIES {
            assert!(seen.insert(name), "duplicate coord boot family: {name}");
            assert_eq!(crate::export::sanitize_name(name), name);
        }
        assert!(COORD_BOOT_FAMILIES.len() >= 13);
    }
}
