//! Log-bucketed quantile histograms for tail-latency SLO accounting.
//!
//! The fixed-bucket [`Histogram`](crate::registry::Histogram) needs its
//! bounds chosen up front and answers "how many fell under X"; SLO work
//! asks the inverse — "what was p99 over this window" — across values
//! spanning many orders of magnitude (a queue wait is microseconds, a
//! cold solve is milliseconds). A quantile histogram buckets
//! observations on a logarithmic grid of [`BUCKETS_PER_OCTAVE`] buckets
//! per power of two, so any reported quantile is within one bucket — a
//! guaranteed relative error below `2^(1/8) - 1` (about 9.1%) — while an
//! observation is two relaxed atomic increments plus two CAS loops, with
//! no allocation.
//!
//! Snapshots are sparse (only occupied buckets), mergeable
//! bucket-exactly, and subtractable ([`QuantileSnapshot::delta_since`])
//! so a caller can keep a baseline and read windowed p50/p90/p99/p999
//! without resetting the live metric.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Buckets per power of two. Eight gives upper edges `2^(j/8)` and a
/// worst-case quantile overestimate of `2^(1/8) - 1 ≈ 9.05%`.
pub const BUCKETS_PER_OCTAVE: f64 = 8.0;

/// Smallest eighth-octave exponent on the grid: bucket 1 has upper edge
/// `2^(MIN_E8/8)` = 2^-16 ≈ 1.5e-5. Anything positive but smaller
/// clamps into bucket 1.
const MIN_E8: i64 = -128;

/// Largest eighth-octave exponent: the top bucket's upper edge is
/// `2^(MAX_E8/8)` = 2^48 ≈ 2.8e14 (about 3.3 days in microseconds).
/// Larger values clamp into the top bucket.
const MAX_E8: i64 = 384;

/// Total bucket count: index 0 holds values `<= 0` (and negative
/// non-finite), indices `1..=513` are the log grid.
pub const N_BUCKETS: usize = (MAX_E8 - MIN_E8 + 2) as usize;

/// Bucket index for one observation. Total: every `f64` maps somewhere.
fn bucket_of(value: f64) -> usize {
    if !value.is_finite() {
        return if value > 0.0 { N_BUCKETS - 1 } else { 0 };
    }
    if value <= 0.0 {
        return 0;
    }
    let e8 = (value.log2() * BUCKETS_PER_OCTAVE).ceil() as i64;
    (e8.clamp(MIN_E8, MAX_E8) - MIN_E8 + 1) as usize
}

/// Inclusive upper edge of bucket `idx` (0 for the zero bucket).
pub fn upper_edge(idx: u32) -> f64 {
    if idx == 0 {
        return 0.0;
    }
    let e8 = (i64::from(idx) - 1 + MIN_E8) as f64;
    (e8 / BUCKETS_PER_OCTAVE).exp2()
}

pub(crate) struct QuantileInner {
    /// `N_BUCKETS` per-bucket counts, allocated once at registration.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations as an `f64` bit pattern, updated by CAS.
    sum_bits: AtomicU64,
    /// Running maximum as an `f64` bit pattern (starts at -inf).
    max_bits: AtomicU64,
}

impl QuantileInner {
    pub(crate) fn new() -> Self {
        QuantileInner {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    pub(crate) fn observe(&self, value: f64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while value > f64::from_bits(cur) {
            match self.max_bits.compare_exchange_weak(
                cur,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub(crate) fn read(&self) -> QuantileSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let max = if count == 0 {
            0.0
        } else {
            f64::from_bits(self.max_bits.load(Ordering::Relaxed))
        };
        let mut buckets = Vec::new();
        for (idx, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((idx as u32, c));
            }
        }
        QuantileSnapshot {
            buckets,
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            max,
        }
    }
}

/// Quantile-histogram handle. Cheap to clone; detached from the
/// registry lock once obtained.
#[derive(Clone)]
pub struct Quantile(pub(crate) Arc<QuantileInner>);

impl Quantile {
    /// A standalone (registry-less) quantile histogram, for tests and
    /// client-side accumulation.
    pub fn standalone() -> Self {
        Quantile(Arc::new(QuantileInner::new()))
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        self.0.observe(value);
    }

    /// Point-in-time sparse snapshot of this histogram alone.
    pub fn snapshot(&self) -> QuantileSnapshot {
        self.0.read()
    }
}

/// A point-in-time reading of one quantile histogram: sparse occupied
/// buckets plus count/sum/max.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantileSnapshot {
    /// `(bucket index, count)` pairs in ascending index order; only
    /// occupied buckets appear. Edges come from [`upper_edge`].
    pub buckets: Vec<(u32, u64)>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Largest observation (exact, not bucketed). 0 when empty.
    pub max: f64,
}

impl QuantileSnapshot {
    /// Estimate the `q`-quantile (`q` in `[0, 1]`), reported as the
    /// upper edge of the bucket holding the rank-`ceil(q*count)`
    /// observation, clamped to the exact [`max`](Self::max). Within one
    /// log bucket of the true value (< 9.1% relative error for
    /// observations inside the grid range `[2^-16, 2^48]`); returns 0
    /// when empty. Monotone in `q` by construction.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q * self.count as f64).ceil().clamp(1.0, self.count as f64) as u64;
        let mut cum = 0u64;
        for &(idx, c) in &self.buckets {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return upper_edge(idx).min(self.max);
            }
        }
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-exact merge: the result is identical to having fed both
    /// input streams into one histogram (counts add per bucket, sums
    /// add, max is the larger max).
    pub fn merge(&self, other: &QuantileSnapshot) -> QuantileSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            let a = self.buckets.get(i).copied();
            let b = other.buckets.get(j).copied();
            match (a, b) {
                (Some((ia, ca)), Some((ib, cb))) => {
                    if ia == ib {
                        buckets.push((ia, ca.saturating_add(cb)));
                        i += 1;
                        j += 1;
                    } else if ia < ib {
                        buckets.push((ia, ca));
                        i += 1;
                    } else {
                        buckets.push((ib, cb));
                        j += 1;
                    }
                }
                (Some(pair), None) => {
                    buckets.push(pair);
                    i += 1;
                }
                (None, Some(pair)) => {
                    buckets.push(pair);
                    j += 1;
                }
                (None, None) => break,
            }
        }
        let count = self.count.saturating_add(other.count);
        let max = if self.count == 0 {
            other.max
        } else if other.count == 0 {
            self.max
        } else {
            self.max.max(other.max)
        };
        QuantileSnapshot {
            buckets,
            count,
            sum: self.sum + other.sum,
            max,
        }
    }

    /// Windowed view: this snapshot minus an earlier `baseline` of the
    /// same histogram (per-bucket saturating subtraction). `sum` and
    /// `count` subtract exactly; `max` is approximated by the smaller
    /// of the lifetime max and the upper edge of the window's highest
    /// occupied bucket (the exact windowed max is not recoverable from
    /// a monotone max register).
    pub fn delta_since(&self, baseline: &QuantileSnapshot) -> QuantileSnapshot {
        let mut buckets = Vec::new();
        let mut j = 0;
        for &(idx, c) in &self.buckets {
            let mut base = 0;
            while j < baseline.buckets.len() && baseline.buckets[j].0 < idx {
                j += 1;
            }
            if j < baseline.buckets.len() && baseline.buckets[j].0 == idx {
                base = baseline.buckets[j].1;
            }
            let d = c.saturating_sub(base);
            if d > 0 {
                buckets.push((idx, d));
            }
        }
        let count: u64 = buckets.iter().map(|&(_, c)| c).sum();
        let max = match buckets.last() {
            Some(&(idx, _)) => upper_edge(idx).min(self.max),
            None => 0.0,
        };
        QuantileSnapshot {
            buckets,
            count,
            sum: self.sum - baseline.sum,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(values: &[f64]) -> QuantileSnapshot {
        let q = Quantile::standalone();
        for &v in values {
            q.observe(v);
        }
        q.snapshot()
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Quantile::standalone().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded_by_max() {
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 3.7).collect();
        let s = feed(&values);
        let mut prev = 0.0;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = s.quantile(q);
            assert!(est >= prev, "quantile({q}) = {est} < previous {prev}");
            assert!(est <= s.max, "quantile({q}) = {est} above max {}", s.max);
            prev = est;
        }
        assert_eq!(s.quantile(1.0), s.max);
    }

    #[test]
    fn relative_error_is_bounded_vs_sorted_oracle() {
        // Deterministic mirror of the workspace proptest: quantile
        // estimates must land within one log bucket (< 9.2% with
        // float-boundary slack) of the true order statistic.
        let mut values = Vec::new();
        let mut x: u64 = 0x1234_5678_9abc_def0;
        for _ in 0..5_000 {
            // splitmix64 to spread values across 6 decades.
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
            values.push(10f64.powf(unit * 6.0 - 1.0)); // [0.1, 1e5)
        }
        let s = feed(&values);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = s.quantile(q);
            let rel = (est - truth).abs() / truth;
            assert!(
                rel < 0.092,
                "q={q}: est {est} vs truth {truth} (rel err {rel})"
            );
            assert!(est >= truth * (1.0 - 1e-12), "estimate must not undershoot");
        }
    }

    #[test]
    fn merge_is_bucket_exact() {
        let a: Vec<f64> = (1..=300).map(|i| i as f64).collect();
        let b: Vec<f64> = (1..=500).map(|i| i as f64 * 17.3).collect();
        let merged = feed(&a).merge(&feed(&b));
        let combined: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(merged, feed(&combined));
    }

    #[test]
    fn delta_since_recovers_the_window() {
        let q = Quantile::standalone();
        for i in 1..=100 {
            q.observe(i as f64);
        }
        let baseline = q.snapshot();
        for i in 1..=50 {
            q.observe(i as f64 * 1000.0);
        }
        let window = q.snapshot().delta_since(&baseline);
        assert_eq!(window.count, 50);
        // The window only saw the large values; its p50 must be ~25000,
        // not ~50.
        assert!(window.quantile(0.5) > 20_000.0);
        assert_eq!(window, feed(&(1..=50).map(|i| i as f64 * 1000.0).collect::<Vec<_>>()));
    }

    #[test]
    fn zero_and_extreme_values_clamp_into_end_buckets() {
        let s = feed(&[0.0, -3.0, 1e-30, 1e300, f64::INFINITY]);
        assert_eq!(s.count, 5);
        assert_eq!(s.buckets.first().map(|&(i, c)| (i, c)), Some((0, 2)));
        assert_eq!(
            s.buckets.last().map(|&(i, c)| (i, c)),
            Some(((N_BUCKETS - 1) as u32, 2))
        );
        // 1e-30 clamps into bucket 1.
        assert!(s.buckets.iter().any(|&(i, c)| i == 1 && c == 1));
    }

    #[test]
    fn upper_edges_grow_monotonically() {
        let mut prev = -1.0;
        for idx in 0..N_BUCKETS as u32 {
            let e = upper_edge(idx);
            assert!(e > prev, "edge({idx}) = {e} <= edge({}) = {prev}", idx - 1);
            prev = e;
        }
        // Eight buckets per octave: edge ratios are 2^(1/8).
        let ratio = upper_edge(10) / upper_edge(9);
        assert!((ratio - 2f64.powf(0.125)).abs() < 1e-12);
    }

    #[test]
    fn concurrent_observes_lose_nothing() {
        let q = Quantile::standalone();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let q = q.clone();
                scope.spawn(move || {
                    for i in 0..10_000 {
                        q.observe((t * 10_000 + i) as f64 + 1.0);
                    }
                });
            }
        });
        let s = q.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.max, 40_000.0);
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 40_000);
    }
}
