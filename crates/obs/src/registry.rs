//! The lock-sharded metrics registry: counters, gauges, fixed-bucket
//! histograms, plus a cache-line-striped counter for hot paths that must
//! count even while the registry is disabled (e.g. `SolverCache` hits).

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of independent shards; writers on different metric names
/// contend only within their shard.
const N_SHARDS: usize = 8;

/// FNV-1a, the usual zero-dependency string hash.
fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    (h as usize) % N_SHARDS
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>), // f64 bit pattern
    Histogram(Arc<HistogramInner>),
    Quantile(Arc<crate::quantile::QuantileInner>),
}

/// Monotone counter handle. Cheap to clone; detached from the registry
/// lock once obtained.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge handle storing an `f64`.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistogramInner {
    /// Inclusive upper bucket edges; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` per-bucket counts (last is the `+Inf` bucket).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations as an `f64` bit pattern, updated by CAS loop.
    sum_bits: AtomicU64,
}

/// Fixed-bucket histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, value: f64) {
        let h = &self.0;
        let idx = h
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(h.bounds.len());
        h.buckets[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = h.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match h
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram {
        /// Inclusive upper bucket edges (an implicit `+Inf` follows).
        bounds: Vec<f64>,
        /// Per-bucket counts, one longer than `bounds` (`+Inf` last).
        counts: Vec<u64>,
        /// Sum of all observations.
        sum: f64,
        /// Number of observations.
        count: u64,
    },
    /// Log-bucketed quantile histogram (see [`crate::quantile`]).
    Quantile(crate::quantile::QuantileSnapshot),
}

/// A point-in-time reading of the whole registry, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs in ascending name order.
    pub metrics: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Look up one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Counter value, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value, if `name` is a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Quantile snapshot, if `name` is a quantile histogram.
    pub fn quantile(&self, name: &str) -> Option<&crate::quantile::QuantileSnapshot> {
        match self.get(name) {
            Some(MetricValue::Quantile(q)) => Some(q),
            _ => None,
        }
    }
}

/// A lock-sharded registry of named metrics.
///
/// Handles returned by [`counter`](Registry::counter) /
/// [`gauge`](Registry::gauge) / [`histogram`](Registry::histogram) are
/// `Arc`s onto the underlying atomics: hold one and recording never
/// touches the shard locks again. Name lookups take a read lock on one
/// shard; first registration upgrades to a write lock.
///
/// A name keeps the type it was first registered with; asking for the
/// same name as a different type returns a detached handle whose
/// recordings are invisible to [`snapshot`](Registry::snapshot) (the
/// registry never panics on the hot path).
pub struct Registry {
    shards: [RwLock<HashMap<String, Metric>>; N_SHARDS],
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry. Prefer [`global`] outside of tests.
    pub fn new() -> Self {
        Registry {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Metric>> {
        &self.shards[shard_of(name)]
    }

    /// Counter handle for `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let shard = self.shard(name);
        if let Some(Metric::Counter(c)) = read(shard).get(name) {
            return Counter(Arc::clone(c));
        }
        let mut map = write(shard);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
        {
            Metric::Counter(c) => Counter(Arc::clone(c)),
            _ => Counter(Arc::new(AtomicU64::new(0))), // type clash: detached
        }
    }

    /// Gauge handle for `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let shard = self.shard(name);
        if let Some(Metric::Gauge(g)) = read(shard).get(name) {
            return Gauge(Arc::clone(g));
        }
        let mut map = write(shard);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        {
            Metric::Gauge(g) => Gauge(Arc::clone(g)),
            _ => Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
        }
    }

    /// Histogram handle for `name`, registering it with `bounds` on
    /// first use (later calls reuse the original bounds).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let shard = self.shard(name);
        if let Some(Metric::Histogram(h)) = read(shard).get(name) {
            return Histogram(Arc::clone(h));
        }
        let mut map = write(shard);
        let fresh = || {
            Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            })
        };
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(fresh()))
        {
            Metric::Histogram(h) => Histogram(Arc::clone(h)),
            _ => Histogram(fresh()),
        }
    }

    /// Quantile-histogram handle for `name`, registering it on first
    /// use (the log-bucket grid is fixed, so there are no bounds to
    /// agree on).
    pub fn quantile(&self, name: &str) -> crate::quantile::Quantile {
        use crate::quantile::{Quantile, QuantileInner};
        let shard = self.shard(name);
        if let Some(Metric::Quantile(q)) = read(shard).get(name) {
            return Quantile(Arc::clone(q));
        }
        let mut map = write(shard);
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Quantile(Arc::new(QuantileInner::new())))
        {
            Metric::Quantile(q) => Quantile(Arc::clone(q)),
            _ => Quantile(Arc::new(QuantileInner::new())),
        }
    }

    /// Read every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut metrics = Vec::new();
        for shard in &self.shards {
            for (name, metric) in read(shard).iter() {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => {
                        MetricValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed)))
                    }
                    Metric::Histogram(h) => MetricValue::Histogram {
                        bounds: h.bounds.clone(),
                        counts: h
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                        count: h.count.load(Ordering::Relaxed),
                    },
                    Metric::Quantile(q) => MetricValue::Quantile(q.read()),
                };
                metrics.push((name.clone(), value));
            }
        }
        metrics.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { metrics }
    }

    /// Drop every registered metric (detached handles keep their
    /// atomics but stop being visible).
    pub fn reset(&self) {
        for shard in &self.shards {
            write(shard).clear();
        }
    }
}

fn read<'a>(
    lock: &'a RwLock<HashMap<String, Metric>>,
) -> std::sync::RwLockReadGuard<'a, HashMap<String, Metric>> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write<'a>(
    lock: &'a RwLock<HashMap<String, Metric>>,
) -> std::sync::RwLockWriteGuard<'a, HashMap<String, Metric>> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// The process-global registry used by [`counter_add`](crate::counter_add)
/// and friends.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

const N_STRIPES: usize = 16;

#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// A counter split across cache-line-padded stripes so that concurrent
/// writers (e.g. the four `ge_h_parallel` shards hitting the solver
/// cache) never ping-pong one cache line. Each thread picks a stripe
/// once (thread-local) and sticks to it; [`get`](StripedCounter::get)
/// sums the stripes.
///
/// Unlike registry metrics this counts unconditionally — it is for
/// always-on statistics like `SolverCache` hits where even the enabled
/// check would be wasted work.
pub struct StripedCounter {
    stripes: [PaddedU64; N_STRIPES],
}

impl Default for StripedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for StripedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("StripedCounter").field(&self.get()).finish()
    }
}

fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = Cell::new(usize::MAX);
    }
    STRIPE.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            idx = NEXT.fetch_add(1, Ordering::Relaxed) % N_STRIPES;
            s.set(idx);
        }
        idx
    })
}

impl StripedCounter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: PaddedU64 = PaddedU64(AtomicU64::new(0));
        StripedCounter {
            stripes: [ZERO; N_STRIPES],
        }
    }

    /// Add `delta` on this thread's stripe.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.stripes[stripe_index()].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sum across stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_record_and_snapshot() {
        let reg = Registry::new();
        reg.counter("rows_total").add(41);
        reg.counter("rows_total").inc();
        reg.gauge("rows_per_s").set(2.5);
        let h = reg.histogram("lat_ns", &[10.0, 100.0]);
        h.observe(5.0);
        h.observe(50.0);
        h.observe(500.0);
        h.observe(100.0); // boundary: inclusive upper edge

        let snap = reg.snapshot();
        assert_eq!(snap.counter("rows_total"), Some(42));
        assert_eq!(snap.gauge("rows_per_s"), Some(2.5));
        match snap.get("lat_ns").unwrap() {
            MetricValue::Histogram {
                bounds,
                counts,
                sum,
                count,
            } => {
                assert_eq!(bounds, &[10.0, 100.0]);
                assert_eq!(counts, &[1, 2, 1]);
                assert_eq!(*count, 4);
                assert!((sum - 655.0).abs() < 1e-12);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        // Sorted by name.
        let names: Vec<_> = snap.metrics.iter().map(|(n, _)| n.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn quantile_registers_snapshots_and_survives_type_clash() {
        let reg = Registry::new();
        let q = reg.quantile("lat_us");
        for i in 1..=100 {
            q.observe(i as f64);
        }
        match reg.snapshot().get("lat_us").unwrap() {
            MetricValue::Quantile(s) => {
                assert_eq!(s.count, 100);
                assert_eq!(s.max, 100.0);
                assert!(s.quantile(0.5) >= 50.0 && s.quantile(0.5) < 55.0);
            }
            other => panic!("expected quantile, got {other:?}"),
        }
        // Asking for the same name as a counter: detached, invisible.
        reg.counter("lat_us").add(5);
        assert!(reg.snapshot().counter("lat_us").is_none());
        assert!(reg.snapshot().quantile("lat_us").is_some());
    }

    #[test]
    fn type_clash_returns_detached_handle_without_panicking() {
        let reg = Registry::new();
        reg.counter("x").add(3);
        reg.gauge("x").set(9.0); // wrong type: detached, invisible
        assert_eq!(reg.snapshot().counter("x"), Some(3));
    }

    #[test]
    fn reset_clears_everything() {
        let reg = Registry::new();
        reg.counter("a").inc();
        reg.reset();
        assert!(reg.snapshot().metrics.is_empty());
    }

    #[test]
    fn concurrent_counting_loses_nothing() {
        let reg = Registry::new();
        let striped = StripedCounter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let c = reg.counter("shared_total");
                    for _ in 0..10_000 {
                        c.inc();
                        striped.inc();
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter("shared_total"), Some(40_000));
        assert_eq!(striped.get(), 40_000);
    }

    #[test]
    fn histogram_sum_survives_concurrent_cas() {
        let reg = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let h = reg.histogram("conc_ns", &[1.0]);
                    for _ in 0..1_000 {
                        h.observe(2.0);
                    }
                });
            }
        });
        match reg.snapshot().get("conc_ns").unwrap() {
            MetricValue::Histogram { sum, count, .. } => {
                assert_eq!(*count, 4_000);
                assert!((sum - 8_000.0).abs() < 1e-9);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
