//! Scoped span timers collected into a flat, globally ordered trace.
//!
//! A [`Span`] measures the wall time between [`Span::enter`] and drop.
//! Nesting depth is tracked per thread; a global sequence number taken
//! at *enter* time keeps the trace in pre-order even though drops push
//! records in post-order. While recording is disabled a span is a
//! no-op: no clock read, no allocation.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One completed span: name, nesting depth at entry, and elapsed
/// nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name as passed to [`Span::enter`].
    pub name: String,
    /// Nesting depth on the entering thread (root spans are 0).
    pub depth: usize,
    /// Elapsed wall time in nanoseconds.
    pub ns: u64,
}

static TRACE: Mutex<Vec<(u64, SpanRecord)>> = Mutex::new(Vec::new());
static SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

struct Active {
    name: String,
    depth: usize,
    seq: u64,
    start: Instant,
}

/// A scoped timer; drop it to record. See the module docs.
pub struct Span {
    inner: Option<Active>,
}

impl Span {
    /// Start a span named `name`, incrementing this thread's depth.
    /// Returns an inert span while recording is disabled.
    pub fn enter(name: &str) -> Span {
        if !crate::enabled() {
            return Span { inner: None };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span {
            inner: Some(Active {
                name: name.to_string(),
                depth,
                seq: SEQ.fetch_add(1, Ordering::Relaxed),
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            let ns = active.start.elapsed().as_nanos() as u64;
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            TRACE
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((
                    active.seq,
                    SpanRecord {
                        name: active.name,
                        depth: active.depth,
                        ns,
                    },
                ));
        }
    }
}

/// Drain the global trace, returned in entry (pre-) order.
pub fn take_trace() -> Vec<SpanRecord> {
    let mut buf = TRACE.lock().unwrap_or_else(|e| e.into_inner());
    let mut records: Vec<(u64, SpanRecord)> = buf.drain(..).collect();
    records.sort_by_key(|(seq, _)| *seq);
    records.into_iter().map(|(_, r)| r).collect()
}

/// Human-readable duration: `482 ns`, `3.21 us`, `14.06 ms`, `2.41 s`.
pub fn format_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns_f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns_f / 1e6)
    } else {
        format!("{:.2} s", ns_f / 1e9)
    }
}

/// Render a trace as an indented tree with dotted leaders:
///
/// ```text
/// profile ......................... 14.06 ms
///   mine .......................... 11.21 ms
///     covariance_scan ............. 7.90 ms
/// ```
pub fn render_trace(records: &[SpanRecord]) -> String {
    if records.is_empty() {
        return String::from("(no spans recorded)\n");
    }
    let mut out = String::new();
    for r in records {
        let label = format!("{}{} ", "  ".repeat(r.depth), r.name);
        let dots = 40usize.saturating_sub(label.len()).max(3);
        out.push_str(&label);
        out.push_str(&".".repeat(dots));
        out.push(' ');
        out.push_str(&format_ns(r.ns));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_trace_is_pre_ordered() {
        crate::set_enabled(true);
        take_trace(); // start from a clean buffer
        {
            let _root = Span::enter("root");
            {
                let _child = Span::enter("child");
                let _grandchild = Span::enter("grandchild");
            }
            let _sibling = Span::enter("sibling");
        }
        let trace = take_trace();
        crate::set_enabled(false);

        // Other tests in this process may interleave their own spans;
        // extract ours by name to stay robust.
        let ours: Vec<&SpanRecord> = trace
            .iter()
            .filter(|r| ["root", "child", "grandchild", "sibling"].contains(&r.name.as_str()))
            .collect();
        let names: Vec<&str> = ours.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["root", "child", "grandchild", "sibling"]);
        let depths: Vec<usize> = ours.iter().map(|r| r.depth).collect();
        assert_eq!(depths, vec![0, 1, 2, 1]);
        // The root span encloses the children, so it cannot be shorter.
        assert!(ours[0].ns >= ours[1].ns);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        crate::set_enabled(false);
        take_trace();
        {
            let _s = Span::enter("invisible");
        }
        assert!(take_trace().iter().all(|r| r.name != "invisible"));
    }

    #[test]
    fn render_indents_by_depth() {
        let records = vec![
            SpanRecord {
                name: "a".into(),
                depth: 0,
                ns: 1_500,
            },
            SpanRecord {
                name: "b".into(),
                depth: 1,
                ns: 900,
            },
        ];
        let text = render_trace(&records);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a ."));
        assert!(lines[0].ends_with("1.50 us"));
        assert!(lines[1].starts_with("  b ."));
        assert!(lines[1].ends_with("900 ns"));
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert_eq!(format_ns(17), "17 ns");
        assert_eq!(format_ns(2_500), "2.50 us");
        assert_eq!(format_ns(14_060_000), "14.06 ms");
        assert_eq!(format_ns(2_410_000_000), "2.41 s");
    }
}
