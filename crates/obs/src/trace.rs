//! Request-scoped tracing that crosses thread boundaries.
//!
//! [`Span`](crate::span::Span) nests via a thread-local depth, which is
//! the right shape for single-threaded CLI pipelines but cannot follow
//! a serve request that hops from a connection worker into the batcher
//! thread and back. This module adds an *explicit* context:
//! [`TraceContext`] is a `(trace id, span id)` pair that the caller
//! threads through function arguments and queue jobs, so a coalesced
//! batch can record one solve span into every member request's trace.
//!
//! Ids are derived with splitmix64 from a caller-supplied seed plus a
//! process-global sequence counter — deterministic inputs, no ambient
//! entropy (RR003-clean), yet unique per request and per span.
//!
//! Completed spans land in a bounded in-memory store (at most
//! [`MAX_TRACES`] traces of [`MAX_SPANS_PER_TRACE`] spans each; oldest
//! trace evicted first) keyed by trace id, and export as Chrome
//! trace-event JSON ([`chrome_trace_doc`]) loadable in `about:tracing`
//! / Perfetto: one virtual thread lane per trace, so batch sharing is
//! visible as the same-named solve span appearing in several lanes with
//! identical `batch` args.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::json::JsonValue;

/// Retained-trace cap; the oldest trace is evicted when a new trace id
/// arrives at capacity.
pub const MAX_TRACES: usize = 64;

/// Per-trace span cap; spans beyond it are silently dropped (the store
/// must stay bounded under pathological request shapes).
pub const MAX_SPANS_PER_TRACE: usize = 256;

/// splitmix64: the workspace's standard seeded mixing function (same
/// constants as `dataset::fault`). Deterministic, full-period, cheap.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn next_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(1);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Explicit request-scoped trace identity: which trace this work
/// belongs to and which span is its parent. `Copy`, 16 bytes — cheap to
/// thread through queue jobs and batch groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identifies the request's whole span tree.
    pub trace_id: u64,
    /// The span that owns whatever work is about to happen (the parent
    /// of any span entered under this context).
    pub span_id: u64,
}

impl TraceContext {
    /// A fresh root context. `seed` is caller-supplied (e.g. a server's
    /// configured seed XOR a request counter); a process-global
    /// sequence is mixed in so equal seeds still yield distinct traces.
    pub fn root(seed: u64) -> TraceContext {
        let id = splitmix64(seed ^ next_seq().rotate_left(32));
        TraceContext {
            trace_id: id,
            span_id: id,
        }
    }

    /// Derive a child context: same trace, fresh span id parented at
    /// this context's span.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: splitmix64(self.span_id ^ next_seq()),
        }
    }
}

/// One completed span inside a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (== `span_id` of the enclosing context; a root
    /// span is its own parent).
    pub parent_id: u64,
    /// Registered span name (`crate::names`).
    pub name: &'static str,
    /// Start, microseconds since the process trace epoch.
    pub start_us: u64,
    /// Wall duration in microseconds.
    pub dur_us: u64,
    /// Numeric annotations, e.g. `[("batch", 7.0), ("rows", 3.0)]`.
    pub args: Vec<(&'static str, f64)>,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch (first use).
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

type TraceStore = VecDeque<(u64, Vec<TraceSpanRecord>)>;

fn store() -> MutexGuard<'static, TraceStore> {
    static STORE: OnceLock<Mutex<TraceStore>> = OnceLock::new();
    STORE
        .get_or_init(|| Mutex::new(VecDeque::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn push_record(rec: TraceSpanRecord) {
    let mut traces = store();
    if let Some((_, spans)) = traces.iter_mut().find(|(id, _)| *id == rec.trace_id) {
        if spans.len() < MAX_SPANS_PER_TRACE {
            spans.push(rec);
        }
        return;
    }
    if traces.len() >= MAX_TRACES {
        traces.pop_front();
    }
    traces.push_back((rec.trace_id, vec![rec]));
}

/// Record a completed span directly, without a guard — for code that
/// measures a duration itself and attributes it to a context after the
/// fact (the batcher does this once per member request of a coalesced
/// batch). A fresh span id is derived under `parent`. No-op while
/// recording is disabled.
pub fn record_span(
    parent: &TraceContext,
    name: &'static str,
    start_us: u64,
    dur_us: u64,
    args: &[(&'static str, f64)],
) {
    if !crate::enabled() {
        return;
    }
    push_record(TraceSpanRecord {
        trace_id: parent.trace_id,
        span_id: splitmix64(parent.span_id ^ next_seq()),
        parent_id: parent.span_id,
        name,
        start_us,
        dur_us,
        args: args.to_vec(),
    });
}

struct ActiveTraced {
    ctx: TraceContext,
    parent_id: u64,
    name: &'static str,
    start: Instant,
    start_us: u64,
    args: Vec<(&'static str, f64)>,
}

/// RAII guard for a traced span: created under a parent context,
/// records itself into the trace store on drop. Unlike
/// [`Span`](crate::span::Span) the identity is explicit, so the guard
/// and the work it times may live on different threads from the rest of
/// the request.
pub struct TracedSpan {
    inner: Option<ActiveTraced>,
}

impl TracedSpan {
    /// Open a span under `parent`. Returns the guard plus the child
    /// context to thread into any work done inside this span. The
    /// context is derived even while recording is disabled (so
    /// propagation code needs no branches); only the record is skipped.
    pub fn enter(parent: &TraceContext, name: &'static str) -> (TracedSpan, TraceContext) {
        let ctx = parent.child();
        let inner = if crate::enabled() {
            Some(ActiveTraced {
                ctx,
                parent_id: parent.span_id,
                name,
                start: Instant::now(),
                start_us: now_us(),
                args: Vec::new(),
            })
        } else {
            None
        };
        (TracedSpan { inner }, ctx)
    }

    /// Attach a numeric annotation (kept in insertion order).
    pub fn arg(&mut self, key: &'static str, value: f64) {
        if let Some(active) = &mut self.inner {
            active.args.push((key, value));
        }
    }
}

impl Drop for TracedSpan {
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            push_record(TraceSpanRecord {
                trace_id: active.ctx.trace_id,
                span_id: active.ctx.span_id,
                parent_id: active.parent_id,
                name: active.name,
                start_us: active.start_us,
                dur_us: active.start.elapsed().as_micros() as u64,
                args: active.args,
            });
        }
    }
}

/// Drain every retained trace, oldest first.
pub fn take_traces() -> Vec<(u64, Vec<TraceSpanRecord>)> {
    store().drain(..).collect()
}

/// Ids of the currently retained traces, oldest first.
pub fn trace_ids() -> Vec<u64> {
    store().iter().map(|(id, _)| *id).collect()
}

/// Copy of one retained trace's spans, if still in the store.
pub fn get_trace(trace_id: u64) -> Option<Vec<TraceSpanRecord>> {
    store()
        .iter()
        .find(|(id, _)| *id == trace_id)
        .map(|(_, spans)| spans.clone())
}

/// Drop all retained traces.
pub fn clear_traces() {
    store().clear();
}

fn hex_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Render traces as a Chrome trace-event JSON document (the
/// `about:tracing` / Perfetto format). Each trace gets its own virtual
/// thread lane (`tid` = 1-based index, named after the trace id); every
/// span is a complete event (`"ph":"X"`) with microsecond `ts`/`dur`
/// and its ids plus numeric annotations under `args`.
pub fn chrome_trace_doc(traces: &[(u64, Vec<TraceSpanRecord>)]) -> String {
    let mut events = Vec::new();
    for (lane, (trace_id, spans)) in traces.iter().enumerate() {
        let tid = (lane + 1) as f64;
        events.push(JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("thread_name".into())),
            ("ph".into(), JsonValue::Str("M".into())),
            ("pid".into(), JsonValue::Num(1.0)),
            ("tid".into(), JsonValue::Num(tid)),
            (
                "args".into(),
                JsonValue::Obj(vec![(
                    "name".into(),
                    JsonValue::Str(format!("trace {}", hex_id(*trace_id))),
                )]),
            ),
        ]));
        let mut ordered: Vec<&TraceSpanRecord> = spans.iter().collect();
        ordered.sort_by_key(|s| (s.start_us, s.span_id));
        for span in ordered {
            let mut args = vec![
                ("trace_id".into(), JsonValue::Str(hex_id(span.trace_id))),
                ("span_id".into(), JsonValue::Str(hex_id(span.span_id))),
                ("parent_id".into(), JsonValue::Str(hex_id(span.parent_id))),
            ];
            for (key, value) in &span.args {
                args.push(((*key).into(), JsonValue::Num(*value)));
            }
            events.push(JsonValue::Obj(vec![
                ("name".into(), JsonValue::Str(span.name.into())),
                ("cat".into(), JsonValue::Str("rr".into())),
                ("ph".into(), JsonValue::Str("X".into())),
                ("ts".into(), JsonValue::Num(span.start_us as f64)),
                ("dur".into(), JsonValue::Num(span.dur_us as f64)),
                ("pid".into(), JsonValue::Num(1.0)),
                ("tid".into(), JsonValue::Num(tid)),
                ("args".into(), JsonValue::Obj(args)),
            ]));
        }
    }
    let doc = JsonValue::Obj(vec![
        ("traceEvents".into(), JsonValue::Arr(events)),
        ("displayTimeUnit".into(), JsonValue::Str("ms".into())),
    ]);
    doc.write(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trace store is process-global; tests share it with each
    // other, so each test uses its own trace ids and filters.

    #[test]
    fn root_contexts_are_distinct_even_with_equal_seeds() {
        let a = TraceContext::root(42);
        let b = TraceContext::root(42);
        assert_ne!(a.trace_id, b.trace_id);
        assert_eq!(a.trace_id, a.span_id, "root span is its own parent");
    }

    #[test]
    fn child_keeps_trace_id_and_gets_fresh_span_id() {
        let root = TraceContext::root(7);
        let c1 = root.child();
        let c2 = root.child();
        assert_eq!(c1.trace_id, root.trace_id);
        assert_eq!(c2.trace_id, root.trace_id);
        assert_ne!(c1.span_id, c2.span_id);
        assert_ne!(c1.span_id, root.span_id);
    }

    #[test]
    fn traced_spans_record_a_parented_tree() {
        crate::set_enabled(true);
        let root_ctx = TraceContext::root(0xbeef);
        {
            let (mut outer, outer_ctx) = TracedSpan::enter(&root_ctx, "outer");
            outer.arg("rows", 3.0);
            let (_inner, _) = TracedSpan::enter(&outer_ctx, "inner");
        }
        crate::set_enabled(false);
        let spans = get_trace(root_ctx.trace_id).expect("trace retained");
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner");
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer");
        assert_eq!(inner.parent_id, outer.span_id);
        assert_eq!(outer.parent_id, root_ctx.span_id);
        assert_eq!(outer.args, vec![("rows", 3.0)]);
    }

    #[test]
    fn record_span_attributes_cross_thread_work() {
        crate::set_enabled(true);
        let ctx = TraceContext::root(0xabad);
        let start = now_us();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                record_span(&ctx, "batch_solve", start, 5, &[("batch", 1.0)]);
            });
        });
        crate::set_enabled(false);
        let spans = get_trace(ctx.trace_id).expect("trace retained");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].parent_id, ctx.span_id);
        assert_eq!(spans[0].args, vec![("batch", 1.0)]);
    }

    #[test]
    fn disabled_recording_keeps_context_but_stores_nothing() {
        crate::set_enabled(false);
        let root = TraceContext::root(0x0ff);
        let (_span, child) = TracedSpan::enter(&root, "ghost");
        assert_eq!(child.trace_id, root.trace_id);
        drop(_span);
        assert!(get_trace(root.trace_id).is_none());
    }

    #[test]
    fn store_evicts_oldest_trace_at_capacity() {
        crate::set_enabled(true);
        let first = TraceContext::root(1);
        record_span(&first, "s", 0, 1, &[]);
        let mut later = Vec::new();
        for i in 0..MAX_TRACES as u64 {
            let ctx = TraceContext::root(1000 + i);
            record_span(&ctx, "s", 0, 1, &[]);
            later.push(ctx.trace_id);
        }
        crate::set_enabled(false);
        assert!(get_trace(first.trace_id).is_none(), "oldest evicted");
        assert!(get_trace(later[later.len() - 1]).is_some());
        assert!(trace_ids().len() <= MAX_TRACES);
        clear_traces();
        assert!(trace_ids().is_empty());
    }

    #[test]
    fn chrome_doc_is_parseable_and_carries_ids() {
        let ctx = TraceContext::root(0xc0de);
        let spans = vec![TraceSpanRecord {
            trace_id: ctx.trace_id,
            span_id: 2,
            parent_id: 1,
            name: "serve_request",
            start_us: 10,
            dur_us: 25,
            args: vec![("rows", 2.0)],
        }];
        let doc = chrome_trace_doc(&[(ctx.trace_id, spans)]);
        let parsed = crate::json::parse(&doc).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        assert_eq!(events.len(), 2, "metadata + one span");
        let span = &events[1];
        assert_eq!(span.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(span.get("ts").and_then(|v| v.as_f64()), Some(10.0));
        assert_eq!(span.get("dur").and_then(|v| v.as_f64()), Some(25.0));
        let args = span.get("args").expect("args");
        assert_eq!(args.get("rows").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(
            args.get("trace_id").and_then(|v| v.as_str()),
            Some(format!("{:016x}", ctx.trace_id)).as_deref()
        );
    }
}
