//! Satellite: parse the Prometheus text exposition back line-by-line
//! and check escaping, typing, histogram cumulativity, and value
//! fidelity against the snapshot it came from.

use obs::export::{sanitize_name, to_prometheus};
use obs::registry::{MetricValue, Registry};

/// A minimal line-by-line reader of the exposition format: collects
/// `# TYPE`, `# HELP`, and sample lines per metric family.
#[derive(Default, Debug)]
struct Family {
    help: Option<String>,
    kind: Option<String>,
    /// `(full sample name, labels, value)` in emission order.
    samples: Vec<(String, Option<String>, f64)>,
}

fn parse_exposition(text: &str) -> std::collections::BTreeMap<String, Family> {
    let mut families: std::collections::BTreeMap<String, Family> = Default::default();
    for line in text.lines() {
        assert!(!line.is_empty(), "exporter must not emit blank lines");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP has name and text");
            families.entry(name.to_string()).or_default().help = Some(help.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE has name and kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown TYPE {kind}"
            );
            families.entry(name.to_string()).or_default().kind = Some(kind.to_string());
        } else {
            let (name_part, value_part) =
                line.rsplit_once(' ').expect("sample line has name and value");
            let value: f64 = match value_part {
                "+Inf" => f64::INFINITY,
                "-Inf" => f64::NEG_INFINITY,
                other => other.parse().expect("sample value parses as f64"),
            };
            let (sample_name, labels) = match name_part.split_once('{') {
                Some((n, l)) => (
                    n.to_string(),
                    Some(l.strip_suffix('}').expect("labels close").to_string()),
                ),
                None => (name_part.to_string(), None),
            };
            // A sample belongs to the family whose name is its longest
            // prefix (histograms append _bucket/_sum/_count).
            let family = sample_name
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count")
                .to_string();
            families
                .entry(family)
                .or_default()
                .samples
                .push((sample_name, labels, value));
        }
    }
    families
}

#[test]
fn exposition_round_trips_line_by_line() {
    let reg = Registry::new();
    reg.counter("rows_scanned_total").add(12_345);
    reg.gauge("eigen_residual").set(7.25e-15);
    let h = reg.histogram("ge_h_shard_ns", &[1e3, 1e6]);
    h.observe(400.0);
    h.observe(4e5);
    h.observe(4e7);
    let snap = reg.snapshot();
    let text = to_prometheus(&snap);
    let families = parse_exposition(&text);

    // Every metric in the snapshot appears with the right TYPE, a HELP
    // line carrying the original name, and matching values.
    for (name, value) in &snap.metrics {
        let pname = sanitize_name(name);
        let family = families.get(&pname).unwrap_or_else(|| panic!("{pname} missing"));
        assert_eq!(family.help.as_deref(), Some(name.as_str()));
        match value {
            MetricValue::Counter(v) => {
                assert_eq!(family.kind.as_deref(), Some("counter"));
                assert_eq!(family.samples.len(), 1);
                assert_eq!(family.samples[0].0, pname);
                assert_eq!(family.samples[0].2, *v as f64);
            }
            MetricValue::Gauge(v) => {
                assert_eq!(family.kind.as_deref(), Some("gauge"));
                assert_eq!(family.samples[0].2, *v);
            }
            MetricValue::Histogram {
                bounds,
                counts,
                sum,
                count,
            } => {
                assert_eq!(family.kind.as_deref(), Some("histogram"));
                let buckets: Vec<_> = family
                    .samples
                    .iter()
                    .filter(|(n, _, _)| n == &format!("{pname}_bucket"))
                    .collect();
                assert_eq!(buckets.len(), bounds.len() + 1);
                // le labels are the bounds plus +Inf, in order; counts
                // are cumulative and end at the total.
                let mut cumulative = 0u64;
                for (i, (_, labels, v)) in buckets.iter().enumerate() {
                    let le = labels.as_deref().expect("bucket has le label");
                    let expected_le = bounds
                        .get(i)
                        .map_or("le=\"+Inf\"".to_string(), |b| format!("le=\"{b}\""));
                    assert_eq!(le, expected_le);
                    cumulative += counts[i];
                    assert_eq!(*v, cumulative as f64, "bucket {i} not cumulative");
                }
                assert_eq!(cumulative, *count);
                let sum_sample = family
                    .samples
                    .iter()
                    .find(|(n, _, _)| n == &format!("{pname}_sum"))
                    .expect("_sum present");
                assert!((sum_sample.2 - sum).abs() <= 1e-9 * sum.abs().max(1.0));
                let count_sample = family
                    .samples
                    .iter()
                    .find(|(n, _, _)| n == &format!("{pname}_count"))
                    .expect("_count present");
                assert_eq!(count_sample.2, *count as f64);
            }
        }
    }
}

#[test]
fn weird_names_are_sanitized_but_preserved_in_help() {
    let reg = Registry::new();
    reg.gauge("ge_h.shard 3/ns").set(1.0);
    reg.counter("9starts-with-digit").add(2);
    let text = to_prometheus(&reg.snapshot());
    let families = parse_exposition(&text);

    let g = families.get("ge_h_shard_3_ns").expect("sanitized gauge");
    assert_eq!(g.help.as_deref(), Some("ge_h.shard 3/ns"));
    let c = families.get("_9starts_with_digit").expect("sanitized counter");
    assert_eq!(c.help.as_deref(), Some("9starts-with-digit"));
    // Sanitized names must satisfy the Prometheus alphabet.
    for name in families.keys() {
        let mut chars = name.chars();
        let first = chars.next().unwrap();
        assert!(first.is_ascii_alphabetic() || first == '_' || first == ':');
        assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
    }
}

#[test]
fn help_escaping_survives_newlines_and_backslashes() {
    let reg = Registry::new();
    reg.gauge("odd\nname\\here").set(3.0);
    let text = to_prometheus(&reg.snapshot());
    // The document must still be one logical line per record.
    for line in text.lines() {
        if line.starts_with("# HELP") {
            assert!(line.contains("odd\\nname\\\\here"), "got: {line}");
        }
    }
    // And still parse as a well-formed family.
    let families = parse_exposition(&text);
    assert!(families.contains_key("odd_name_here"));
}
