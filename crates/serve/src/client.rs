//! Minimal one-shot HTTP/1.1 client for in-workspace callers.
//!
//! Both the load generator and the distributed-mining coordinator speak
//! to servers built on [`crate::protocol`], so the client side lives
//! here once: connect (with a bounded warm-up retry on
//! `ConnectionRefused`, because a freshly spawned server needs a moment
//! to bind), send one request, read one `Connection: close` response.
//!
//! Unlike a naive `read_to_string`, the reader **enforces
//! `Content-Length`**: a response whose body ends early is an
//! `UnexpectedEof` error, not a silently short string. The distributed
//! coordinator leans on this at its trust boundary — a truncated shard
//! payload must read as a transport failure (and be retried), never as
//! a parseable prefix.
//!
//! This crate is a clock crate (`rrlint` RR003): the warm-up budget is
//! wall-clock by nature.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Connects to `addr`, retrying `ConnectionRefused` for up to `warmup`
/// before giving up. A zero `warmup` is a single attempt.
///
/// # Errors
///
/// The final connect error once the warm-up budget is spent, or
/// immediately for errors other than `ConnectionRefused`.
pub fn connect_warm(
    addr: SocketAddr,
    timeout: Duration,
    warmup: Duration,
) -> io::Result<TcpStream> {
    let t0 = Instant::now();
    loop {
        match TcpStream::connect_timeout(&addr, timeout) {
            Ok(s) => {
                // Requests go out as single buffered writes; disabling
                // Nagle keeps pipelined keep-alive round-trips from
                // waiting on the peer's delayed ACK.
                let _ = s.set_nodelay(true);
                return Ok(s);
            }
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused && t0.elapsed() < warmup => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Sends one request and reads the full response.
///
/// `body = None` sends a bodyless request (GET); `Some` posts the text
/// with a `Content-Length` header. Returns `(status, body)`.
///
/// # Errors
///
/// Connect/write/read failures; a malformed status line; a body that
/// ends before its declared `Content-Length` (`UnexpectedEof`).
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
    warmup: Duration,
) -> io::Result<(u16, String)> {
    let mut stream = connect_warm(addr, timeout, warmup)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write_request(&mut stream, method, path, body, true)?;
    let (status, body, _close) = read_response(&mut stream)?;
    Ok((status, body))
}

/// Writes one request. `close` selects the `Connection` header; the
/// keep-alive load generator sends `keep-alive`, everything one-shot
/// sends `close`.
///
/// # Errors
/// Propagates socket write failures.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&str>,
    close: bool,
) -> io::Result<()> {
    // One buffered write: a request split across write syscalls can race
    // a server that responds after its first read and closes, turning
    // the tail fragments into BrokenPipe.
    let raw = raw_request(method, path, body, close);
    stream.write_all(raw.as_bytes())?;
    stream.flush()
}

/// Serializes one request to its wire form without sending it. The
/// pipelining load generator concatenates a whole burst and writes it
/// as one syscall — which also lands the burst in one segment on
/// loopback, letting the server's read-ahead coalescing see all of it
/// at once.
#[must_use]
pub fn raw_request(method: &str, path: &str, body: Option<&str>, close: bool) -> String {
    let body_text = body.unwrap_or("");
    let connection = if close { "close" } else { "keep-alive" };
    format!(
        "{method} {path} HTTP/1.1\r\nhost: rr-client\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: {connection}\r\n\r\n{}",
        body_text.len(),
        body_text
    )
}

/// Reads one HTTP/1.1 response, enforcing `Content-Length` when the
/// header is present (servers in this workspace always send it). The
/// third element reports whether the server announced
/// `Connection: close` (absent header counts as close, matching the
/// workspace's historical one-shot contract).
///
/// One-shot: bytes read past the first response are discarded. A
/// pipelining client must use [`ResponseReader`] instead — the server
/// answers a burst as one write, so a single `recv` routinely carries
/// several responses, and dropping the surplus desyncs the stream.
///
/// # Errors
/// Read failures, a malformed status line, a body that ends before its
/// declared `Content-Length` (`UnexpectedEof`), non-UTF-8 bodies.
pub fn read_response(stream: &mut TcpStream) -> io::Result<(u16, String, bool)> {
    ResponseReader::new().next_response(stream)
}

/// Incremental reader for pipelined responses: any bytes read past the
/// response being parsed stay buffered for the next call, exactly like
/// the server side's request reader. One instance must stay attached to
/// its connection for the connection's whole life.
#[derive(Debug, Default)]
pub struct ResponseReader {
    buf: Vec<u8>,
}

impl ResponseReader {
    /// A reader with an empty buffer.
    #[must_use]
    pub fn new() -> ResponseReader {
        ResponseReader {
            buf: Vec::with_capacity(1024),
        }
    }

    /// Drops buffered read-ahead (call after a reconnect: leftover bytes
    /// belong to the dead connection).
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// Reads the next response off the stream, enforcing
    /// `Content-Length` when present (without it, reads to EOF — the
    /// legacy one-shot contract). Returns `(status, body, close)`.
    ///
    /// # Errors
    /// Read failures, a malformed status line, a body that ends before
    /// its declared `Content-Length` (`UnexpectedEof`), non-UTF-8
    /// bodies.
    pub fn next_response(&mut self, stream: &mut TcpStream) -> io::Result<(u16, String, bool)> {
        let mut chunk = [0u8; 4096];
        let body_start = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before the response header block ended",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..body_start - 4]).to_string();
        let status = head
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "malformed response status line")
            })?;
        let content_length = head.lines().find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>().ok())?
        });
        let close = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.trim()
                    .eq_ignore_ascii_case("connection")
                    .then(|| value.trim().eq_ignore_ascii_case("close"))
            })
            .unwrap_or(true);

        let body = match content_length {
            Some(len) => {
                let total = body_start + len;
                while self.buf.len() < total {
                    let n = stream.read(&mut chunk)?;
                    if n == 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!(
                                "body truncated: got {} of {len} declared bytes",
                                self.buf.len() - body_start
                            ),
                        ));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                let body = self.buf[body_start..total].to_vec();
                // Pipelined successors stay buffered for the next call.
                self.buf.drain(..total);
                body
            }
            None => {
                // Legacy servers without the header: read to EOF.
                loop {
                    let n = stream.read(&mut chunk)?;
                    if n == 0 {
                        break;
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                let body = self.buf.split_off(body_start.min(self.buf.len()));
                // The stream is spent; drop the consumed head too.
                self.buf.clear();
                body
            }
        };
        let body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not valid UTF-8"))?;
        Ok((status, body, close))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn one_shot_server(raw: &'static [u8]) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut s, _)) = listener.accept() {
                let mut sink = [0u8; 4096];
                let _ = s.read(&mut sink); // consume the request head
                let _ = s.write_all(raw);
            }
        });
        addr
    }

    #[test]
    fn reads_an_exact_content_length_body() {
        let addr = one_shot_server(
            b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\nconnection: close\r\n\r\nhellotrailing-garbage",
        );
        let (status, body) = request(
            addr,
            "GET",
            "/x",
            None,
            Duration::from_secs(2),
            Duration::ZERO,
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hello"); // trailing bytes beyond the length are ignored
    }

    #[test]
    fn truncated_bodies_are_transport_errors() {
        let addr = one_shot_server(
            b"HTTP/1.1 200 OK\r\ncontent-length: 100\r\nconnection: close\r\n\r\nonly-this",
        );
        let err = request(
            addr,
            "GET",
            "/x",
            None,
            Duration::from_secs(2),
            Duration::ZERO,
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn response_reader_splits_a_coalesced_burst() {
        // Two keep-alive responses in ONE write — exactly what the
        // server's burst answering produces. The one-shot read_response
        // would discard the second; ResponseReader must not.
        let addr = one_shot_server(
            b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\nconnection: keep-alive\r\n\r\nfirst\
              HTTP/1.1 429 Too Many Requests\r\ncontent-length: 6\r\nconnection: keep-alive\r\n\r\nsecond",
        );
        let mut stream = connect_warm(addr, Duration::from_secs(2), Duration::ZERO).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        write_request(&mut stream, "GET", "/a", None, false).unwrap();
        let mut reader = ResponseReader::new();
        let (s1, b1, c1) = reader.next_response(&mut stream).unwrap();
        assert_eq!((s1, b1.as_str(), c1), (200, "first", false));
        let (s2, b2, c2) = reader.next_response(&mut stream).unwrap();
        assert_eq!((s2, b2.as_str(), c2), (429, "second", false));
    }

    #[test]
    fn raw_request_round_trips_through_the_server_parser() {
        let raw = raw_request("POST", "/predict", Some("{\"x\":1}"), false);
        let req = crate::protocol::read_request(&mut std::io::Cursor::new(
            raw.clone().into_bytes(),
        ))
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body_str().unwrap(), "{\"x\":1}");
        assert!(!req.wants_close());
        let raw_close = raw_request("GET", "/healthz", None, true);
        let req = crate::protocol::read_request(&mut std::io::Cursor::new(
            raw_close.into_bytes(),
        ))
        .unwrap();
        assert!(req.wants_close());
        assert!(req.body.is_empty());
    }

    #[test]
    fn warmup_retries_connection_refused_until_a_listener_appears() {
        // Reserve a port, drop the listener, then bind it again from a
        // delayed thread: the first connects hit ConnectionRefused.
        let placeholder = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = placeholder.local_addr().unwrap();
        drop(placeholder);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            let listener = TcpListener::bind(addr).expect("rebind reserved port");
            if let Ok((mut s, _)) = listener.accept() {
                let mut sink = [0u8; 1024];
                let _ = s.read(&mut sink);
                let _ = s.write_all(
                    b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: close\r\n\r\nok",
                );
            }
        });
        let (status, body) = request(
            addr,
            "GET",
            "/healthz",
            None,
            Duration::from_secs(2),
            Duration::from_secs(3),
        )
        .expect("warm-up should absorb the refused connects");
        assert_eq!((status, body.as_str()), (200, "ok"));
        t.join().unwrap();
    }

    #[test]
    fn no_warmup_fails_fast_on_refused() {
        let placeholder = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = placeholder.local_addr().unwrap();
        drop(placeholder);
        let err = request(
            addr,
            "GET",
            "/x",
            None,
            Duration::from_secs(1),
            Duration::ZERO,
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }
}
