//! Supervising coordinator for distributed mining.
//!
//! `ratio-rules mine-distributed` partitions the dataset's row range
//! exactly like the in-process parallel scan (same
//! `n.div_ceil(shards)` contiguous chunks), dispatches each shard to a
//! [`crate::shard`] worker over HTTP, and supervises the fleet with
//! the full robustness ladder:
//!
//! - **Deadlines** — every request carries a socket deadline; a worker
//!   that hangs is indistinguishable from a dead one, by design.
//! - **Retries** — transport flakes and rejected payloads retry under
//!   a [`BackoffPolicy`] before the worker is declared dead.
//! - **Health probing** — workers are probed at boot (shape consensus)
//!   and again before any shard is reassigned to them.
//! - **Reassignment** — a dead worker's shard moves to a probed
//!   survivor, resuming from the worker's crash checkpoint when one is
//!   on the shared checkpoint directory; a bounded reassignment budget
//!   keeps a flapping fleet from looping forever.
//! - **Degradation** — shards that cannot be recovered inside the
//!   budget are *lost*; up to `max_lost_shards` of them the run
//!   completes degraded (partial-data model, accurate report), beyond
//!   it the run fails with a budget-exhausted error.
//!
//! The trust boundary is explicit: every received payload is validated
//! (shape, range completeness, finiteness, non-negative diagonal)
//! before its accumulator exists, duplicated deliveries are dropped by
//! per-shard slots, and the surviving accumulators fold through
//! [`tree_merge`] — the same fixed-shape pairwise tree the in-process
//! scan uses, which is what makes a clean distributed run
//! **bit-identical** to `mine --shards W` on one machine.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use dataset::retry::BackoffPolicy;
use obs::json::JsonValue;
use obs::names;
use ratio_rules::covariance::CovarianceAccumulator;
use ratio_rules::parallel::tree_merge;
use ratio_rules::resilience::{ScanCheckpoint, ScanPolicy};
use ratio_rules::RatioRuleError;

use crate::client;
use crate::shard::{
    checkpoint_file_name, policy_to_json, ChaosPlan, Fault, SHARD_PROTOCOL_VERSION,
};

/// Coordinator configuration (`mine-distributed` maps its flags here).
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Worker addresses. At least one is required.
    pub workers: Vec<SocketAddr>,
    /// Shard count; `None` means one shard per worker. Bit-identity
    /// holds against a single-process `mine --shards <this value>`.
    pub shards: Option<usize>,
    /// Scan policy every worker applies to its range. Quarantine
    /// budgets are enforced **per shard**: a worker that blows its
    /// budget fails the whole run (a retry cannot un-quarantine rows).
    pub policy: ScanPolicy,
    /// Per-request deadline (connect + scan + reply).
    pub deadline: Duration,
    /// Retry schedule per assignment before a worker is declared dead.
    pub backoff: BackoffPolicy,
    /// Total shard reassignments allowed across the run.
    pub reassign_budget: usize,
    /// Shards allowed to stay lost (degraded result) before the run
    /// fails outright.
    pub max_lost_shards: usize,
    /// Directory crashing workers drop checkpoints into; reassignment
    /// resumes from `shard_<start>_<end>.json` when present.
    pub checkpoint_dir: Option<PathBuf>,
    /// How long boot-time probes retry `ConnectionRefused` while the
    /// fleet is still binding its sockets.
    pub connect_warmup: Duration,
    /// Coordinator-side chaos: only `duplicate_rate` (+ `seed`) is
    /// honored, replaying each validated payload a second time to
    /// exercise at-least-once delivery.
    pub chaos: ChaosPlan,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            workers: Vec::new(),
            shards: None,
            policy: ScanPolicy::Strict,
            deadline: Duration::from_secs(5),
            backoff: BackoffPolicy::default(),
            reassign_budget: 4,
            max_lost_shards: 0,
            checkpoint_dir: None,
            connect_warmup: Duration::from_secs(1),
            chaos: ChaosPlan::none(),
        }
    }
}

/// What a distributed mine produced, plus the full accounting a
/// degradation report needs.
#[derive(Debug)]
pub struct DistributedOutcome {
    /// The merged accumulator (partial when `shards_lost > 0`).
    pub acc: CovarianceAccumulator,
    /// Column labels (worker consensus).
    pub labels: Vec<String>,
    /// Dataset rows (worker consensus).
    pub n_rows: usize,
    /// Dataset columns (worker consensus).
    pub m: usize,
    /// Shards the row range was partitioned into.
    pub shards: usize,
    /// Shards whose accumulators merged into the result.
    pub shards_merged: usize,
    /// Shards abandoned after the reassignment budget ran out.
    pub shards_lost: usize,
    /// Row ranges of the lost shards (the data the model never saw).
    pub lost_ranges: Vec<(usize, usize)>,
    /// Rows quarantined across all merged shards.
    pub rows_quarantined: usize,
    /// Quarantined rows by reason `(corrupt, arity, source_error)`.
    pub by_reason: (usize, usize, usize),
    /// Workers declared dead during the run.
    pub workers_lost: usize,
    /// Shard requests retried after a failure.
    pub retries: usize,
    /// Shards reassigned to a survivor.
    pub reassignments: usize,
    /// Shards that resumed from a crash checkpoint.
    pub checkpoint_resumes: usize,
    /// Duplicate deliveries dropped by the slot guard.
    pub duplicates_dropped: usize,
}

impl DistributedOutcome {
    /// True when the result is not full-fidelity (lost shards or
    /// quarantined rows).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.shards_lost > 0 || self.rows_quarantined > 0
    }

    /// Human-readable degradation report for the CLI.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "distributed scan: {}/{} shards merged, {} rows x {} cols",
            self.shards_merged, self.shards, self.n_rows, self.m
        );
        if self.shards_lost > 0 {
            out.push_str(&format!("\n  LOST {} shard(s):", self.shards_lost));
            for (lo, hi) in &self.lost_ranges {
                out.push_str(&format!(" rows [{lo}, {hi})"));
            }
            out.push_str("\n  the model was mined WITHOUT those rows");
        }
        if self.rows_quarantined > 0 {
            out.push_str(&format!(
                "\n  {} row(s) quarantined (corrupt {}, arity {}, source {})",
                self.rows_quarantined, self.by_reason.0, self.by_reason.1, self.by_reason.2
            ));
        }
        out.push_str(&format!(
            "\n  workers lost {}, retries {}, reassignments {} ({} checkpoint-resumed), duplicates dropped {}",
            self.workers_lost,
            self.retries,
            self.reassignments,
            self.checkpoint_resumes,
            self.duplicates_dropped
        ));
        out
    }
}

/// Registers every family in [`names::COORD_BOOT_FAMILIES`] so the
/// failure-path counters all read 0 (not "absent") on a clean run.
/// Data-driven, mirroring the serve boot seeder.
pub fn seed_coord_boot_families() {
    let reg = obs::global();
    for &(name, kind) in names::COORD_BOOT_FAMILIES {
        match kind {
            names::FamilyKind::Counter => {
                reg.counter(name);
            }
            names::FamilyKind::Gauge => {
                reg.gauge(name).set(0.0);
            }
            names::FamilyKind::Quantile => {
                reg.quantile(name);
            }
            names::FamilyKind::Histogram => {}
        }
    }
}

fn invalid(msg: String) -> RatioRuleError {
    RatioRuleError::Invalid(msg)
}

/// A probed worker's view of the dataset.
#[derive(Debug, Clone, PartialEq)]
struct WorkerShape {
    rows: usize,
    cols: usize,
    labels: Vec<String>,
}

/// `GET /healthz` on one worker.
fn probe_worker(
    addr: SocketAddr,
    deadline: Duration,
    warmup: Duration,
) -> Result<WorkerShape, String> {
    let (status, body) = client::request(addr, "GET", "/healthz", None, deadline, warmup)
        .map_err(|e| format!("probe {addr}: {e}"))?;
    if status != 200 {
        return Err(format!("probe {addr}: HTTP {status}"));
    }
    let doc = obs::json::parse(&body).map_err(|e| format!("probe {addr}: {e}"))?;
    let int = |key: &str| -> Result<usize, String> {
        doc.get(key)
            .and_then(JsonValue::as_f64)
            .map(|v| v as usize)
            .ok_or_else(|| format!("probe {addr}: missing {key:?}"))
    };
    let labels = doc
        .get("labels")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("probe {addr}: missing \"labels\""))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("probe {addr}: non-string label"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WorkerShape {
        rows: int("rows")?,
        cols: int("cols")?,
        labels,
    })
}

/// Why one shard dispatch gave up.
enum DispatchFailure {
    /// Transport/timeout/validation failures exhausted the retry
    /// schedule: the worker is presumed dead.
    WorkerDead(String),
    /// The worker answered authoritatively that the scan cannot
    /// succeed (quarantine budget blown): retrying or reassigning
    /// cannot help.
    Fatal(RatioRuleError),
}

/// One validated shard result plus accounting from its dispatch.
struct DispatchReport {
    shard: usize,
    worker: usize,
    retries: usize,
    outcome: Result<ScanCheckpoint, DispatchFailure>,
}

fn scan_body(
    range: (usize, usize),
    policy: &ScanPolicy,
    resume: Option<&ScanCheckpoint>,
) -> String {
    let mut fields = vec![
        (
            "version".into(),
            JsonValue::Num(SHARD_PROTOCOL_VERSION as f64),
        ),
        ("start".into(), JsonValue::Num(range.0 as f64)),
        ("end".into(), JsonValue::Num(range.1 as f64)),
        ("policy".into(), policy_to_json(policy)),
    ];
    if let Some(cp) = resume {
        fields.push(("resume".into(), cp.to_json_value()));
    }
    JsonValue::Obj(fields).write(true)
}

/// Validates a worker's 200 body at the trust boundary. Everything a
/// hostile or corrupted payload could smuggle is checked explicitly in
/// release mode: protocol version, assignment echo, checkpoint shape
/// (via `from_parts`' own validation), range completeness, finiteness,
/// and non-negative raw second moments on the diagonal.
fn validate_payload(
    body: &str,
    range: (usize, usize),
    m: usize,
) -> Result<ScanCheckpoint, String> {
    let doc = obs::json::parse(body).map_err(|e| format!("payload: {e}"))?;
    let int = |key: &str| -> Result<usize, String> {
        doc.get(key)
            .and_then(JsonValue::as_f64)
            .map(|v| v as usize)
            .ok_or_else(|| format!("payload: missing {key:?}"))
    };
    if int("version")? != SHARD_PROTOCOL_VERSION {
        return Err("payload: unsupported protocol version".into());
    }
    if (int("start")?, int("end")?) != range {
        return Err(format!(
            "payload: answers range [{}, {}) but [{}, {}) was assigned",
            int("start")?,
            int("end")?,
            range.0,
            range.1
        ));
    }
    let cp_value = doc
        .get("checkpoint")
        .ok_or_else(|| "payload: missing \"checkpoint\"".to_string())?;
    let cp = ScanCheckpoint::from_json_value(cp_value).map_err(|e| e.to_string())?;
    if cp.m != m {
        return Err(format!("payload: {} columns, expected {m}", cp.m));
    }
    if cp.rows_consumed != range.1 {
        return Err(format!(
            "payload: consumed {} rows, shard ends at {}",
            cp.rows_consumed, range.1
        ));
    }
    if cp.n > range.1 - range.0 {
        return Err(format!(
            "payload: absorbed {} rows from a {}-row shard",
            cp.n,
            range.1 - range.0
        ));
    }
    if !cp.col_sums.iter().all(|v| v.is_finite())
        || !cp.raw_upper.iter().all(|v| v.is_finite())
    {
        return Err("payload: non-finite accumulator parts".into());
    }
    for j in 0..m {
        // Diagonal of the packed upper triangle: sum of squares, which
        // no honest scan can make negative.
        let diag = cp.raw_upper[(j * (2 * m - j + 1)) / 2];
        if diag < 0.0 {
            return Err(format!("payload: negative raw second moment at column {j}"));
        }
    }
    Ok(cp)
}

/// Runs one shard assignment against one worker, retrying under the
/// backoff schedule. Returns the validated checkpoint or the reason
/// the worker is presumed dead / the run must abort.
#[allow(clippy::too_many_arguments)]
fn dispatch_shard(
    cfg: &CoordinatorConfig,
    shard: usize,
    worker: usize,
    addr: SocketAddr,
    range: (usize, usize),
    m: usize,
    resume: Option<&ScanCheckpoint>,
) -> DispatchReport {
    let _span = obs::Span::enter(names::SPAN_COORD_SHARD_REQUEST);
    obs::counter_add(names::COORD_SHARDS_DISPATCHED_TOTAL, 1);
    obs::flight_event(
        names::EVENT_COORD_SHARD_DISPATCHED,
        shard as u64,
        worker as u64,
        0.0,
    );
    let body = scan_body(range, &cfg.policy, resume);
    let attempts = cfg.backoff.max_attempts.max(1);
    let mut retries = 0usize;
    let mut last_err = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            // rrlint-allow: RR003 backoff sleep between retries, never results
            std::thread::sleep(cfg.backoff.delay_for(attempt - 1));
            retries += 1;
            obs::counter_add(names::COORD_SHARD_RETRIES_TOTAL, 1);
        }
        // rrlint-allow: RR003 wall clock feeds the RTT quantile only
        let t0 = std::time::Instant::now();
        let reply = client::request(
            addr,
            "POST",
            "/scan",
            Some(&body),
            cfg.deadline,
            cfg.connect_warmup,
        );
        match reply {
            Ok((200, reply_body)) => {
                obs::observe_quantile(
                    names::COORD_SHARD_RTT_US,
                    t0.elapsed().as_micros() as f64,
                );
                match validate_payload(&reply_body, range, m) {
                    Ok(cp) => {
                        return DispatchReport {
                            shard,
                            worker,
                            retries,
                            outcome: Ok(cp),
                        }
                    }
                    Err(msg) => {
                        obs::counter_add(names::COORD_PAYLOADS_REJECTED_TOTAL, 1);
                        obs::flight_event(
                            names::EVENT_COORD_PAYLOAD_REJECTED,
                            shard as u64,
                            worker as u64,
                            0.0,
                        );
                        last_err = msg;
                    }
                }
            }
            Ok((422, reply_body)) => {
                let detail = obs::json::parse(&reply_body)
                    .ok()
                    .and_then(|d| d.get("error").and_then(JsonValue::as_str).map(str::to_string))
                    .unwrap_or_else(|| "quarantine budget exhausted".into());
                return DispatchReport {
                    shard,
                    worker,
                    retries,
                    outcome: Err(DispatchFailure::Fatal(RatioRuleError::BudgetExhausted {
                        quarantined: 0,
                        scanned: range.1 - range.0,
                        limit: format!("shard [{}, {}): {detail}", range.0, range.1),
                    })),
                };
            }
            Ok((status, reply_body)) => {
                last_err = format!("HTTP {status}: {}", reply_body.chars().take(120).collect::<String>());
            }
            Err(e) => last_err = e.to_string(),
        }
    }
    DispatchReport {
        shard,
        worker,
        retries,
        outcome: Err(DispatchFailure::WorkerDead(last_err)),
    }
}

/// Contiguous row partition identical to the in-process parallel scan:
/// `shards.clamp(1, n)` chunks of `n.div_ceil(shards)` rows, empty
/// tails skipped.
#[must_use]
pub fn partition_rows(n: usize, shards: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let shards = shards.clamp(1, n);
    let chunk = n.div_ceil(shards);
    (0..shards)
        .filter_map(|t| {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            (lo < hi).then_some((lo, hi))
        })
        .collect()
}

struct ShardSlot {
    range: (usize, usize),
    payload: Option<ScanCheckpoint>,
    lost: bool,
    resumed: bool,
}

/// Runs the distributed mine: probe, partition, dispatch, supervise,
/// validate, merge. The returned accumulator is ready for
/// `RatioRuleMiner::finish`.
///
/// # Errors
///
/// - [`RatioRuleError::Invalid`] — no workers, no consensus on the
///   dataset shape, or every worker dead at boot.
/// - [`RatioRuleError::EmptyInput`] — the consensus dataset is empty,
///   or every shard was lost.
/// - [`RatioRuleError::BudgetExhausted`] — more than `max_lost_shards`
///   shards unrecoverable, or any worker's quarantine budget blew.
pub fn coordinate(cfg: &CoordinatorConfig) -> Result<DistributedOutcome, RatioRuleError> {
    let _span = obs::Span::enter(names::SPAN_COORDINATE);
    seed_coord_boot_families();
    if cfg.workers.is_empty() {
        return Err(invalid("mine-distributed needs at least one worker".into()));
    }

    // --- Boot probe: liveness + dataset-shape consensus. -------------
    let mut alive = vec![false; cfg.workers.len()];
    let mut shape: Option<WorkerShape> = None;
    let mut workers_lost = 0usize;
    for (w, &addr) in cfg.workers.iter().enumerate() {
        match probe_worker(addr, cfg.deadline, cfg.connect_warmup) {
            Ok(s) => {
                match &shape {
                    None => shape = Some(s),
                    Some(prev) if *prev == s => {}
                    Some(prev) => {
                        return Err(invalid(format!(
                            "workers disagree on the dataset: {addr} sees {} x {}, \
                             consensus was {} x {}",
                            s.rows, s.cols, prev.rows, prev.cols
                        )));
                    }
                }
                alive[w] = true;
            }
            Err(e) => {
                workers_lost += 1;
                obs::counter_add(names::COORD_WORKERS_LOST_TOTAL, 1);
                obs::flight_event(names::EVENT_COORD_WORKER_DEAD, w as u64, 0, 0.0);
                obs::gauge_set(
                    names::COORD_WORKERS_HEALTHY,
                    alive.iter().filter(|a| **a).count() as f64,
                );
                eprintln!("mine-distributed: worker {addr} failed its boot probe: {e}");
            }
        }
    }
    let shape = shape.ok_or_else(|| invalid("no live workers after the boot probe".into()))?;
    obs::gauge_set(
        names::COORD_WORKERS_HEALTHY,
        alive.iter().filter(|a| **a).count() as f64,
    );
    if shape.rows == 0 || shape.cols == 0 {
        return Err(RatioRuleError::EmptyInput);
    }

    // --- Partition exactly like covariance_sharded. -------------------
    let shard_count = cfg.shards.unwrap_or(cfg.workers.len()).max(1);
    let ranges = partition_rows(shape.rows, shard_count);
    let mut slots: Vec<ShardSlot> = ranges
        .iter()
        .map(|&range| ShardSlot {
            range,
            payload: None,
            lost: false,
            resumed: false,
        })
        .collect();

    // Initial assignment: round-robin over the workers alive at boot.
    let alive_now: Vec<usize> = (0..cfg.workers.len()).filter(|&w| alive[w]).collect();
    let mut assignment: Vec<usize> = (0..slots.len())
        .map(|i| alive_now[i % alive_now.len()])
        .collect();

    let mut retries = 0usize;
    let mut reassignments = 0usize;
    let mut checkpoint_resumes = 0usize;
    let mut duplicates_dropped = 0usize;
    let mut delivery_seq = 0u64;
    let mut reassign_cursor = 0usize;

    loop {
        let pending: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.payload.is_none() && !s.lost)
            .map(|(i, _)| i)
            .collect();
        if pending.is_empty() {
            break;
        }

        // Resume checkpoints are read on the dispatching thread's side
        // (main thread) so worker threads borrow immutably.
        let resumes: Vec<Option<ScanCheckpoint>> = pending
            .iter()
            .map(|&i| {
                if !slots[i].resumed {
                    return None;
                }
                let dir = cfg.checkpoint_dir.as_ref()?;
                let path = dir.join(checkpoint_file_name(slots[i].range.0, slots[i].range.1));
                let text = std::fs::read_to_string(path).ok()?;
                let cp = ScanCheckpoint::from_json(&text).ok()?;
                (cp.m == shape.cols
                    && cp.rows_consumed >= slots[i].range.0
                    && cp.rows_consumed <= slots[i].range.1)
                    .then_some(cp)
            })
            .collect();

        let reports: Vec<DispatchReport> = std::thread::scope(|scope| {
            let handles: Vec<_> = pending
                .iter()
                .zip(&resumes)
                .map(|(&i, resume)| {
                    let worker = assignment[i];
                    let addr = cfg.workers[worker];
                    let range = slots[i].range;
                    scope.spawn(move || {
                        dispatch_shard(cfg, i, worker, addr, range, shape.cols, resume.as_ref())
                    })
                })
                .collect();
            handles
                .into_iter()
                .zip(&pending)
                .map(|(h, &i)| {
                    // A panicked dispatch thread reads as a dead worker:
                    // the shard re-enters the supervision ladder instead
                    // of aborting the whole coordinator.
                    h.join().unwrap_or_else(|_| DispatchReport {
                        shard: i,
                        worker: assignment[i],
                        retries: 0,
                        outcome: Err(DispatchFailure::WorkerDead(
                            "dispatch thread panicked".into(),
                        )),
                    })
                })
                .collect()
        });

        let mut failed: Vec<usize> = Vec::new();
        for report in reports {
            retries += report.retries;
            match report.outcome {
                Ok(cp) => {
                    if resumes
                        .get(pending.iter().position(|&p| p == report.shard).unwrap_or(0))
                        .is_some_and(Option::is_some)
                    {
                        checkpoint_resumes += 1;
                    }
                    // At-least-once delivery: a chaos duplicate replays
                    // the payload; the slot guard must drop the replay.
                    let replay = cfg.chaos.draw(delivery_seq) == Some(Fault::Duplicate);
                    delivery_seq += 1;
                    let deliveries = if replay { 2 } else { 1 };
                    for _ in 0..deliveries {
                        let slot = &mut slots[report.shard];
                        if slot.payload.is_some() {
                            duplicates_dropped += 1;
                            obs::counter_add(names::COORD_DUPLICATES_DROPPED_TOTAL, 1);
                            obs::flight_event(
                                names::EVENT_COORD_DUPLICATE_DROPPED,
                                report.shard as u64,
                                0,
                                0.0,
                            );
                        } else {
                            slot.payload = Some(cp.clone());
                            obs::flight_event(
                                names::EVENT_COORD_SHARD_COMPLETED,
                                report.shard as u64,
                                slot.range.1 as u64,
                                0.0,
                            );
                        }
                    }
                }
                Err(DispatchFailure::Fatal(e)) => return Err(e),
                Err(DispatchFailure::WorkerDead(msg)) => {
                    if alive[report.worker] {
                        alive[report.worker] = false;
                        workers_lost += 1;
                        obs::counter_add(names::COORD_WORKERS_LOST_TOTAL, 1);
                        obs::flight_event(
                            names::EVENT_COORD_WORKER_DEAD,
                            report.worker as u64,
                            report.retries as u64,
                            0.0,
                        );
                        obs::gauge_set(
                            names::COORD_WORKERS_HEALTHY,
                            alive.iter().filter(|a| **a).count() as f64,
                        );
                        eprintln!(
                            "mine-distributed: worker {} declared dead on shard {}: {msg}",
                            cfg.workers[report.worker], report.shard
                        );
                    }
                    failed.push(report.shard);
                }
            }
        }

        // --- Reassign failed shards to probed survivors. --------------
        for shard in failed {
            let mut target = None;
            for _ in 0..cfg.workers.len() {
                let w = reassign_cursor % cfg.workers.len();
                reassign_cursor += 1;
                if !alive[w] {
                    continue;
                }
                // Probe before trusting: the worker may have died since
                // we last spoke to it.
                if probe_worker(cfg.workers[w], cfg.deadline, Duration::ZERO).is_ok() {
                    target = Some(w);
                    break;
                }
                alive[w] = false;
                workers_lost += 1;
                obs::counter_add(names::COORD_WORKERS_LOST_TOTAL, 1);
                obs::flight_event(names::EVENT_COORD_WORKER_DEAD, w as u64, 0, 0.0);
                obs::gauge_set(
                    names::COORD_WORKERS_HEALTHY,
                    alive.iter().filter(|a| **a).count() as f64,
                );
            }
            match target {
                Some(w) if reassignments < cfg.reassign_budget => {
                    reassignments += 1;
                    assignment[shard] = w;
                    slots[shard].resumed = true;
                    obs::counter_add(names::COORD_SHARDS_REASSIGNED_TOTAL, 1);
                    let has_checkpoint = cfg
                        .checkpoint_dir
                        .as_ref()
                        .is_some_and(|d| {
                            d.join(checkpoint_file_name(
                                slots[shard].range.0,
                                slots[shard].range.1,
                            ))
                            .exists()
                        });
                    obs::flight_event(
                        names::EVENT_COORD_SHARD_REASSIGNED,
                        shard as u64,
                        w as u64,
                        if has_checkpoint { 1.0 } else { 0.0 },
                    );
                }
                _ => {
                    slots[shard].lost = true;
                    obs::counter_add(names::COORD_SHARDS_LOST_TOTAL, 1);
                }
            }
        }
    }

    // --- Merge at the trust boundary. ---------------------------------
    let lost: Vec<(usize, usize)> = slots
        .iter()
        .filter(|s| s.lost)
        .map(|s| s.range)
        .collect();
    let merged_count = slots.iter().filter(|s| s.payload.is_some()).count();
    if lost.len() > cfg.max_lost_shards {
        return Err(RatioRuleError::BudgetExhausted {
            quarantined: lost.len(),
            scanned: merged_count,
            limit: format!(
                "reassignment budget spent with {} shard(s) unrecoverable \
                 (max_lost_shards = {})",
                lost.len(),
                cfg.max_lost_shards
            ),
        });
    }
    let mut rows_quarantined = 0usize;
    let mut by_reason = (0usize, 0usize, 0usize);
    let mut accs = Vec::with_capacity(merged_count);
    for slot in &slots {
        if let Some(cp) = &slot.payload {
            rows_quarantined += cp.rows_quarantined;
            by_reason.0 += cp.by_reason.0;
            by_reason.1 += cp.by_reason.1;
            by_reason.2 += cp.by_reason.2;
            accs.push(cp.accumulator()?);
        }
    }
    if !lost.is_empty() {
        obs::flight_event(
            names::EVENT_COORD_PARTIAL_MERGE,
            merged_count as u64,
            lost.len() as u64,
            0.0,
        );
    }
    let acc = tree_merge(accs)?;
    obs::gauge_set(names::COORD_SHARDS_MERGED, merged_count as f64);

    Ok(DistributedOutcome {
        acc,
        labels: shape.labels,
        n_rows: shape.rows,
        m: shape.cols,
        shards: slots.len(),
        shards_merged: merged_count,
        shards_lost: lost.len(),
        lost_ranges: lost,
        rows_quarantined,
        by_reason,
        workers_lost,
        retries,
        reassignments,
        checkpoint_resumes,
        duplicates_dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_matches_the_parallel_scan_shape() {
        // div_ceil chunks, empty tails skipped — the covariance_sharded
        // contract the bit-identity argument rests on.
        assert_eq!(partition_rows(10, 4), vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
        assert_eq!(partition_rows(4, 8), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(partition_rows(9, 2), vec![(0, 5), (5, 9)]);
        assert_eq!(partition_rows(0, 4), Vec::<(usize, usize)>::new());
        assert_eq!(partition_rows(5, 1), vec![(0, 5)]);
    }

    #[test]
    fn payload_validation_rejects_tampering() {
        let acc = {
            let mut a = CovarianceAccumulator::new(2);
            a.push_row(&[1.0, 2.0]).unwrap();
            a.push_row(&[3.0, 4.0]).unwrap();
            a
        };
        let mut cp = ScanCheckpoint::from_accumulator(&acc);
        cp.rows_consumed = 2; // shard [0, 2)
        let ok_body = JsonValue::Obj(vec![
            ("version".into(), JsonValue::Num(1.0)),
            ("start".into(), JsonValue::Num(0.0)),
            ("end".into(), JsonValue::Num(2.0)),
            ("checkpoint".into(), cp.to_json_value()),
        ])
        .write(true);
        assert!(validate_payload(&ok_body, (0, 2), 2).is_ok());
        // Wrong range echo.
        assert!(validate_payload(&ok_body, (0, 3), 2).is_err());
        // Wrong width.
        assert!(validate_payload(&ok_body, (0, 2), 3).is_err());
        // Non-finite smuggling: an infinite sum serializes as JSON null,
        // which must fail the checkpoint parse at the trust boundary.
        let mut smuggled = cp.clone();
        smuggled.col_sums[1] = f64::INFINITY;
        let evil = JsonValue::Obj(vec![
            ("version".into(), JsonValue::Num(1.0)),
            ("start".into(), JsonValue::Num(0.0)),
            ("end".into(), JsonValue::Num(2.0)),
            ("checkpoint".into(), smuggled.to_json_value()),
        ])
        .write(true);
        assert!(validate_payload(&evil, (0, 2), 2).is_err());
        // Corrupt byte ≈ the chaos fault.
        let mut corrupted = ok_body.clone().into_bytes();
        let mid = corrupted.len() / 2;
        corrupted[mid] = b'!';
        assert!(validate_payload(&String::from_utf8_lossy(&corrupted), (0, 2), 2).is_err());
    }

    #[test]
    fn outcome_summary_reports_losses() {
        let acc = CovarianceAccumulator::new(2);
        let out = DistributedOutcome {
            acc,
            labels: vec!["a".into(), "b".into()],
            n_rows: 100,
            m: 2,
            shards: 4,
            shards_merged: 3,
            shards_lost: 1,
            lost_ranges: vec![(75, 100)],
            rows_quarantined: 2,
            by_reason: (2, 0, 0),
            workers_lost: 1,
            retries: 3,
            reassignments: 1,
            checkpoint_resumes: 1,
            duplicates_dropped: 0,
        };
        assert!(out.is_degraded());
        let s = out.summary();
        assert!(s.contains("3/4 shards merged"), "{s}");
        assert!(s.contains("rows [75, 100)"), "{s}");
        assert!(s.contains("2 row(s) quarantined"), "{s}");
    }
}
