//! Batched hole-filling prediction server.
//!
//! The paper's headline application — reconstructing hidden values of a
//! partially known row via Ratio-Rule hyperplane intersection
//! (Sec. 4.4) — as an online service. A std-only HTTP/1.1 front end
//! (hand-rolled parsing in [`protocol`], matching the obs/analyzer
//! zero-dependency precedent) feeds a batching core ([`queue`]) that
//! coalesces concurrent `/predict` rows sharing a hole pattern into one
//! factored solve against the PR-1 solver cache. Batched and single-shot
//! answers are bit-for-bit identical: both end in the same
//! `PatternSolver::fill`.
//!
//! Endpoints ([`server`]):
//!
//! | Endpoint        | Meaning                                            |
//! |-----------------|----------------------------------------------------|
//! | `POST /predict` | fill holes in rows (`{"rows": [[1.5, null, "?"]]}`)|
//! | `POST /whatif`  | pin attributes, forecast the rest (Scenario sweep) |
//! | `GET /rules`    | the served model document                          |
//! | `GET /healthz`  | liveness + model shape + queue depth               |
//! | `GET /metrics`  | Prometheus text via the obs exporter               |
//! | `POST /models`  | publish a `model_json` artifact into the registry  |
//! | `GET /models`   | list retained versions + shadow counters           |
//!
//! Connections are persistent (PR 10): the protocol layer parses
//! pipelined HTTP/1.1 requests incrementally out of a reused buffer,
//! answers `Connection: keep-alive` until the client asks to close, a
//! per-connection request cap is hit, the idle timeout fires, or a
//! drain begins. Models live in the hot-swap [`registry`]: named,
//! versioned, atomically swapped snapshots readers never block on —
//! with per-request version pinning (`x-model-version`) and shadow
//! (canary) routing that replays answered rows off the response path
//! and counts `f64::to_bits` divergences.
//!
//! Capacity control is explicit: a bounded batch queue answers `429` +
//! `Retry-After` when full, per-job deadlines expire stale work with
//! `504`, and shutdown drains everything already accepted. Degraded
//! models (the resilience ladder's col-avgs floor) still serve, with a
//! `DEGRADED: true` response header. All metric and span names live in
//! `obs::names`.
//!
//! Observability (PR 7): every request runs under its own
//! [`obs::TraceContext`] whose span tree (request → batch → shared
//! pattern solve) is served back on `GET /debug/trace?id=<hex>` as
//! Chrome trace-event JSON; per-endpoint latency, queue wait, and solve
//! time feed log-bucketed quantile histograms on `/metrics`; and
//! structured shed/expiry/coalesce events land in the flight recorder
//! (`GET /debug/flightrecorder`). The [`loadgen`] module is the
//! self-contained load generator behind `ratio-rules serve-bench`.
//!
//! Distributed mining (PR 8) rides the same protocol layer: a
//! [`shard`] worker scans an assigned row range and serves its
//! accumulator as an f64-exact checkpoint, and the [`coordinator`]
//! partitions, dispatches, supervises (deadlines, backoff retries,
//! health probes, checkpoint-resumed reassignment), validates every
//! payload at the trust boundary, and tree-merges the survivors into a
//! model bit-identical to a single-process `mine --shards W`. The
//! shared HTTP client — one-shot requests (warm-up retries,
//! `Content-Length` enforcement) plus the buffered [`client::ResponseReader`]
//! pipelining clients need once the server answers a burst in one
//! write — lives in [`client`].

#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod loadgen;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod server;
pub mod shard;

pub use coordinator::{coordinate, CoordinatorConfig, DistributedOutcome};
pub use loadgen::{run_load, LoadReport, LoadgenConfig};
pub use queue::{BatchConfig, Batcher, PredictOutcome, Prediction, ServeModel, SubmitError};
pub use registry::{ModelHandle, ModelRegistry, RegistrySnapshot};
pub use server::{Server, ServerConfig};
pub use shard::{ChaosPlan, ShardConfig, ShardWorker};
