//! Self-contained load generator for the prediction server.
//!
//! `ratio-rules serve-bench` needs sustained-throughput and
//! tail-latency numbers without external tooling (`wrk`, `hey`), so the
//! client lives here: `concurrency` threads each fire `POST /predict`
//! requests over fresh TCP connections (the protocol is one-shot), time
//! every request end to end, and — crucially — check each returned row
//! against a single-shot [`RuleSetPredictor`] fill. Batched serving is
//! only a win if it never changes an answer, so the oracle comparison
//! is *bit-identical*: the server's JSON writer emits shortest
//! round-trip floats and the comparison is on `f64::to_bits`.
//!
//! Quantiles in the report are exact (computed from the full sorted
//! latency sample), unlike the server-side log-bucketed histograms —
//! which makes the report a calibration check for those as well.
//!
//! This crate is a clock crate (`rrlint` RR003): wall-clock reads are
//! deliberate and confined here and in the batcher.

use std::net::SocketAddr;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use obs::json::JsonValue;
use ratio_rules::predictor::{Predictor, RuleSetPredictor};
use ratio_rules::rules::RuleSet;

/// Load-generator knobs (the `serve-bench` subcommand maps flags here).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total `POST /predict` requests to send.
    pub requests: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Rows per request body.
    pub rows_per_request: usize,
    /// Per-request socket timeout.
    pub timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 200,
            concurrency: 4,
            rows_per_request: 4,
            timeout: Duration::from_secs(10),
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: usize,
    /// Requests answered 200 with a parseable body.
    pub ok: usize,
    /// Requests that failed (transport error or non-200 status).
    pub errors: usize,
    /// Wall time of the whole run, seconds.
    pub wall_s: f64,
    /// Sustained request throughput over the run.
    pub req_per_s: f64,
    /// Exact latency quantiles over successful requests, microseconds.
    pub p50_us: f64,
    /// 90th percentile latency, microseconds.
    pub p90_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile latency, microseconds.
    pub p999_us: f64,
    /// Slowest successful request, microseconds.
    pub max_us: f64,
    /// Rows compared against the single-shot oracle.
    pub rows_checked: usize,
    /// Rows whose served bits differed from the oracle (must be 0).
    pub mismatches: usize,
}

#[derive(Default)]
struct ThreadStats {
    latencies_us: Vec<f64>,
    ok: usize,
    errors: usize,
    rows_checked: usize,
    mismatches: usize,
}

/// Deterministic workload row `r` of request `req`: a clean multiple of
/// a fixed profile with one hole whose position cycles through the
/// columns, so the batcher sees a small set of recurring hole patterns
/// to coalesce (the realistic case the solver cache is built for).
fn gen_row(req: usize, r: usize, m: usize) -> Vec<Option<f64>> {
    let base = ((req * 7 + r * 3) % 23 + 1) as f64;
    let hole = (req + r) % m;
    (0..m)
        .map(|j| {
            if j == hole {
                None
            } else {
                Some(base * (m - j) as f64 + j as f64 * 0.25)
            }
        })
        .collect()
}

fn body_for(req: usize, rows_per_request: usize, m: usize) -> String {
    let rows: Vec<JsonValue> = (0..rows_per_request)
        .map(|r| {
            JsonValue::Arr(
                gen_row(req, r, m)
                    .into_iter()
                    .map(|c| c.map_or(JsonValue::Null, JsonValue::Num))
                    .collect(),
            )
        })
        .collect();
    JsonValue::Obj(vec![("rows".into(), JsonValue::Arr(rows))]).write(false)
}

/// How long a loadgen thread keeps retrying `ConnectionRefused` before
/// counting the request as an error. A `serve-bench` run spawns its
/// server and client in quick succession; without this grace window the
/// first requests race the server's bind and fail the run outright.
const CONNECT_WARMUP: Duration = Duration::from_millis(1500);

fn post_predict(
    addr: SocketAddr,
    body: &str,
    timeout: Duration,
) -> std::io::Result<(u16, String)> {
    crate::client::request(addr, "POST", "/predict", Some(body), timeout, CONNECT_WARMUP)
}

/// Compares one served row against the oracle's single-shot fill,
/// bit for bit. Returns `(rows_checked, mismatches)` deltas.
fn check_row(
    served: &JsonValue,
    oracle: &RuleSetPredictor,
    req: usize,
    r: usize,
    m: usize,
) -> (usize, usize) {
    let got = match served.get("values").and_then(JsonValue::as_arr) {
        Some(vs) => vs,
        None => return (1, 1), // served an error for a valid row
    };
    let holed = dataset::holes::HoledRow::new(gen_row(req, r, m));
    let want = match oracle.fill(&holed) {
        Ok(w) => w,
        Err(_) => return (0, 0), // row the oracle cannot fill; skip
    };
    if got.len() != want.len() {
        return (1, 1);
    }
    let identical = got
        .iter()
        .zip(&want)
        .all(|(g, w)| g.as_f64().map(f64::to_bits) == Some(w.to_bits()));
    (1, usize::from(!identical))
}

/// Exact quantile of an already-sorted sample (nearest-rank).
fn pct(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// Drives a load run against a listening server and reports sustained
/// throughput, exact tail latencies, and oracle agreement.
///
/// `n_attributes` is the served model's row width `M`; `oracle` should
/// be the same rule set the server is serving — pass `None` to skip the
/// bit-identity check (e.g. against a degraded col-avgs server). Each
/// thread builds its own [`RuleSetPredictor`] so oracle solves never
/// contend.
#[must_use]
pub fn run_load(
    addr: SocketAddr,
    n_attributes: usize,
    oracle: Option<&RuleSet>,
    cfg: &LoadgenConfig,
) -> LoadReport {
    let m = n_attributes.max(1);
    let concurrency = cfg.concurrency.max(1);
    let stats: Mutex<Vec<ThreadStats>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..concurrency {
            let stats = &stats;
            scope.spawn(move || {
                let thread_oracle = oracle.map(|rs| RuleSetPredictor::new(rs.clone()));
                let mut local = ThreadStats::default();
                let mut req = t;
                while req < cfg.requests {
                    let body = body_for(req, cfg.rows_per_request, m);
                    let req_t0 = Instant::now();
                    match post_predict(addr, &body, cfg.timeout) {
                        Ok((200, resp_body)) => {
                            local
                                .latencies_us
                                .push(req_t0.elapsed().as_micros() as f64);
                            local.ok += 1;
                            if let Some(orc) = &thread_oracle {
                                if let Ok(doc) = obs::json::parse(&resp_body) {
                                    let rows =
                                        doc.get("rows").and_then(JsonValue::as_arr);
                                    for (r, served) in
                                        rows.unwrap_or(&[]).iter().enumerate()
                                    {
                                        let (c, x) = check_row(served, orc, req, r, m);
                                        local.rows_checked += c;
                                        local.mismatches += x;
                                    }
                                }
                            }
                        }
                        Ok((_, _)) | Err(_) => local.errors += 1,
                    }
                    req += concurrency;
                }
                stats
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(local);
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let all = stats.into_inner().unwrap_or_else(PoisonError::into_inner);
    let mut latencies: Vec<f64> = all.iter().flat_map(|s| s.latencies_us.clone()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let ok = all.iter().map(|s| s.ok).sum();
    LoadReport {
        requests: cfg.requests,
        ok,
        errors: all.iter().map(|s| s.errors).sum(),
        wall_s,
        req_per_s: if wall_s > 0.0 { ok as f64 / wall_s } else { 0.0 },
        p50_us: pct(&latencies, 0.50),
        p90_us: pct(&latencies, 0.90),
        p99_us: pct(&latencies, 0.99),
        p999_us: pct(&latencies, 0.999),
        max_us: latencies.last().copied().unwrap_or(0.0),
        rows_checked: all.iter().map(|s| s.rows_checked).sum(),
        mismatches: all.iter().map(|s| s.mismatches).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_rows_are_deterministic_with_one_hole() {
        let a = gen_row(3, 1, 4);
        let b = gen_row(3, 1, 4);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|c| c.is_none()).count(), 1);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn pct_is_nearest_rank_on_the_sorted_sample() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(pct(&s, 0.50), 5.0);
        assert_eq!(pct(&s, 0.90), 9.0);
        assert_eq!(pct(&s, 0.999), 10.0);
        assert_eq!(pct(&[], 0.5), 0.0);
    }

    #[test]
    fn body_encodes_holes_as_null() {
        let body = body_for(0, 2, 3);
        let doc = obs::json::parse(&body).expect("valid JSON");
        let rows = doc.get("rows").and_then(JsonValue::as_arr).expect("rows");
        assert_eq!(rows.len(), 2);
        let first = rows[0].as_arr().expect("row array");
        assert_eq!(first.len(), 3);
        assert!(first.iter().any(|c| matches!(c, JsonValue::Null)));
    }
}
