//! Self-contained load generator for the prediction server.
//!
//! `ratio-rules serve-bench` needs sustained-throughput and
//! tail-latency numbers without external tooling (`wrk`, `hey`), so the
//! client lives here: `concurrency` threads each fire `POST /predict`
//! requests — over one persistent keep-alive connection per thread by
//! default (pipelining up to [`LoadgenConfig::pipeline_depth`] requests
//! back-to-back before reading the in-order responses), or a fresh TCP
//! connection per request in cold mode ([`LoadgenConfig::keep_alive`]
//! off) so the two paths can be compared on the same workload — time
//! every request end to end, and — crucially — check each returned row
//! against a single-shot [`RuleSetPredictor`] fill. Batched serving is
//! only a win if it never changes an answer, so the oracle comparison
//! is *bit-identical*: the server's JSON writer emits shortest
//! round-trip floats and the comparison is on `f64::to_bits`.
//!
//! Quantiles in the report are exact (computed from the full sorted
//! latency sample), unlike the server-side log-bucketed histograms —
//! which makes the report a calibration check for those as well.
//!
//! This crate is a clock crate (`rrlint` RR003): wall-clock reads are
//! deliberate and confined here and in the batcher.

use std::net::SocketAddr;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use obs::json::JsonValue;
use ratio_rules::predictor::{Predictor, RuleSetPredictor};
use ratio_rules::rules::RuleSet;

/// Load-generator knobs (the `serve-bench` subcommand maps flags here).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Total `POST /predict` requests to send.
    pub requests: usize,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Rows per request body.
    pub rows_per_request: usize,
    /// Per-request socket timeout.
    pub timeout: Duration,
    /// Reuse one connection per thread (the production path). Off =
    /// cold mode: a fresh TCP connection per request, for the
    /// keep-alive-vs-cold comparison `BENCH_serve.json` records.
    pub keep_alive: bool,
    /// Requests written back-to-back on a persistent connection before
    /// the client starts reading the in-order responses (HTTP
    /// pipelining). 1 = plain sequential round-trips; ignored in cold
    /// mode. Each burst goes out as one write; per-request latency runs
    /// from that write to the request's own response, so pipelined
    /// quantiles include the queueing a real pipelining client
    /// observes.
    pub pipeline_depth: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 200,
            concurrency: 4,
            rows_per_request: 4,
            timeout: Duration::from_secs(10),
            keep_alive: true,
            pipeline_depth: 8,
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests attempted.
    pub requests: usize,
    /// Requests answered 200 with a parseable body.
    pub ok: usize,
    /// Requests that failed (transport error or non-200 status).
    pub errors: usize,
    /// Wall time of the whole run, seconds.
    pub wall_s: f64,
    /// Sustained request throughput over the run.
    pub req_per_s: f64,
    /// Exact latency quantiles over successful requests, microseconds.
    pub p50_us: f64,
    /// 90th percentile latency, microseconds.
    pub p90_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile latency, microseconds.
    pub p999_us: f64,
    /// Slowest successful request, microseconds.
    pub max_us: f64,
    /// Rows compared against the single-shot oracle.
    pub rows_checked: usize,
    /// Rows whose served bits differed from the oracle (must be 0).
    pub mismatches: usize,
    /// TCP connections the clients opened over the whole run
    /// (`concurrency` in keep-alive mode, ~`requests` in cold mode).
    pub connections: usize,
}

#[derive(Default)]
struct ThreadStats {
    latencies_us: Vec<f64>,
    ok: usize,
    errors: usize,
    rows_checked: usize,
    mismatches: usize,
    connections: usize,
}

/// Deterministic workload row `r` of request `req`: a clean multiple of
/// a fixed profile with one hole whose position cycles through the
/// columns, so the batcher sees a small set of recurring hole patterns
/// to coalesce (the realistic case the solver cache is built for).
fn gen_row(req: usize, r: usize, m: usize) -> Vec<Option<f64>> {
    let base = ((req * 7 + r * 3) % 23 + 1) as f64;
    let hole = (req + r) % m;
    (0..m)
        .map(|j| {
            if j == hole {
                None
            } else {
                Some(base * (m - j) as f64 + j as f64 * 0.25)
            }
        })
        .collect()
}

fn body_for(req: usize, rows_per_request: usize, m: usize) -> String {
    let rows: Vec<JsonValue> = (0..rows_per_request)
        .map(|r| {
            JsonValue::Arr(
                gen_row(req, r, m)
                    .into_iter()
                    .map(|c| c.map_or(JsonValue::Null, JsonValue::Num))
                    .collect(),
            )
        })
        .collect();
    JsonValue::Obj(vec![("rows".into(), JsonValue::Arr(rows))]).write(false)
}

/// How long a loadgen thread keeps retrying `ConnectionRefused` before
/// counting the request as an error. A `serve-bench` run spawns its
/// server and client in quick succession; without this grace window the
/// first requests race the server's bind and fail the run outright.
const CONNECT_WARMUP: Duration = Duration::from_millis(1500);

/// Per-thread HTTP client: one persistent connection in keep-alive mode
/// (re-opened when the server closes it), a fresh connection per
/// request in cold mode.
struct BenchClient {
    addr: SocketAddr,
    timeout: Duration,
    keep_alive: bool,
    conn: Option<std::net::TcpStream>,
    /// Buffered response reader tied to `conn`: the server answers a
    /// pipelined burst as one write, so one `recv` routinely carries
    /// several responses and the surplus must survive between reads.
    reader: crate::client::ResponseReader,
    connections: usize,
}

impl BenchClient {
    fn new(addr: SocketAddr, timeout: Duration, keep_alive: bool) -> BenchClient {
        BenchClient {
            addr,
            timeout,
            keep_alive,
            conn: None,
            reader: crate::client::ResponseReader::new(),
            connections: 0,
        }
    }

    /// Drops the persistent connection and any read-ahead bytes that
    /// belonged to it.
    fn drop_conn(&mut self) {
        self.conn = None;
        self.reader.reset();
    }

    fn connect(&mut self) -> std::io::Result<std::net::TcpStream> {
        self.connections += 1;
        let s = crate::client::connect_warm(self.addr, self.timeout, CONNECT_WARMUP)?;
        s.set_read_timeout(Some(self.timeout))?;
        s.set_write_timeout(Some(self.timeout))?;
        Ok(s)
    }

    fn post_predict(&mut self, body: &str) -> std::io::Result<(u16, String)> {
        if !self.keep_alive {
            let mut s = self.connect()?;
            crate::client::write_request(&mut s, "POST", "/predict", Some(body), true)?;
            let (status, text, _close) = crate::client::read_response(&mut s)?;
            return Ok((status, text));
        }
        // One reconnect attempt absorbs a server-side close (idle
        // timeout, per-connection request cap) racing our write.
        let mut last_err =
            std::io::Error::new(std::io::ErrorKind::NotConnected, "no attempt made");
        for attempt in 0..2 {
            if self.conn.is_none() {
                self.conn = Some(self.connect()?);
            }
            let Some(stream) = self.conn.as_mut() else {
                continue;
            };
            let reader = &mut self.reader;
            let result =
                crate::client::write_request(stream, "POST", "/predict", Some(body), false)
                    .and_then(|()| reader.next_response(stream));
            match result {
                Ok((status, text, close)) => {
                    if close {
                        self.drop_conn();
                    }
                    return Ok((status, text));
                }
                Err(e) => {
                    self.drop_conn();
                    last_err = e;
                    if attempt == 1 {
                        break;
                    }
                }
            }
        }
        Err(last_err)
    }

    /// Writes `bodies` back-to-back on the persistent connection (HTTP
    /// pipelining), then reads the responses in order. Returns the
    /// `(status, body, latency_us)` triples of the answered requests
    /// plus the error that cut the burst short, if any. A server-side
    /// close mid-burst (request cap, idle timeout) is absorbed by
    /// reconnecting once and resending the unanswered tail.
    fn pipeline_predict(
        &mut self,
        bodies: &[String],
    ) -> (Vec<(u16, String, f64)>, Option<std::io::Error>) {
        let mut out: Vec<(u16, String, f64)> = Vec::with_capacity(bodies.len());
        let mut answered = 0usize;
        for attempt in 0..2 {
            if self.conn.is_none() {
                match self.connect() {
                    Ok(s) => self.conn = Some(s),
                    Err(e) => return (out, Some(e)),
                }
            }
            let Some(stream) = self.conn.as_mut() else {
                continue;
            };
            let reader = &mut self.reader;
            let pending = &bodies[answered..];
            let burst = (|| {
                // The whole burst goes out as ONE write: on loopback it
                // lands as one segment, so the server's read-ahead
                // coalescing sees every request of the burst at once and
                // batches all their rows under a single batch window.
                let mut wire = String::with_capacity(
                    pending.iter().map(|b| b.len() + 160).sum(),
                );
                for body in pending {
                    wire.push_str(&crate::client::raw_request(
                        "POST", "/predict", Some(body), false,
                    ));
                }
                let sent = Instant::now();
                std::io::Write::write_all(stream, wire.as_bytes())?;
                std::io::Write::flush(stream)?;
                let mut got = Vec::new();
                let mut closed = false;
                for _ in pending {
                    let (status, text, close) = reader.next_response(stream)?;
                    // Latency runs from the burst write to this
                    // request's own response — the queueing a pipelining
                    // client actually observes.
                    got.push((status, text, sent.elapsed().as_micros() as f64));
                    if close {
                        // The server discards pipelined read-ahead
                        // after a close; the tail must be resent.
                        closed = true;
                        break;
                    }
                }
                Ok::<_, std::io::Error>((got, closed))
            })();
            match burst {
                Ok((got, closed)) => {
                    answered += got.len();
                    out.extend(got);
                    if closed {
                        self.drop_conn();
                    }
                    if answered == bodies.len() {
                        return (out, None);
                    }
                    if attempt == 1 {
                        return (
                            out,
                            Some(std::io::Error::other(
                                "pipelined burst still unanswered after a reconnect",
                            )),
                        );
                    }
                }
                Err(e) => {
                    self.drop_conn();
                    if attempt == 1 {
                        return (out, Some(e));
                    }
                }
            }
        }
        (out, None)
    }
}

/// Compares one served row against the oracle's single-shot fill,
/// bit for bit. Returns `(rows_checked, mismatches)` deltas.
fn check_row(
    served: &JsonValue,
    oracle: &RuleSetPredictor,
    req: usize,
    r: usize,
    m: usize,
) -> (usize, usize) {
    let got = match served.get("values").and_then(JsonValue::as_arr) {
        Some(vs) => vs,
        None => return (1, 1), // served an error for a valid row
    };
    let holed = dataset::holes::HoledRow::new(gen_row(req, r, m));
    let want = match oracle.fill(&holed) {
        Ok(w) => w,
        Err(_) => return (0, 0), // row the oracle cannot fill; skip
    };
    if got.len() != want.len() {
        return (1, 1);
    }
    let identical = got
        .iter()
        .zip(&want)
        .all(|(g, w)| g.as_f64().map(f64::to_bits) == Some(w.to_bits()));
    (1, usize::from(!identical))
}

/// Exact quantile of an already-sorted sample (nearest-rank).
fn pct(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

/// Drives a load run against a listening server and reports sustained
/// throughput, exact tail latencies, and oracle agreement.
///
/// `n_attributes` is the served model's row width `M`; `oracle` should
/// be the same rule set the server is serving — pass `None` to skip the
/// bit-identity check (e.g. against a degraded col-avgs server). Each
/// thread builds its own [`RuleSetPredictor`] so oracle solves never
/// contend.
#[must_use]
pub fn run_load(
    addr: SocketAddr,
    n_attributes: usize,
    oracle: Option<&RuleSet>,
    cfg: &LoadgenConfig,
) -> LoadReport {
    let m = n_attributes.max(1);
    let concurrency = cfg.concurrency.max(1);
    let stats: Mutex<Vec<ThreadStats>> = Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..concurrency {
            let stats = &stats;
            scope.spawn(move || {
                let thread_oracle = oracle.map(|rs| RuleSetPredictor::new(rs.clone()));
                let mut client = BenchClient::new(addr, cfg.timeout, cfg.keep_alive);
                let mut local = ThreadStats::default();
                let depth = if cfg.keep_alive {
                    cfg.pipeline_depth.max(1)
                } else {
                    1
                };
                // Bookkeeping shared by both paths: compare each 200
                // against the oracle, count everything else as an error.
                let mut absorb = |local: &mut ThreadStats,
                                  req: usize,
                                  status: u16,
                                  resp_body: &str,
                                  latency_us: f64| {
                    if status != 200 {
                        local.errors += 1;
                        return;
                    }
                    local.latencies_us.push(latency_us);
                    local.ok += 1;
                    if let Some(orc) = &thread_oracle {
                        if let Ok(doc) = obs::json::parse(resp_body) {
                            let rows = doc.get("rows").and_then(JsonValue::as_arr);
                            for (r, served) in rows.unwrap_or(&[]).iter().enumerate() {
                                let (c, x) = check_row(served, orc, req, r, m);
                                local.rows_checked += c;
                                local.mismatches += x;
                            }
                        }
                    }
                };
                let mut req = t;
                while req < cfg.requests {
                    // This burst's request ids (thread-strided).
                    let mut ids = Vec::with_capacity(depth);
                    while req < cfg.requests && ids.len() < depth {
                        ids.push(req);
                        req += concurrency;
                    }
                    if depth == 1 {
                        let body = body_for(ids[0], cfg.rows_per_request, m);
                        let req_t0 = Instant::now();
                        match client.post_predict(&body) {
                            Ok((status, resp_body)) => absorb(
                                &mut local,
                                ids[0],
                                status,
                                &resp_body,
                                req_t0.elapsed().as_micros() as f64,
                            ),
                            Err(_) => local.errors += 1,
                        }
                    } else {
                        let bodies: Vec<String> = ids
                            .iter()
                            .map(|&i| body_for(i, cfg.rows_per_request, m))
                            .collect();
                        let (answered, err) = client.pipeline_predict(&bodies);
                        let n_answered = answered.len();
                        for (&id, (status, resp_body, latency_us)) in
                            ids.iter().zip(answered)
                        {
                            absorb(&mut local, id, status, &resp_body, latency_us);
                        }
                        if err.is_some() {
                            local.errors += ids.len() - n_answered;
                        }
                    }
                }
                local.connections = client.connections;
                stats
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(local);
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let all = stats.into_inner().unwrap_or_else(PoisonError::into_inner);
    let mut latencies: Vec<f64> = all.iter().flat_map(|s| s.latencies_us.clone()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let ok = all.iter().map(|s| s.ok).sum();
    LoadReport {
        requests: cfg.requests,
        ok,
        errors: all.iter().map(|s| s.errors).sum(),
        wall_s,
        req_per_s: if wall_s > 0.0 { ok as f64 / wall_s } else { 0.0 },
        p50_us: pct(&latencies, 0.50),
        p90_us: pct(&latencies, 0.90),
        p99_us: pct(&latencies, 0.99),
        p999_us: pct(&latencies, 0.999),
        max_us: latencies.last().copied().unwrap_or(0.0),
        rows_checked: all.iter().map(|s| s.rows_checked).sum(),
        mismatches: all.iter().map(|s| s.mismatches).sum(),
        connections: all.iter().map(|s| s.connections).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_rows_are_deterministic_with_one_hole() {
        let a = gen_row(3, 1, 4);
        let b = gen_row(3, 1, 4);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|c| c.is_none()).count(), 1);
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn pct_is_nearest_rank_on_the_sorted_sample() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(pct(&s, 0.50), 5.0);
        assert_eq!(pct(&s, 0.90), 9.0);
        assert_eq!(pct(&s, 0.999), 10.0);
        assert_eq!(pct(&[], 0.5), 0.0);
    }

    #[test]
    fn body_encodes_holes_as_null() {
        let body = body_for(0, 2, 3);
        let doc = obs::json::parse(&body).expect("valid JSON");
        let rows = doc.get("rows").and_then(JsonValue::as_arr).expect("rows");
        assert_eq!(rows.len(), 2);
        let first = rows[0].as_arr().expect("row array");
        assert_eq!(first.len(), 3);
        assert!(first.iter().any(|c| matches!(c, JsonValue::Null)));
    }
}
