//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! Deliberately minimal, matching the workspace's std-only policy: one
//! request per connection (`Connection: close`), explicit
//! `Content-Length` bodies only (no chunked encoding), and hard size
//! limits on both the header block and the body so a misbehaving client
//! cannot balloon server memory.

use std::io::{Read, Write};

/// Upper bound on the request line + headers, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body, bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (includes read timeouts).
    Io(std::io::Error),
    /// Syntactically invalid request.
    Malformed(String),
    /// Head or body exceeded its size limit.
    TooLarge(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge(msg) => write!(f, "request too large: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed request. Header names are lowercased at parse time.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/predict`.
    pub path: String,
    /// `(lowercased-name, value)` pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// Raw body (`Content-Length` bytes; empty without the header).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8.
    ///
    /// # Errors
    /// Fails when the body is not valid UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("body is not valid UTF-8".into()))
    }
}

fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads and parses one request from the stream.
///
/// # Errors
/// Fails on socket errors, on syntactically invalid requests, and when
/// [`MAX_HEAD_BYTES`] / [`MAX_BODY_BYTES`] are exceeded.
pub fn read_request(stream: &mut dyn Read) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let body_start = loop {
        if let Some(pos) = head_end(&buf) {
            break pos + 4;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "headers exceed {MAX_HEAD_BYTES} bytes"
            )));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before the header block ended".into(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..body_start - 4])
        .map_err(|_| HttpError::Malformed("headers are not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': {line:?}")))?;
        headers.push((
            name.trim().to_ascii_lowercase(),
            value.trim().to_string(),
        ));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds {MAX_BODY_BYTES}"
        )));
    }

    let mut body = buf[body_start..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before the body ended".into(),
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Standard reason phrase for the statuses this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// An outgoing response. Always one-shot: `Connection: close` and an
/// explicit `Content-Length` are appended at write time.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (content-type is set by the constructors).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.into_bytes(),
        }
    }

    /// A plain-text response (Prometheus exposition, errors).
    #[must_use]
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            headers: vec![("content-type".into(), "text/plain; charset=utf-8".into())],
            body: body.into_bytes(),
        }
    }

    /// Appends a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serializes the response onto the wire.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn write_to(&self, w: &mut dyn Write) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status));
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n", self.body.len()));
        head.push_str("connection: close\r\n\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body_str().unwrap(), "hello world");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(parse("garbage\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse("GET / SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbad header line\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        // Truncated body.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn enforces_size_limits() {
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(2 * MAX_HEAD_BYTES));
        assert!(matches!(parse(&huge), Err(HttpError::TooLarge(_))));
        let body_bomb = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&body_bomb), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .with_header("DEGRADED", "true")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("DEGRADED: true\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn status_reasons_cover_the_emitted_set() {
        for s in [200, 400, 404, 405, 413, 429, 500, 503, 504] {
            assert_ne!(reason(s), "Unknown", "{s}");
        }
    }
}
