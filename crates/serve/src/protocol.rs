//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! Deliberately minimal, matching the workspace's std-only policy:
//! explicit `Content-Length` bodies only (no chunked encoding) and hard
//! size limits on both the header block and the body so a misbehaving
//! client cannot balloon server memory.
//!
//! Since the persistent-connection rework the parser is *incremental*:
//! [`RequestReader`] owns a reused buffer per connection, parses as many
//! back-to-back (pipelined) requests out of it as have fully arrived,
//! and only touches the socket when the buffer runs dry. The pure
//! parsing step lives in [`try_parse`] so byte-boundary segmentation can
//! be property-tested without sockets: feeding any prefix of a request
//! stream yields either a complete request plus its exact consumed
//! length, a "need more bytes" signal, or the same error the full
//! stream would produce.
//!
//! Responses default to `Connection: close` (the historical contract;
//! every existing caller relies on it) and opt into keep-alive via
//! [`Response::keep_alive`].

use std::io::{Read, Write};

/// Upper bound on the request line + headers, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body, bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (includes read timeouts).
    Io(std::io::Error),
    /// Syntactically invalid request.
    Malformed(String),
    /// Head or body exceeded its size limit.
    TooLarge(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge(msg) => write!(f, "request too large: {msg}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// A parsed request. Header names are lowercased at parse time.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/predict`.
    pub path: String,
    /// `(lowercased-name, value)` pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// Raw body (`Content-Length` bytes; empty without the header).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8.
    ///
    /// # Errors
    /// Fails when the body is not valid UTF-8.
    pub fn body_str(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body)
            .map_err(|_| HttpError::Malformed("body is not valid UTF-8".into()))
    }

    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`). HTTP/1.1 defaults to keep-alive.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Outcome of a pure parse attempt over a byte prefix.
#[derive(Debug)]
pub enum Parsed {
    /// A full request plus the number of bytes it consumed from the
    /// front of the buffer (head + body; pipelined successors follow).
    Complete(Request, usize),
    /// The buffer holds only a prefix of a request; read more bytes.
    NeedMore,
}

/// Attempts to parse one request from the front of `buf` without
/// consuming input. Size limits are enforced *incrementally*: an
/// over-long header block or an oversized declared body errors as soon
/// as the prefix proves the violation, even before the request is
/// complete.
///
/// # Errors
/// `Malformed` for syntax errors, `TooLarge` when [`MAX_HEAD_BYTES`] /
/// [`MAX_BODY_BYTES`] are exceeded.
pub fn try_parse(buf: &[u8]) -> Result<Parsed, HttpError> {
    let Some(pos) = head_end(buf) else {
        // No terminator yet: every buffered byte is head. 3 bytes of a
        // possibly-split "\r\n\r\n" may straddle the boundary, so only
        // flag once the buffer is unambiguously past the limit.
        if buf.len() > MAX_HEAD_BYTES + 3 {
            return Err(HttpError::TooLarge(format!(
                "headers exceed {MAX_HEAD_BYTES} bytes"
            )));
        }
        return Ok(Parsed::NeedMore);
    };
    let body_start = pos + 4;
    if body_start > MAX_HEAD_BYTES + 4 {
        return Err(HttpError::TooLarge(format!(
            "headers exceed {MAX_HEAD_BYTES} bytes"
        )));
    }

    let head = std::str::from_utf8(&buf[..body_start - 4])
        .map_err(|_| HttpError::Malformed("headers are not valid UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without ':': {line:?}")))?;
        headers.push((
            name.trim().to_ascii_lowercase(),
            value.trim().to_string(),
        ));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds {MAX_BODY_BYTES}"
        )));
    }

    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(Parsed::NeedMore);
    }
    let body = buf[body_start..total].to_vec();
    Ok(Parsed::Complete(
        Request {
            method,
            path,
            headers,
            body,
        },
        total,
    ))
}

/// Incremental request reader for a persistent connection.
///
/// Owns the connection's receive buffer across requests: bytes read
/// ahead of one request (pipelined successors) stay buffered and are
/// served without touching the socket again. The buffer is *reused* —
/// consumed bytes are drained from the front, capacity is retained.
#[derive(Debug, Default)]
pub struct RequestReader {
    buf: Vec<u8>,
}

impl RequestReader {
    /// A reader with an empty buffer.
    #[must_use]
    pub fn new() -> RequestReader {
        RequestReader {
            buf: Vec::with_capacity(1024),
        }
    }

    /// Whether read-ahead bytes from a previous call are still buffered
    /// (the start of a pipelined request).
    #[must_use]
    pub fn has_buffered(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Reads and parses the next request, buffering any read-ahead.
    ///
    /// Returns `Ok(None)` on a clean close: EOF with the buffer empty,
    /// i.e. exactly at a request boundary.
    ///
    /// # Errors
    /// Socket errors, syntax errors, size-limit violations, and EOF in
    /// the middle of a request (`Malformed`).
    pub fn next_request(
        &mut self,
        stream: &mut dyn Read,
    ) -> Result<Option<Request>, HttpError> {
        let mut chunk = [0u8; 4096];
        loop {
            match try_parse(&self.buf)? {
                Parsed::Complete(req, consumed) => {
                    self.buf.drain(..consumed);
                    return Ok(Some(req));
                }
                Parsed::NeedMore => {}
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                if self.buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed(
                    "connection closed mid-request".into(),
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Parses the next request out of the read-ahead buffer *without*
    /// touching the socket. `Ok(None)` means the buffer holds at most a
    /// prefix of a request; call [`next_request`](Self::next_request)
    /// when blocking for the rest is acceptable. The connection worker
    /// uses this to coalesce an already-arrived pipelined burst into
    /// one batch-submission pass.
    ///
    /// # Errors
    /// Syntax errors and size-limit violations, exactly as
    /// `next_request` would report them for the same bytes.
    pub fn next_buffered(&mut self) -> Result<Option<Request>, HttpError> {
        match try_parse(&self.buf)? {
            Parsed::Complete(req, consumed) => {
                self.buf.drain(..consumed);
                Ok(Some(req))
            }
            Parsed::NeedMore => Ok(None),
        }
    }
}

/// Reads and parses one request from the stream (one-shot compatibility
/// wrapper over [`RequestReader`]; read-ahead bytes are discarded).
///
/// # Errors
/// Fails on socket errors, on syntactically invalid requests, on a
/// closed-before-complete stream, and when [`MAX_HEAD_BYTES`] /
/// [`MAX_BODY_BYTES`] are exceeded.
pub fn read_request(stream: &mut dyn Read) -> Result<Request, HttpError> {
    match RequestReader::new().next_request(stream)? {
        Some(req) => Ok(req),
        None => Err(HttpError::Malformed(
            "connection closed before the header block ended".into(),
        )),
    }
}

/// Standard reason phrase for the statuses this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// An outgoing response. An explicit `Content-Length` and a
/// `Connection` header are appended at write time; the connection
/// header says `close` unless [`Response::keep_alive`] was called.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (content-type is set by the constructors).
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Whether to advertise `Connection: close` (the default).
    pub close: bool,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.into_bytes(),
            close: true,
        }
    }

    /// A plain-text response (Prometheus exposition, errors).
    #[must_use]
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            headers: vec![("content-type".into(), "text/plain; charset=utf-8".into())],
            body: body.into_bytes(),
            close: true,
        }
    }

    /// Appends a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Marks the response as keep-alive (`Connection: keep-alive`).
    #[must_use]
    pub fn keep_alive(mut self) -> Response {
        self.close = false;
        self
    }

    /// Serializes the response onto the wire as one `write_all` call.
    ///
    /// A single write matters on persistent connections: a separate
    /// head write followed by a body write puts two small segments on
    /// the socket, and Nagle's algorithm holds the second until the
    /// peer's delayed ACK (~40ms) — which would dominate keep-alive
    /// latency.
    ///
    /// # Errors
    /// Propagates socket write failures.
    pub fn write_to(&self, w: &mut dyn Write) -> std::io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status));
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n", self.body.len()));
        if self.close {
            head.push_str("connection: close\r\n\r\n");
        } else {
            head.push_str("connection: keep-alive\r\n\r\n");
        }
        let mut wire = head.into_bytes();
        wire.extend_from_slice(&self.body);
        w.write_all(&wire)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body_str().unwrap(), "hello world");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = parse("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(parse("garbage\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse("GET / SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbad header line\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        // Truncated body.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn enforces_size_limits() {
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(2 * MAX_HEAD_BYTES));
        assert!(matches!(parse(&huge), Err(HttpError::TooLarge(_))));
        let body_bomb = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&body_bomb), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn oversized_head_is_flagged_before_completion() {
        // No "\r\n\r\n" anywhere, buffer already past the limit: the
        // incremental parser must not wait for a terminator that may
        // never come.
        let prefix = vec![b'a'; MAX_HEAD_BYTES + 8];
        assert!(matches!(try_parse(&prefix), Err(HttpError::TooLarge(_))));
        // Just under the limit without a terminator: still waiting.
        let under = vec![b'a'; MAX_HEAD_BYTES - 1];
        assert!(matches!(try_parse(&under), Ok(Parsed::NeedMore)));
    }

    #[test]
    fn wants_close_reads_the_connection_header() {
        let req =
            parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        let req = parse("GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!req.wants_close());
        let req = parse("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(!req.wants_close());
    }

    fn pipeline_raw(n: usize) -> Vec<u8> {
        let mut raw = Vec::new();
        for i in 0..n {
            let body = format!("body-{i}");
            raw.extend_from_slice(
                format!(
                    "POST /predict HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n{}",
                    body.len(),
                    body
                )
                .as_bytes(),
            );
        }
        raw
    }

    /// A reader that serves a fixed byte string in caller-chosen slices,
    /// so segmentation at every byte boundary is testable without
    /// sockets.
    struct Segmented {
        data: Vec<u8>,
        cuts: Vec<usize>,
        pos: usize,
        next_cut: usize,
    }

    impl Read for Segmented {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            let end = if self.next_cut < self.cuts.len() {
                let c = self.cuts[self.next_cut].clamp(self.pos + 1, self.data.len());
                self.next_cut += 1;
                c
            } else {
                self.data.len()
            };
            let n = (end - self.pos).min(out.len());
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn drain_all(stream: &mut dyn Read) -> Result<Vec<Request>, HttpError> {
        let mut reader = RequestReader::new();
        let mut reqs = Vec::new();
        while let Some(req) = reader.next_request(stream)? {
            reqs.push(req);
        }
        Ok(reqs)
    }

    #[test]
    fn every_single_split_point_parses_identically() {
        let raw = pipeline_raw(3);
        let oneshot = drain_all(&mut Cursor::new(raw.clone())).unwrap();
        assert_eq!(oneshot.len(), 3);
        for cut in 1..raw.len() {
            let mut seg = Segmented {
                data: raw.clone(),
                cuts: vec![cut],
                pos: 0,
                next_cut: 0,
            };
            let got = drain_all(&mut seg).unwrap();
            assert_eq!(got.len(), oneshot.len(), "cut at {cut}");
            for (a, b) in got.iter().zip(oneshot.iter()) {
                assert_eq!(a.method, b.method, "cut at {cut}");
                assert_eq!(a.path, b.path, "cut at {cut}");
                assert_eq!(a.headers, b.headers, "cut at {cut}");
                assert_eq!(a.body, b.body, "cut at {cut}");
            }
        }
    }

    #[test]
    fn read_ahead_bytes_stay_buffered_between_requests() {
        let raw = pipeline_raw(4);
        // One giant read: everything past request 1 is read-ahead.
        let mut cursor = Cursor::new(raw);
        let mut reader = RequestReader::new();
        let first = reader.next_request(&mut cursor).unwrap().unwrap();
        assert_eq!(first.body, b"body-0");
        assert!(reader.has_buffered(), "pipelined successors buffered");
        for i in 1..4 {
            let req = reader.next_request(&mut cursor).unwrap().unwrap();
            assert_eq!(req.body, format!("body-{i}").into_bytes());
        }
        assert!(reader.next_request(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn next_buffered_drains_complete_requests_without_the_socket() {
        let raw = pipeline_raw(3);
        let mut cursor = Cursor::new(raw);
        let mut reader = RequestReader::new();
        // One blocking read pulls the whole pipeline into the buffer.
        let first = reader.next_request(&mut cursor).unwrap().unwrap();
        assert_eq!(first.body, b"body-0");
        // The two successors come straight out of the buffer...
        assert_eq!(
            reader.next_buffered().unwrap().unwrap().body,
            b"body-1"
        );
        assert_eq!(
            reader.next_buffered().unwrap().unwrap().body,
            b"body-2"
        );
        // ...and a drained buffer reports None instead of blocking.
        assert!(reader.next_buffered().unwrap().is_none());
        assert!(!reader.has_buffered());
    }

    #[test]
    fn next_buffered_reports_none_on_a_partial_request() {
        let raw = pipeline_raw(2);
        let cut = raw.len() - 3; // request 2 is incomplete
        let mut reader = RequestReader::new();
        let mut cursor = Cursor::new(raw[..cut].to_vec());
        assert!(reader.next_request(&mut cursor).unwrap().is_some());
        assert!(reader.has_buffered(), "partial request 2 is buffered");
        assert!(reader.next_buffered().unwrap().is_none());
        assert!(reader.has_buffered(), "prefix must stay buffered");
    }

    #[test]
    fn eof_mid_request_is_malformed_not_clean() {
        let raw = pipeline_raw(2);
        let cut = raw.len() - 3; // truncate inside request 2's body
        let mut cursor = Cursor::new(raw[..cut].to_vec());
        let mut reader = RequestReader::new();
        assert!(reader.next_request(&mut cursor).unwrap().is_some());
        assert!(matches!(
            reader.next_request(&mut cursor),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .with_header("DEGRADED", "true")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("DEGRADED: true\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn keep_alive_responses_advertise_it() {
        let mut out = Vec::new();
        Response::text(200, "ok".into())
            .keep_alive()
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(!text.contains("connection: close\r\n"));
    }

    #[test]
    fn status_reasons_cover_the_emitted_set() {
        for s in [200, 400, 404, 405, 413, 429, 500, 503, 504] {
            assert_ne!(reason(s), "Unknown", "{s}");
        }
    }
}
