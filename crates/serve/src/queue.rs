//! The batching core: a bounded job queue plus one batcher thread that
//! coalesces concurrent predictions into grouped solves.
//!
//! HTTP workers [`Batcher::submit`] one holed row each and block on a
//! channel for the outcome. The batcher thread waits `batch_window`
//! after the first job arrives (or until `max_batch` jobs are queued),
//! drains the batch, and hands it to [`BatchPredictor::fill_batch`] —
//! rows sharing a hole pattern share one factored solver, and each row
//! goes through the exact same `PatternSolver::fill` code path as a
//! single-shot fill, so batching never changes an answer.
//!
//! Backpressure is explicit: a full queue rejects at submit time (the
//! server turns that into `429` + `Retry-After`), and a job that sits
//! past its deadline is answered `Expired` instead of being solved.
//! Shutdown is graceful — the batcher keeps draining until the queue is
//! empty before exiting, so accepted work is never dropped.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dataset::holes::HoledRow;
use obs::names;
use ratio_rules::batch::BatchPredictor;
use ratio_rules::predictor::{ColAvgs, Predictor};
use ratio_rules::reconstruct::SolveCase;
use ratio_rules::resilience::ServedModel;
use ratio_rules::rules::RuleSet;

/// What the server serves: a full rule set behind the batching facade,
/// or the degraded col-avgs floor the resilience ladder left behind.
#[derive(Debug)]
pub enum ServeModel {
    /// Ratio Rules, solved in pattern-grouped batches.
    Rules(BatchPredictor),
    /// The `k = 0` floor: every hole answered with its column mean.
    ColAvgs(ColAvgs),
}

impl ServeModel {
    /// Adapts whatever a mine run wrote.
    #[must_use]
    pub fn from_served(model: ServedModel) -> Self {
        match model {
            ServedModel::Rules(rs) => ServeModel::Rules(BatchPredictor::new(rs)),
            ServedModel::ColAvgs(ca) => ServeModel::ColAvgs(ca),
        }
    }

    /// Expected row width `M`.
    #[must_use]
    pub fn n_attributes(&self) -> usize {
        match self {
            ServeModel::Rules(bp) => bp.n_attributes(),
            ServeModel::ColAvgs(ca) => ca.n_attributes(),
        }
    }

    /// Rules retained (0 for the col-avgs floor).
    #[must_use]
    pub fn k(&self) -> usize {
        self.rules().map_or(0, RuleSet::k)
    }

    /// The rule set, when serving one.
    #[must_use]
    pub fn rules(&self) -> Option<&RuleSet> {
        match self {
            ServeModel::Rules(bp) => Some(bp.predictor().rules()),
            ServeModel::ColAvgs(_) => None,
        }
    }

    /// Whether this is the degraded floor.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        matches!(self, ServeModel::ColAvgs(_))
    }

    /// Per-column training means: the col-avgs floor this model degrades
    /// to when the queue sheds load.
    #[must_use]
    pub fn column_means(&self) -> &[f64] {
        match self {
            ServeModel::Rules(bp) => bp.predictor().rules().column_means(),
            ServeModel::ColAvgs(ca) => ca.means(),
        }
    }

    /// The `/rules` document (same on-disk format as `mine` writes).
    #[must_use]
    pub fn document(&self) -> String {
        match self {
            ServeModel::Rules(bp) => {
                ratio_rules::model_json::rules_to_string(bp.predictor().rules())
            }
            ServeModel::ColAvgs(ca) => ratio_rules::model_json::col_avgs_to_string(ca.means()),
        }
    }
}

/// Capacity knobs for the batching core.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Most rows coalesced into one solve.
    pub max_batch: usize,
    /// How long the batcher holds the first job to let peers coalesce.
    pub batch_window: Duration,
    /// Queue bound; submits beyond it are rejected (429 upstream).
    pub max_queue: usize,
    /// Per-job deadline; jobs older than this are answered `Expired`.
    pub deadline: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            batch_window: Duration::from_micros(500),
            max_queue: 1024,
            deadline: Duration::from_secs(2),
        }
    }
}

/// One fill answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Full row, holes filled.
    pub values: Vec<f64>,
    /// Which solve shape produced it (`col_avgs` for the floor).
    pub case: String,
}

/// What came back for a submitted row.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictOutcome {
    /// Solved.
    Filled(Prediction),
    /// The row itself was invalid (width, pattern, non-finite values).
    Failed(String),
    /// The job sat in the queue past its deadline.
    Expired,
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at `max_queue`; retry after backing off.
    QueueFull,
    /// The batcher is draining for shutdown.
    ShuttingDown,
}

/// Renders the paper's case tag for the wire.
#[must_use]
pub fn case_name(case: SolveCase) -> String {
    match case {
        SolveCase::ExactlySpecified => "exactly_specified".into(),
        SolveCase::OverSpecified => "over_specified".into(),
        SolveCase::UnderSpecified { rules_used } => {
            format!("under_specified:{rules_used}")
        }
    }
}

struct Job {
    row: HoledRow,
    enqueued: Instant,
    deadline: Instant,
    tx: mpsc::Sender<PredictOutcome>,
    /// Request trace this row belongs to (absent for untraced callers).
    ctx: Option<obs::TraceContext>,
}

struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    cfg: BatchConfig,
    state: Mutex<State>,
    cv: Condvar,
    batch_bounds: Vec<f64>,
    /// Monotone batch label; ties every member request's spans and the
    /// flight-recorder coalesce event to one solve.
    batch_seq: AtomicU64,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Handle to the batcher thread. Dropping it (or calling
/// [`Batcher::shutdown`]) drains the queue and joins the thread.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl Batcher {
    /// Spawns the batcher thread over a shared model.
    #[must_use]
    pub fn start(model: Arc<ServeModel>, cfg: BatchConfig) -> Batcher {
        let shared = Arc::new(Shared {
            // Batch sizes are small integers.
            batch_bounds: obs::exponential_bounds(1.0, 2.0, 11),
            cfg,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            batch_seq: AtomicU64::new(1),
        });
        // The batch-size histogram has owner-chosen bounds, so the boot
        // seeder cannot register it; doing so here keeps the family on
        // /metrics from the first scrape.
        obs::global().histogram(names::SERVE_BATCH_SIZE, &shared.batch_bounds);
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("rr-batcher".into())
            .spawn(move || batcher_loop(&worker_shared, &model))
            .ok();
        Batcher {
            shared,
            worker: Mutex::new(handle),
        }
    }

    /// Enqueues one row; the returned channel yields its outcome.
    ///
    /// # Errors
    /// [`SubmitError::QueueFull`] at the `max_queue` bound (the caller
    /// should answer 429 + `Retry-After`), [`SubmitError::ShuttingDown`]
    /// once a drain has begun.
    pub fn submit(&self, row: HoledRow) -> Result<mpsc::Receiver<PredictOutcome>, SubmitError> {
        self.submit_traced(row, None)
    }

    /// [`submit`](Self::submit) carrying the submitting request's trace
    /// context, so the batch solve that eventually answers this row is
    /// recorded into that request's span tree.
    ///
    /// # Errors
    /// Same contract as [`submit`](Self::submit).
    pub fn submit_traced(
        &self,
        row: HoledRow,
        ctx: Option<obs::TraceContext>,
    ) -> Result<mpsc::Receiver<PredictOutcome>, SubmitError> {
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.shared.lock();
            if st.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if st.queue.len() >= self.shared.cfg.max_queue {
                obs::counter_add(names::SERVE_REJECTED_TOTAL, 1);
                obs::flight_event(names::EVENT_SERVE_SHED_429, st.queue.len() as u64, 0, 0.0);
                return Err(SubmitError::QueueFull);
            }
            st.queue.push_back(Job {
                row,
                enqueued: now,
                deadline: now + self.shared.cfg.deadline,
                tx,
                ctx,
            });
            obs::gauge_set(names::SERVE_QUEUE_DEPTH, st.queue.len() as f64);
        }
        self.shared.cv.notify_all();
        Ok(rx)
    }

    /// Jobs currently waiting (for tests and health reporting).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Per-job deadline configured for this batcher.
    #[must_use]
    pub fn deadline(&self) -> Duration {
        self.shared.cfg.deadline
    }

    /// Starts a drain without blocking: new submissions are refused with
    /// [`SubmitError::ShuttingDown`] while already-queued jobs still run
    /// to completion. [`shutdown`](Self::shutdown) later joins the
    /// worker; calling only `begin_drain` leaves it running until the
    /// queue empties.
    pub fn begin_drain(&self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
    }

    /// Stops accepting work, drains everything already queued, and joins
    /// the batcher thread. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        let handle = self
            .worker
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn batcher_loop(shared: &Shared, model: &ServeModel) {
    loop {
        let batch: Vec<Job> = {
            let mut st = shared.lock();
            while st.queue.is_empty() && !st.shutdown {
                st = shared
                    .cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            if st.queue.is_empty() {
                // Shutdown with nothing left to drain.
                break;
            }
            // Hold the first job for the coalescing window (skipped when
            // the batch is already full or we are draining).
            let window_end = Instant::now() + shared.cfg.batch_window;
            while st.queue.len() < shared.cfg.max_batch && !st.shutdown {
                let now = Instant::now();
                if now >= window_end {
                    break;
                }
                let (guard, timeout) = shared
                    .cv
                    .wait_timeout(st, window_end - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            let n = st.queue.len().min(shared.cfg.max_batch);
            let batch = st.queue.drain(..n).collect();
            obs::gauge_set(names::SERVE_QUEUE_DEPTH, st.queue.len() as f64);
            batch
        };
        run_batch(shared, model, batch);
    }
}

fn run_batch(shared: &Shared, model: &ServeModel, jobs: Vec<Job>) {
    let _span = obs::Span::enter(names::SPAN_SERVE_BATCH);
    let batch_id = shared.batch_seq.fetch_add(1, Ordering::Relaxed);
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(jobs.len());
    for job in jobs {
        if now > job.deadline {
            obs::counter_add(names::SERVE_TIMEOUTS_TOTAL, 1);
            obs::flight_event(
                names::EVENT_SERVE_JOB_EXPIRED,
                batch_id,
                0,
                job.enqueued.elapsed().as_micros() as f64,
            );
            let _ = job.tx.send(PredictOutcome::Expired);
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    obs::counter_add(names::SERVE_BATCHES_TOTAL, 1);
    obs::counter_add(names::SERVE_ROWS_PREDICTED_TOTAL, live.len() as u64);
    obs::observe(
        names::SERVE_BATCH_SIZE,
        &shared.batch_bounds,
        live.len() as f64,
    );
    for job in &live {
        obs::observe_quantile(
            names::SERVE_QUEUE_WAIT_US,
            job.enqueued.elapsed().as_micros() as f64,
        );
    }

    let solve_start_us = obs::trace::now_us();
    let solve_t0 = Instant::now();
    let (groups, outcomes): (usize, Vec<PredictOutcome>) = match model {
        ServeModel::Rules(bp) => {
            let rows: Vec<HoledRow> = live.iter().map(|j| j.row.clone()).collect();
            let ctxs: Vec<Option<obs::TraceContext>> = live.iter().map(|j| j.ctx).collect();
            let (groups, results) = bp.fill_batch_traced(&rows, &ctxs, batch_id);
            let outcomes = results
                .into_iter()
                .map(|r| match r {
                    Ok(filled) => PredictOutcome::Filled(Prediction {
                        values: filled.values,
                        case: case_name(filled.case),
                    }),
                    Err(e) => PredictOutcome::Failed(e.to_string()),
                })
                .collect();
            (groups, outcomes)
        }
        ServeModel::ColAvgs(ca) => {
            let outcomes = live
                .iter()
                .map(|j| match ca.fill(&j.row) {
                    Ok(values) => PredictOutcome::Filled(Prediction {
                        values,
                        case: "col_avgs".into(),
                    }),
                    Err(e) => PredictOutcome::Failed(e.to_string()),
                })
                .collect();
            // The floor fills every row independently: no coalescing.
            (live.len(), outcomes)
        }
    };
    let solve_dur_us = obs::trace::now_us().saturating_sub(solve_start_us);
    obs::observe_quantile(
        names::SERVE_SOLVE_US,
        solve_t0.elapsed().as_micros() as f64,
    );
    obs::flight_event(
        names::EVENT_SERVE_BATCH_COALESCED,
        batch_id,
        live.len() as u64,
        groups as f64,
    );
    let batch_args = [
        ("batch", batch_id as f64),
        ("rows", live.len() as f64),
        ("groups", groups as f64),
    ];
    for job in &live {
        if let Some(ctx) = job.ctx {
            obs::trace::record_span(
                &ctx,
                names::SPAN_SERVE_BATCH,
                solve_start_us,
                solve_dur_us,
                &batch_args,
            );
        }
    }

    for (job, outcome) in live.into_iter().zip(outcomes) {
        obs::observe_quantile(
            names::SERVE_LATENCY_US,
            job.enqueued.elapsed().as_micros() as f64,
        );
        let _ = job.tx.send(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratio_rules::cutoff::Cutoff;
    use ratio_rules::miner::RatioRuleMiner;
    use ratio_rules::predictor::RuleSetPredictor;

    fn model() -> Arc<ServeModel> {
        let x = linalg::Matrix::from_fn(40, 3, |i, j| {
            let t = (i + 1) as f64;
            t * [3.0, 2.0, 1.0][j] + ((i * 7 + j) % 5) as f64 * 0.01
        });
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1)).fit_matrix(&x).unwrap();
        Arc::new(ServeModel::Rules(BatchPredictor::new(rules)))
    }

    #[test]
    fn submitted_rows_come_back_identical_to_single_shot() {
        let m = model();
        let rules = m.rules().unwrap().clone();
        let single = RuleSetPredictor::new(rules);
        let b = Batcher::start(Arc::clone(&m), BatchConfig::default());
        let rows: Vec<HoledRow> = (0..8)
            .map(|i| HoledRow::new(vec![Some(3.0 * (i + 1) as f64), None, Some((i + 1) as f64)]))
            .collect();
        let rxs: Vec<_> = rows
            .iter()
            .map(|r| b.submit(r.clone()).unwrap())
            .collect();
        for (row, rx) in rows.iter().zip(rxs) {
            match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                PredictOutcome::Filled(p) => {
                    use ratio_rules::predictor::Predictor as _;
                    assert_eq!(p.values, single.fill(row).unwrap());
                    // M = 3, k = 1, one hole: 2 knowns > 1 rule.
                    assert_eq!(p.case, "over_specified");
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        b.shutdown();
    }

    #[test]
    fn full_queue_rejects_but_in_flight_jobs_finish() {
        let m = model();
        // A window long enough that everything below lands in one batch.
        let cfg = BatchConfig {
            max_batch: 4,
            batch_window: Duration::from_millis(200),
            max_queue: 2,
            deadline: Duration::from_secs(5),
        };
        let b = Batcher::start(m, cfg);
        let row = HoledRow::new(vec![Some(3.0), None, Some(1.0)]);
        let rx1 = b.submit(row.clone()).unwrap();
        let rx2 = b.submit(row.clone()).unwrap();
        // The queue may bound either 2 or 3 deep here depending on
        // whether the batcher has already claimed the first two; keep
        // filling until rejected.
        let mut rejected = false;
        let mut extra = Vec::new();
        for _ in 0..8 {
            match b.submit(row.clone()) {
                Ok(rx) => extra.push(rx),
                Err(SubmitError::QueueFull) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected submit error: {e:?}"),
            }
        }
        assert!(rejected, "queue of 2 never filled");
        // Every accepted job still completes.
        for rx in [rx1, rx2].into_iter().chain(extra) {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(5)).unwrap(),
                PredictOutcome::Filled(_)
            ));
        }
        b.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_work_then_refuses() {
        let m = model();
        let cfg = BatchConfig {
            batch_window: Duration::from_millis(50),
            ..BatchConfig::default()
        };
        let b = Batcher::start(m, cfg);
        let row = HoledRow::new(vec![Some(3.0), None, Some(1.0)]);
        let rxs: Vec<_> = (0..16).map(|_| b.submit(row.clone()).unwrap()).collect();
        b.shutdown();
        for rx in rxs {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(5)).unwrap(),
                PredictOutcome::Filled(_)
            ));
        }
        assert_eq!(b.submit(row).unwrap_err(), SubmitError::ShuttingDown);
    }

    #[test]
    fn invalid_rows_fail_without_poisoning_the_batch() {
        let b = Batcher::start(model(), BatchConfig::default());
        let good = b
            .submit(HoledRow::new(vec![Some(3.0), None, Some(1.0)]))
            .unwrap();
        let bad = b.submit(HoledRow::new(vec![None, None])).unwrap();
        assert!(matches!(
            good.recv_timeout(Duration::from_secs(5)).unwrap(),
            PredictOutcome::Filled(_)
        ));
        assert!(matches!(
            bad.recv_timeout(Duration::from_secs(5)).unwrap(),
            PredictOutcome::Failed(_)
        ));
        b.shutdown();
    }

    #[test]
    fn col_avgs_floor_serves_means() {
        let model = Arc::new(ServeModel::ColAvgs(
            ColAvgs::new(vec![10.0, 20.0]).unwrap(),
        ));
        assert!(model.is_degraded());
        assert_eq!(model.k(), 0);
        let b = Batcher::start(model, BatchConfig::default());
        let rx = b.submit(HoledRow::new(vec![None, Some(7.0)])).unwrap();
        match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
            PredictOutcome::Filled(p) => {
                assert_eq!(p.values, vec![10.0, 7.0]);
                assert_eq!(p.case, "col_avgs");
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        b.shutdown();
    }
}
