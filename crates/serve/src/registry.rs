//! Hot-swap model registry: named + versioned [`ServeModel`]s behind an
//! atomically-swapped snapshot.
//!
//! The registry is the bridge between mining and serving: `mine` (or
//! the distributed coordinator) writes a `model_json` artifact, `POST
//! /models` ingests it here, and `/predict` traffic cuts over to the
//! new version without dropping a connection. Three properties carry
//! the design:
//!
//! * **Readers never block on a swap.** The whole registry state lives
//!   in one immutable [`RegistrySnapshot`] behind an `Arc`; a reader
//!   takes the `snap` mutex only long enough to clone the `Arc` (a
//!   refcount bump — the workspace bans `unsafe`, so this is the
//!   std-only stand-in for an atomic `Arc` swap). Writers build the
//!   next snapshot off to the side and store it with the same
//!   pointer-sized critical section. A request therefore sees exactly
//!   one version end to end: whatever snapshot it grabbed at routing
//!   time, swaps notwithstanding — no torn reads, no blended models.
//! * **Validation at the trust boundary.** `POST /models` bodies are
//!   checked the way the distributed coordinator checks shard payloads
//!   (`validate_payload`): width against the active model, finiteness
//!   of every loading / eigenvalue / mean, non-negative eigenvalues,
//!   unit-norm rule directions. A hostile or corrupt artifact is
//!   rejected with a reason, counted, and never reaches the hot path.
//! * **Shadow routing off the response path.** A version marked as
//!   shadow (canary) gets every filled `/predict` row replayed against
//!   it on a dedicated worker thread, via a bounded channel that drops
//!   (and counts) rather than backpressures. Divergences from the
//!   active answer are compared `f64::to_bits`-exact and counted —
//!   the bit-identity contract, applied across versions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use dataset::holes::HoledRow;
use obs::json::JsonValue;
use obs::names;
use ratio_rules::predictor::{ColAvgs, Predictor};
use ratio_rules::resilience::ServedModel;

use crate::queue::{BatchConfig, Batcher, ServeModel};

/// Most versions retained at once; publishing past this evicts the
/// oldest version that is neither active nor shadow (its batcher is
/// drained and joined off the swap path).
pub const MAX_VERSIONS: usize = 8;

/// Bounded shadow-replay queue; overflow drops (and counts) instead of
/// slowing the response path.
const SHADOW_QUEUE: usize = 256;

/// One registered model version and its serving machinery.
pub struct ModelHandle {
    name: String,
    version: u64,
    model: Arc<ServeModel>,
    batcher: Batcher,
    floor: ColAvgs,
    rules_doc: String,
}

impl ModelHandle {
    /// Human-chosen model name (`"boot"` for the process-start model).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotone registry-assigned version.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The model itself.
    #[must_use]
    pub fn model(&self) -> &Arc<ServeModel> {
        &self.model
    }

    /// This version's batching core.
    #[must_use]
    pub fn batcher(&self) -> &Batcher {
        &self.batcher
    }

    /// The col-avgs floor for this version (load shedding target).
    #[must_use]
    pub fn floor(&self) -> &ColAvgs {
        &self.floor
    }

    /// The `/rules` document for this version.
    #[must_use]
    pub fn rules_doc(&self) -> &str {
        &self.rules_doc
    }

    /// Whether this version is itself the degraded col-avgs floor.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.model.is_degraded()
    }

    /// Single-shot fill against this version — the oracle path the
    /// batcher must match bit-for-bit, reused by the shadow worker.
    ///
    /// # Errors
    /// Propagates solver errors as text.
    pub fn fill_single(&self, row: &HoledRow) -> Result<Vec<f64>, String> {
        match self.model.as_ref() {
            ServeModel::Rules(bp) => bp.predictor().fill(row),
            ServeModel::ColAvgs(ca) => ca.fill(row),
        }
        .map_err(|e| e.to_string())
    }
}

/// An immutable view of the registry at one instant. Requests resolve
/// their model handle from one snapshot and keep using it; a swap
/// mid-request cannot mix versions.
pub struct RegistrySnapshot {
    active: Arc<ModelHandle>,
    shadow: Option<Arc<ModelHandle>>,
    versions: Vec<Arc<ModelHandle>>,
}

impl RegistrySnapshot {
    /// The version serving unpinned traffic.
    #[must_use]
    pub fn active(&self) -> &Arc<ModelHandle> {
        &self.active
    }

    /// The canary version, when one is set.
    #[must_use]
    pub fn shadow(&self) -> Option<&Arc<ModelHandle>> {
        self.shadow.as_ref()
    }

    /// Every retained version, oldest first.
    #[must_use]
    pub fn versions(&self) -> &[Arc<ModelHandle>] {
        &self.versions
    }

    /// Looks a retained version up by number (request pinning).
    #[must_use]
    pub fn version(&self, v: u64) -> Option<&Arc<ModelHandle>> {
        self.versions.iter().find(|h| h.version == v)
    }
}

struct ShadowJob {
    shadow: Arc<ModelHandle>,
    row: HoledRow,
    active_values: Vec<f64>,
    active_version: u64,
}

/// The registry. One per server; see the module docs for the swap and
/// shadow contracts.
pub struct ModelRegistry {
    snap: Mutex<Arc<RegistrySnapshot>>,
    /// Serializes writers (publish/activate) so concurrent publishes
    /// cannot lose versions; readers never take it.
    writers: Mutex<()>,
    batch_cfg: BatchConfig,
    next_version: AtomicU64,
    shadow_tx: Mutex<Option<mpsc::SyncSender<ShadowJob>>>,
    shadow_worker: Mutex<Option<JoinHandle<()>>>,
}

impl ModelRegistry {
    /// Builds the registry around the process-start model (version 1)
    /// and spawns the shadow worker.
    ///
    /// # Errors
    /// Fails when the initial model cannot produce its col-avgs floor
    /// (zero-width model).
    pub fn start(
        name: &str,
        model: ServeModel,
        batch_cfg: BatchConfig,
    ) -> Result<ModelRegistry, String> {
        let handle = make_handle(name, 1, model, &batch_cfg)?;
        let (tx, rx) = mpsc::sync_channel::<ShadowJob>(SHADOW_QUEUE);
        let worker = std::thread::Builder::new()
            .name("rr-shadow".into())
            .spawn(move || shadow_loop(&rx))
            .ok();
        obs::gauge_set(names::SERVE_MODEL_VERSIONS, 1.0);
        obs::gauge_set(names::SERVE_ACTIVE_MODEL_VERSION, 1.0);
        Ok(ModelRegistry {
            snap: Mutex::new(Arc::new(RegistrySnapshot {
                active: Arc::clone(&handle),
                shadow: None,
                versions: vec![handle],
            })),
            writers: Mutex::new(()),
            batch_cfg,
            next_version: AtomicU64::new(2),
            shadow_tx: Mutex::new(Some(tx)),
            shadow_worker: Mutex::new(worker),
        })
    }

    fn lock_snap(&self) -> MutexGuard<'_, Arc<RegistrySnapshot>> {
        self.snap.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current snapshot — a refcount bump, never blocked by a
    /// publish in progress.
    #[must_use]
    pub fn snapshot(&self) -> Arc<RegistrySnapshot> {
        Arc::clone(&self.lock_snap())
    }

    /// Validates and registers a mined model; optionally activates it
    /// and/or marks it as the shadow (canary). Returns its handle.
    ///
    /// # Errors
    /// Validation failures (shape, finiteness, unit norms) and
    /// floor-construction failures, as text; rejected publishes are
    /// counted under `serve_publish_rejected_total`.
    pub fn publish(
        &self,
        served: ServedModel,
        name: &str,
        activate: bool,
        shadow: bool,
    ) -> Result<Arc<ModelHandle>, String> {
        let result = self.publish_inner(served, name, activate, shadow);
        if result.is_err() {
            obs::counter_add(names::SERVE_PUBLISH_REJECTED_TOTAL, 1);
        }
        result
    }

    fn publish_inner(
        &self,
        served: ServedModel,
        name: &str,
        activate: bool,
        shadow: bool,
    ) -> Result<Arc<ModelHandle>, String> {
        let name = name.trim();
        if name.is_empty() || name.len() > 64 {
            return Err("model name must be 1..=64 characters".into());
        }
        let expected_m = self.snapshot().active.model.n_attributes();
        validate_served(&served, expected_m)?;
        let version = self.next_version.fetch_add(1, Ordering::SeqCst);
        let handle = make_handle(
            name,
            version,
            ServeModel::from_served(served),
            &self.batch_cfg,
        )?;

        let mut evicted: Vec<Arc<ModelHandle>> = Vec::new();
        {
            let _w = self
                .writers
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let old = self.snapshot();
            let mut versions = old.versions.clone();
            versions.push(Arc::clone(&handle));
            let active = if activate {
                Arc::clone(&handle)
            } else {
                Arc::clone(&old.active)
            };
            let shadow_handle = if shadow {
                Some(Arc::clone(&handle))
            } else {
                old.shadow.clone()
            };
            while versions.len() > MAX_VERSIONS {
                let Some(idx) = versions.iter().position(|h| {
                    h.version != active.version
                        && shadow_handle
                            .as_ref()
                            .is_none_or(|s| h.version != s.version)
                }) else {
                    break;
                };
                evicted.push(versions.remove(idx));
            }
            obs::gauge_set(names::SERVE_MODEL_VERSIONS, versions.len() as f64);
            obs::gauge_set(names::SERVE_ACTIVE_MODEL_VERSION, active.version as f64);
            *self.lock_snap() = Arc::new(RegistrySnapshot {
                active,
                shadow: shadow_handle,
                versions,
            });
        }
        obs::counter_add(names::SERVE_MODELS_PUBLISHED_TOTAL, 1);
        obs::flight_event(
            names::EVENT_SERVE_MODEL_PUBLISHED,
            version,
            u64::from(activate),
            0.0,
        );
        if activate {
            obs::counter_add(names::SERVE_MODEL_SWAPS_TOTAL, 1);
            obs::flight_event(names::EVENT_SERVE_MODEL_SWAPPED, version, 0, 0.0);
        }
        // Evicted versions drain outside every lock; in-flight requests
        // that pinned one still hold its Arc and finish normally.
        for h in evicted {
            h.batcher.shutdown();
        }
        Ok(handle)
    }

    /// Re-points unpinned traffic at an already-retained version.
    ///
    /// # Errors
    /// Unknown version numbers.
    pub fn activate(&self, version: u64) -> Result<Arc<ModelHandle>, String> {
        let _w = self
            .writers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let old = self.snapshot();
        let handle = old
            .version(version)
            .cloned()
            .ok_or_else(|| format!("unknown model version {version}"))?;
        obs::gauge_set(names::SERVE_ACTIVE_MODEL_VERSION, version as f64);
        *self.lock_snap() = Arc::new(RegistrySnapshot {
            active: Arc::clone(&handle),
            shadow: old.shadow.clone(),
            versions: old.versions.clone(),
        });
        obs::counter_add(names::SERVE_MODEL_SWAPS_TOTAL, 1);
        obs::flight_event(names::EVENT_SERVE_MODEL_SWAPPED, version, 0, 0.0);
        Ok(handle)
    }

    /// Queues one answered row for shadow replay. No-op without a
    /// shadow, when the shadow *is* the answering version, or when the
    /// bounded queue is full (counted as dropped).
    pub fn shadow_submit(&self, active_version: u64, row: HoledRow, active_values: Vec<f64>) {
        let snap = self.snapshot();
        let Some(shadow) = snap.shadow.as_ref() else {
            return;
        };
        if shadow.version == active_version {
            return;
        }
        let job = ShadowJob {
            shadow: Arc::clone(shadow),
            row,
            active_values,
            active_version,
        };
        let guard = self
            .shadow_tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(tx) = guard.as_ref() {
            if tx.try_send(job).is_err() {
                obs::counter_add(names::SERVE_SHADOW_DROPPED_TOTAL, 1);
            }
        }
    }

    /// `GET /models` document: every retained version plus the shadow
    /// counters.
    #[must_use]
    pub fn list_doc(&self) -> String {
        let snap = self.snapshot();
        let mut versions = snap.versions.clone();
        versions.sort_by_key(|h| h.version);
        let models: Vec<JsonValue> = versions
            .iter()
            .map(|h| {
                JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str(h.name.clone())),
                    ("version".into(), JsonValue::Num(h.version as f64)),
                    ("k".into(), JsonValue::Num(h.model.k() as f64)),
                    (
                        "attributes".into(),
                        JsonValue::Num(h.model.n_attributes() as f64),
                    ),
                    ("degraded".into(), JsonValue::Bool(h.is_degraded())),
                    (
                        "active".into(),
                        JsonValue::Bool(h.version == snap.active.version),
                    ),
                    (
                        "shadow".into(),
                        JsonValue::Bool(
                            snap.shadow
                                .as_ref()
                                .is_some_and(|s| s.version == h.version),
                        ),
                    ),
                ])
            })
            .collect();
        let counter = |name: &str| -> f64 {
            obs::global().snapshot().counter(name).unwrap_or(0) as f64
        };
        JsonValue::Obj(vec![
            (
                "active_version".into(),
                JsonValue::Num(snap.active.version as f64),
            ),
            ("models".into(), JsonValue::Arr(models)),
            (
                "shadow_solves".into(),
                JsonValue::Num(counter(names::SERVE_SHADOW_SOLVES_TOTAL)),
            ),
            (
                "shadow_divergences".into(),
                JsonValue::Num(counter(names::SERVE_SHADOW_DIVERGENCES_TOTAL)),
            ),
        ])
        .write(false)
    }

    /// Starts a drain on every retained version's batcher without
    /// blocking (mirrors [`Batcher::begin_drain`]).
    pub fn begin_drain(&self) {
        for h in self.snapshot().versions() {
            h.batcher.begin_drain();
        }
    }

    /// Stops the shadow worker and drains every batcher. Idempotent.
    pub fn shutdown(&self) {
        // Dropping the sender closes the channel; the worker exits after
        // replaying what is already queued.
        self.shadow_tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        let worker = self
            .shadow_worker
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(h) = worker {
            let _ = h.join();
        }
        for h in self.snapshot().versions() {
            h.batcher.shutdown();
        }
    }
}

impl Drop for ModelRegistry {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn make_handle(
    name: &str,
    version: u64,
    model: ServeModel,
    cfg: &BatchConfig,
) -> Result<Arc<ModelHandle>, String> {
    let floor = ColAvgs::new(model.column_means().to_vec()).map_err(|e| e.to_string())?;
    let rules_doc = model.document();
    let model = Arc::new(model);
    let batcher = Batcher::start(Arc::clone(&model), cfg.clone());
    Ok(Arc::new(ModelHandle {
        name: name.to_string(),
        version,
        model,
        batcher,
        floor,
        rules_doc,
    }))
}

fn shadow_loop(rx: &mpsc::Receiver<ShadowJob>) {
    while let Ok(job) = rx.recv() {
        obs::counter_add(names::SERVE_SHADOW_SOLVES_TOTAL, 1);
        let diverged = match job.shadow.fill_single(&job.row) {
            Ok(values) => {
                values.len() != job.active_values.len()
                    || values
                        .iter()
                        .zip(job.active_values.iter())
                        .any(|(a, b)| a.to_bits() != b.to_bits())
            }
            // A row the shadow cannot solve but the active did is a
            // divergence by definition.
            Err(_) => true,
        };
        if diverged {
            obs::counter_add(names::SERVE_SHADOW_DIVERGENCES_TOTAL, 1);
            obs::flight_event(
                names::EVENT_SERVE_SHADOW_DIVERGED,
                job.shadow.version,
                job.active_version,
                0.0,
            );
        }
    }
}

/// Trust-boundary validation for ingested artifacts, mirroring the
/// coordinator's `validate_payload`: a corrupt or hostile document must
/// be rejected with a reason before any serving structure is built.
fn validate_served(model: &ServedModel, expected_m: usize) -> Result<(), String> {
    match model {
        ServedModel::Rules(rs) => {
            if rs.n_attributes() != expected_m {
                return Err(format!(
                    "model: {} attributes, the server serves {expected_m}",
                    rs.n_attributes()
                ));
            }
            if !rs.column_means().iter().all(|v| v.is_finite()) {
                return Err("model: non-finite column means".into());
            }
            if !rs.spectrum().iter().all(|v| v.is_finite()) {
                return Err("model: non-finite spectrum".into());
            }
            for (i, rule) in rs.rules().iter().enumerate() {
                if rule.loadings.len() != expected_m {
                    return Err(format!("model: rule {i} has the wrong width"));
                }
                if !rule.loadings.iter().all(|v| v.is_finite()) {
                    return Err(format!("model: rule {i} has non-finite loadings"));
                }
                if !rule.eigenvalue.is_finite() || rule.eigenvalue < 0.0 {
                    return Err(format!(
                        "model: rule {i} eigenvalue {} is not a variance",
                        rule.eigenvalue
                    ));
                }
                let norm = rule.loadings.iter().map(|v| v * v).sum::<f64>().sqrt();
                if (norm - 1.0).abs() > 1e-6 {
                    return Err(format!(
                        "model: rule {i} loadings are not unit-norm (|v| = {norm})"
                    ));
                }
            }
        }
        ServedModel::ColAvgs(ca) => {
            if ca.n_attributes() != expected_m {
                return Err(format!(
                    "model: {} attributes, the server serves {expected_m}",
                    ca.n_attributes()
                ));
            }
            if !ca.means().iter().all(|v| v.is_finite()) {
                return Err("model: non-finite column means".into());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Matrix;
    use ratio_rules::cutoff::Cutoff;
    use ratio_rules::miner::RatioRuleMiner;

    fn training(scale: f64) -> Matrix {
        // Rank-1 rows t * (1, 2, 3), scaled: FixedK(1) mines cleanly.
        Matrix::from_fn(30, 3, |i, j| (i as f64 + 1.0) * (j as f64 + 1.0) * scale)
    }

    fn mined(scale: f64) -> ServedModel {
        let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
            .fit_matrix(&training(scale))
            .expect("mine");
        ServedModel::Rules(rules)
    }

    fn registry() -> ModelRegistry {
        let ServedModel::Rules(rules) = mined(1.0) else {
            unreachable!("mined returns rules");
        };
        ModelRegistry::start(
            "boot",
            ServeModel::Rules(ratio_rules::batch::BatchPredictor::new(rules)),
            BatchConfig::default(),
        )
        .expect("registry")
    }

    #[test]
    fn publish_assigns_versions_and_swaps_atomically() {
        let reg = registry();
        assert_eq!(reg.snapshot().active().version(), 1);
        let h2 = reg.publish(mined(2.0), "v2", true, false).expect("publish");
        assert_eq!(h2.version(), 2);
        let snap = reg.snapshot();
        assert_eq!(snap.active().version(), 2);
        assert_eq!(snap.versions().len(), 2);
        // The old version is still pinnable.
        assert!(snap.version(1).is_some());
        reg.shutdown();
    }

    #[test]
    fn non_activating_publish_keeps_traffic_on_the_active() {
        let reg = registry();
        let h = reg.publish(mined(3.0), "staged", false, true).expect("publish");
        let snap = reg.snapshot();
        assert_eq!(snap.active().version(), 1);
        assert_eq!(snap.shadow().map(|s| s.version()), Some(h.version()));
        reg.shutdown();
    }

    #[test]
    fn rejects_wrong_width_and_non_finite_models() {
        let reg = registry();
        // Wrong width: a 2-column model into a 3-column server.
        let narrow = ServedModel::ColAvgs(ColAvgs::new(vec![1.0, 2.0]).expect("floor"));
        assert!(reg.publish(narrow, "narrow", true, false).is_err());
        // Non-finite means.
        let nan = ServedModel::ColAvgs(
            ColAvgs::new(vec![1.0, f64::NAN, 3.0]).expect("floor"),
        );
        assert!(reg.publish(nan, "nan", true, false).is_err());
        // Corrupted loadings: scale a mined rule off unit norm.
        let ServedModel::Rules(rs) = mined(1.0) else {
            unreachable!("mined returns rules");
        };
        let mut rules = rs.rules().to_vec();
        for r in &mut rules {
            for v in &mut r.loadings {
                *v *= 2.0;
            }
        }
        let corrupt = ratio_rules::rules::RuleSet::new(
            rules,
            rs.column_means().to_vec(),
            rs.spectrum().to_vec(),
            rs.attribute_labels().to_vec(),
            rs.n_train(),
        )
        .expect("ruleset");
        assert!(reg
            .publish(ServedModel::Rules(corrupt), "corrupt", true, false)
            .is_err());
        // The registry is untouched.
        assert_eq!(reg.snapshot().versions().len(), 1);
        reg.shutdown();
    }

    #[test]
    fn eviction_never_removes_the_active_or_shadow() {
        let reg = registry();
        for i in 0..(MAX_VERSIONS + 3) {
            reg.publish(mined(1.0 + i as f64), &format!("m{i}"), false, false)
                .expect("publish");
        }
        let snap = reg.snapshot();
        assert!(snap.versions().len() <= MAX_VERSIONS);
        // Version 1 is still active, so it survived every eviction.
        assert_eq!(snap.active().version(), 1);
        assert!(snap.version(1).is_some());
        reg.shutdown();
    }
}
