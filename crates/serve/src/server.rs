//! The TCP front end: accept loop, worker pool, and request routing.
//!
//! One thread accepts connections into a bounded hand-off queue; `N`
//! worker threads pop connections and serve them **persistently**: an
//! incremental [`RequestReader`] parses pipelined HTTP/1.1 requests out
//! of a reused per-connection buffer, and the worker answers
//! `Connection: keep-alive` until the client asks to close, the
//! per-connection request cap is reached, the idle timeout expires, or
//! a drain begins. A worker therefore owns its connection for the
//! connection's whole life — size `threads` to the expected number of
//! concurrent clients, and note that the hand-off `503` now doubles as
//! admission control for connections, not just requests.
//!
//! Models come from the hot-swap [`ModelRegistry`](crate::registry):
//! every request resolves one immutable registry snapshot, so a
//! `POST /models` swap mid-request can never mix versions. `/predict`
//! and friends honor an `x-model-version` pinning header and stamp the
//! answering version on the response.
//!
//! Shutdown is graceful: the accept loop stops, workers finish the
//! connections already handed off, and every batcher drains its queue
//! before [`Server::shutdown`] returns — accepted work is never
//! dropped. [`Server::begin_drain`] starts the same drain without
//! blocking, for staged rollouts (new `/predict` work answers `503` +
//! `Retry-After`, responses switch to `Connection: close`).

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use obs::json::JsonValue;
use obs::names;
use ratio_rules::predictor::Predictor;
use ratio_rules::whatif::{Forecast, Scenario};

use crate::protocol::{HttpError, Request, RequestReader, Response};
use crate::queue::{case_name, BatchConfig, PredictOutcome, ServeModel, SubmitError};
use crate::registry::{ModelHandle, ModelRegistry};

/// Server configuration (the `serve` subcommand maps its flags here).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral
    /// port, which tests use).
    pub addr: String,
    /// HTTP worker threads. With persistent connections each worker
    /// owns one connection at a time, so this is also the concurrent-
    /// connection budget.
    pub threads: usize,
    /// Batching-core knobs (applied to every registered version).
    pub batch: BatchConfig,
    /// Per-connection socket write timeout (and the read timeout while
    /// a request is mid-flight).
    pub io_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Most requests served over one connection before the server
    /// answers `Connection: close` (bounds per-connection state).
    pub max_conn_requests: usize,
    /// When the batch queue is full, answer from the col-avgs floor
    /// (with the `DEGRADED` header) instead of `429` — degrade before
    /// queueing to death. Off by default: explicit backpressure is the
    /// safer contract unless the operator opts into floor answers.
    pub shed_degrade: bool,
    /// Seed for request trace ids (mixed with a per-request sequence, so
    /// equal seeds still yield distinct traces). Deterministic input by
    /// design — no ambient entropy.
    pub trace_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: 4,
            batch: BatchConfig::default(),
            io_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(5),
            max_conn_requests: 1000,
            shed_degrade: false,
            trace_seed: 0x5252_5345_5256_4500, // "RRSERVE\0"
        }
    }
}

struct ConnState {
    queue: VecDeque<TcpStream>,
    closed: bool,
}

struct ConnQueue {
    state: Mutex<ConnState>,
    cv: Condvar,
    cap: usize,
}

impl ConnQueue {
    fn lock(&self) -> MutexGuard<'_, ConnState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Hands a connection to the workers; answers 503 inline when the
    /// hand-off queue is full (connection-level backpressure, distinct
    /// from the batch queue's 429).
    fn push(&self, stream: TcpStream) {
        let mut st = self.lock();
        if st.queue.len() >= self.cap {
            drop(st);
            obs::flight_event(names::EVENT_SERVE_SHED_503, self.cap as u64, 0, 0.0);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            // Consume the request (bounded by the parser's size limits
            // and a short timeout) before answering: closing with unread
            // bytes in the socket turns into an RST that can destroy the
            // 503 before the client reads it.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            let _ = RequestReader::new().next_request(&mut stream);
            let _ = Response::text(503, "worker hand-off queue full\n".into())
                .with_header("retry-after", "1")
                .write_to(&mut stream);
            return;
        }
        st.queue.push_back(stream);
        drop(st);
        self.cv.notify_one();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut st = self.lock();
        loop {
            if let Some(stream) = st.queue.pop_front() {
                return Some(stream);
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }
}

struct Handler {
    registry: Arc<ModelRegistry>,
    io_timeout: Duration,
    idle_timeout: Duration,
    max_conn_requests: usize,
    shed_degrade: bool,
    trace_seed: u64,
    draining: AtomicBool,
    active_conns: AtomicU64,
}

/// A running prediction server.
pub struct Server {
    local_addr: SocketAddr,
    shutting_down: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<ConnQueue>,
    handler: Arc<Handler>,
}

impl Server {
    /// Binds, spawns the accept loop + workers + registry, and returns.
    ///
    /// # Errors
    /// Propagates bind failures (address in use, permission) and a
    /// zero-width boot model.
    pub fn start(cfg: ServerConfig, model: ServeModel) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        seed_boot_families();
        let registry = ModelRegistry::start("boot", model, cfg.batch.clone())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let handler = Arc::new(Handler {
            registry: Arc::new(registry),
            io_timeout: cfg.io_timeout,
            idle_timeout: cfg.idle_timeout,
            max_conn_requests: cfg.max_conn_requests.max(1),
            shed_degrade: cfg.shed_degrade,
            trace_seed: cfg.trace_seed,
            draining: AtomicBool::new(false),
            active_conns: AtomicU64::new(0),
        });
        let threads = cfg.threads.max(1);
        let conns = Arc::new(ConnQueue {
            state: Mutex::new(ConnState {
                queue: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cap: threads * 4,
        });
        let shutting_down = Arc::new(AtomicBool::new(false));

        let accept_conns = Arc::clone(&conns);
        let accept_flag = Arc::clone(&shutting_down);
        let accept = std::thread::Builder::new()
            .name("rr-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(s) => accept_conns.push(s),
                        Err(_) => continue,
                    }
                }
            })
            .ok();

        let workers = (0..threads)
            .filter_map(|i| {
                let conns = Arc::clone(&conns);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("rr-http-{i}"))
                    .spawn(move || {
                        while let Some(stream) = conns.pop() {
                            handle_connection(&handler, stream);
                        }
                    })
                    .ok()
            })
            .collect();

        Ok(Server {
            local_addr,
            shutting_down,
            accept,
            workers,
            conns,
            handler,
        })
    }

    /// The bound address (read the ephemeral port from here).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The model registry (publish/activate programmatically; tests and
    /// the CLI use `POST /models` over the wire instead).
    #[must_use]
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.handler.registry)
    }

    /// Starts a non-blocking drain: new `/predict` submissions answer
    /// `503` + `Retry-After`, every response switches to
    /// `Connection: close`, and already-queued work still completes.
    /// [`shutdown`](Self::shutdown) finishes the job.
    pub fn begin_drain(&self) {
        self.handler.draining.store(true, Ordering::SeqCst);
        self.handler.registry.begin_drain();
    }

    /// Graceful drain: stop accepting, finish handed-off connections,
    /// drain every batch queue, join every thread.
    pub fn shutdown(mut self) {
        self.begin_drain();
        self.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.conns.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.handler.registry.shutdown();
    }
}

/// Most pipelined requests coalesced into one parse→submit→answer pass.
/// Sized to the batcher's default `max_batch`; a deeper client burst
/// still completes, it just spans multiple passes.
const COALESCE_MAX: usize = 32;

fn handle_connection(handler: &Handler, mut stream: TcpStream) {
    obs::counter_add(names::SERVE_CONNECTIONS_TOTAL, 1);
    let active = handler.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
    obs::gauge_set(names::SERVE_CONNECTIONS_ACTIVE, active as f64);
    let _ = stream.set_write_timeout(Some(handler.io_timeout));
    // The idle timeout doubles as the mid-request read timeout: a
    // stalled body is indistinguishable from an idle client at this
    // layer, and both must not pin a worker forever.
    let _ = stream.set_read_timeout(Some(handler.idle_timeout));
    // Nagle + delayed ACK costs ~40ms per response on a persistent
    // connection; responses are single buffered writes, so there is
    // nothing for Nagle to coalesce anyway.
    let _ = stream.set_nodelay(true);
    let mut reader = RequestReader::new();
    let mut served = 0usize;
    // Each outer pass handles one pipelined burst: the first request may
    // block on the socket; successors already sitting in the read-ahead
    // buffer join the same pass. Splitting routing into begin (submit
    // `/predict` rows to the batcher) and finish (collect outcomes)
    // means the whole burst shares one batch window instead of paying
    // it once per request, sequentially — that window is the dominant
    // per-request cost on a loaded keep-alive connection.
    'conn: loop {
        let mut flights: Vec<(InFlight, bool)> = Vec::new();
        let mut fatal: Option<Response> = None;
        loop {
            let parsed = if flights.is_empty() {
                reader.next_request(&mut stream)
            } else {
                reader.next_buffered()
            };
            match parsed {
                Ok(Some(req)) => {
                    served += 1;
                    if served > 1 {
                        obs::counter_add(names::SERVE_KEEPALIVE_REQUESTS_TOTAL, 1);
                    }
                    let close = handler.draining.load(Ordering::SeqCst)
                        || served >= handler.max_conn_requests
                        || req.wants_close();
                    let stop = close || flights.len() + 1 >= COALESCE_MAX;
                    flights.push((route_begin(handler, &req), close));
                    if stop {
                        break;
                    }
                }
                // From `next_buffered`: the buffer holds at most a
                // request prefix — answer what we have, the tail joins
                // the next pass once it arrives.
                Ok(None) if !flights.is_empty() => break,
                // EOF exactly at a request boundary: clean close.
                Ok(None) => break 'conn,
                // Size-limit and syntax errors answer, then close — the
                // remaining bytes of the offending request were never
                // read, so the stream cannot be resynced. Pipelined
                // requests *before* the bad one still get their answers
                // first.
                Err(HttpError::TooLarge(msg)) => {
                    fatal = Some(err_response(413, &msg));
                    break;
                }
                Err(HttpError::Malformed(msg)) => {
                    fatal = Some(err_response(400, &msg));
                    break;
                }
                // Idle timeout or vanished client; nothing to say.
                Err(HttpError::Io(_)) if flights.is_empty() => break 'conn,
                Err(HttpError::Io(_)) => break,
            }
        }
        // Answer strictly in request order (the pipelining contract),
        // serialized into one buffered write for the whole burst.
        let mut wire: Vec<u8> = Vec::new();
        let mut close_conn = false;
        for (flight, close) in flights {
            let response = route_finish(handler, flight);
            if response.status >= 400 && response.status != 429 {
                obs::counter_add(names::SERVE_ERRORS_TOTAL, 1);
            }
            let response = if close { response } else { response.keep_alive() };
            close_conn = close_conn || close;
            // Writing into a Vec cannot fail.
            let _ = response.write_to(&mut wire);
        }
        if let Some(response) = fatal {
            obs::counter_add(names::SERVE_ERRORS_TOTAL, 1);
            let _ = response.write_to(&mut wire);
            close_conn = true;
        }
        let write_ok = stream.write_all(&wire).is_ok() && stream.flush().is_ok();
        if close_conn || !write_ok {
            break;
        }
    }
    let _ = stream.flush();
    let active = handler.active_conns.fetch_sub(1, Ordering::SeqCst) - 1;
    obs::gauge_set(names::SERVE_CONNECTIONS_ACTIVE, active as f64);
}

/// Registers every family in [`names::SERVE_BOOT_FAMILIES`] so the very
/// first `/metrics` scrape already exposes the full serve/scan surface.
/// Data-driven: a family added to the registry list is seeded here with
/// no code change. Fixed-bucket histograms are skipped — their bounds
/// live with the owning subsystem (the batcher registers
/// `serve_batch_size` itself at start).
fn seed_boot_families() {
    let reg = obs::global();
    for &(name, kind) in names::SERVE_BOOT_FAMILIES {
        match kind {
            names::FamilyKind::Counter => {
                reg.counter(name);
            }
            names::FamilyKind::Gauge => {
                // Gauges whose true value is known statically get it;
                // the rest start at zero until their owner writes.
                let seed = if name == names::COVARIANCE_BLOCK_ROWS {
                    ratio_rules::covariance::DEFAULT_BLOCK_ROWS as f64
                } else {
                    0.0
                };
                reg.gauge(name).set(seed);
            }
            names::FamilyKind::Quantile => {
                reg.quantile(name);
            }
            names::FamilyKind::Histogram => {}
        }
    }
}

fn err_response(status: u16, message: &str) -> Response {
    let body = JsonValue::Obj(vec![(
        "error".into(),
        JsonValue::Str(message.to_string()),
    )]);
    Response::json(status, body.write(false))
}

/// Resolves the model handle a request should run against: the active
/// version from one registry snapshot, or the version pinned by the
/// `x-model-version` header.
fn resolve_handle(handler: &Handler, req: &Request) -> Result<Arc<ModelHandle>, Response> {
    let snap = handler.registry.snapshot();
    match req.header("x-model-version") {
        None => Ok(Arc::clone(snap.active())),
        Some(raw) => match raw.parse::<u64>() {
            Ok(v) => snap.version(v).cloned().ok_or_else(|| {
                err_response(404, &format!("model version {v} is not retained"))
            }),
            Err(_) => Err(err_response(
                400,
                "x-model-version must be a decimal version number",
            )),
        },
    }
}

/// A request mid-route: begun (its `/predict` rows are already in the
/// batcher; every other endpoint is fully answered) but not yet
/// finished into a response. The connection worker begins a whole
/// pipelined burst before finishing any of it.
struct InFlight {
    phase: Phase,
    span: obs::TracedSpan,
    trace_id: u64,
    family: &'static str,
    start_us: u64,
}

enum Phase {
    Done(Response),
    Predict {
        handle: Arc<ModelHandle>,
        pending: PendingPredict,
    },
}

fn route_begin(handler: &Handler, req: &Request) -> InFlight {
    obs::counter_add(names::SERVE_REQUESTS_TOTAL, 1);
    // Every request gets its own trace; the span tree is retained in the
    // bounded trace store and served back on /debug/trace?id=<hex>.
    let root = obs::TraceContext::root(handler.trace_seed);
    let start_us = obs::trace::now_us();
    let (span, ctx) = obs::TracedSpan::enter(&root, names::SPAN_SERVE_REQUEST);
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    // Model-backed endpoints resolve one handle from one snapshot and
    // use it end to end: a hot swap mid-request cannot mix versions.
    let model_backed = matches!(path, "/healthz" | "/rules" | "/predict" | "/whatif");
    let handle = if model_backed {
        match resolve_handle(handler, req) {
            Ok(h) => Some(h),
            Err(resp) => {
                return InFlight {
                    phase: Phase::Done(resp),
                    span,
                    trace_id: root.trace_id,
                    family: names::SERVE_REQUEST_US_OTHER,
                    start_us,
                };
            }
        }
    } else {
        None
    };
    let (family, phase) = match (req.method.as_str(), path, handle) {
        ("GET", "/healthz", Some(h)) => (
            names::SERVE_REQUEST_US_HEALTHZ,
            Phase::Done(healthz(handler, &h)),
        ),
        ("GET", "/metrics", _) => (
            names::SERVE_REQUEST_US_METRICS,
            Phase::Done(Response::text(
                200,
                obs::export::to_prometheus(&obs::global().snapshot()),
            )),
        ),
        ("GET", "/rules", Some(h)) => (
            names::SERVE_REQUEST_US_RULES,
            Phase::Done(stamp(Response::json(200, h.rules_doc().to_string()), &h)),
        ),
        ("POST", "/predict", Some(h)) => (
            names::SERVE_REQUEST_US_PREDICT,
            match predict_begin(handler, &h, req, ctx) {
                Ok(pending) => Phase::Predict { handle: h, pending },
                Err(resp) => Phase::Done(resp),
            },
        ),
        ("POST", "/whatif", Some(h)) => {
            (names::SERVE_REQUEST_US_WHATIF, Phase::Done(whatif(&h, req)))
        }
        ("GET", "/models", _) => (
            names::SERVE_REQUEST_US_MODELS,
            Phase::Done(Response::json(200, handler.registry.list_doc())),
        ),
        ("POST", "/models", _) => (
            names::SERVE_REQUEST_US_MODELS,
            Phase::Done(publish(handler, req)),
        ),
        ("GET", "/debug/trace", _) => {
            (names::SERVE_REQUEST_US_DEBUG, Phase::Done(debug_trace(query)))
        }
        ("GET", "/debug/flightrecorder", _) => (
            names::SERVE_REQUEST_US_DEBUG,
            Phase::Done(debug_flightrecorder()),
        ),
        (
            _,
            "/healthz" | "/metrics" | "/rules" | "/predict" | "/whatif" | "/models"
            | "/debug/trace" | "/debug/flightrecorder",
            _,
        ) => (
            names::SERVE_REQUEST_US_OTHER,
            Phase::Done(err_response(405, "method not allowed for this endpoint")),
        ),
        _ => (
            names::SERVE_REQUEST_US_OTHER,
            Phase::Done(err_response(404, "unknown endpoint")),
        ),
    };
    InFlight {
        phase,
        span,
        trace_id: root.trace_id,
        family,
        start_us,
    }
}

/// Collects a begun request into its response: waits out the batcher
/// for `/predict`, then closes the request span and observes the
/// latency quantile. The request's measured latency therefore includes
/// any time it spent parked behind burst-mates — exactly what the
/// client observes on the wire.
fn route_finish(handler: &Handler, flight: InFlight) -> Response {
    let InFlight {
        phase,
        mut span,
        trace_id,
        family,
        start_us,
    } = flight;
    let response = match phase {
        Phase::Done(resp) => resp,
        Phase::Predict { handle, pending } => predict_finish(handler, &handle, pending),
    };
    span.arg("status", f64::from(response.status));
    drop(span);
    obs::observe_quantile(
        family,
        obs::trace::now_us().saturating_sub(start_us) as f64,
    );
    response.with_header("x-trace-id", &format!("{trace_id:016x}"))
}

/// Stamps the answering model version (and `DEGRADED` for the col-avgs
/// floor) on a model-backed response.
fn stamp(response: Response, handle: &ModelHandle) -> Response {
    let response = response.with_header("x-model-version", &handle.version().to_string());
    if handle.is_degraded() {
        response.with_header("DEGRADED", "true")
    } else {
        response
    }
}

/// `GET /debug/trace` — lists retained trace ids; with `?id=<hex>`
/// returns that trace as a Chrome trace-event document (open it in
/// `about:tracing` / Perfetto).
fn debug_trace(query: &str) -> Response {
    let id = query.split('&').find_map(|kv| kv.strip_prefix("id="));
    match id {
        None => {
            let ids: Vec<JsonValue> = obs::trace::trace_ids()
                .iter()
                .map(|id| JsonValue::Str(format!("{id:016x}")))
                .collect();
            Response::json(
                200,
                JsonValue::Obj(vec![("traces".into(), JsonValue::Arr(ids))]).write(false),
            )
        }
        Some(hex) => match u64::from_str_radix(hex, 16) {
            Ok(id) => match obs::trace::get_trace(id) {
                Some(spans) => Response::json(200, obs::chrome_trace_doc(&[(id, spans)])),
                None => err_response(404, "trace not retained (bounded store evicts oldest)"),
            },
            Err(_) => err_response(400, "id must be a hex trace id"),
        },
    }
}

/// `GET /debug/flightrecorder` — the flight recorder's ring contents as
/// JSONL, oldest first (empty body when recording is off or nothing has
/// happened).
fn debug_flightrecorder() -> Response {
    Response::text(200, obs::flight_to_jsonl(&obs::flight_snapshot()))
}

fn healthz(handler: &Handler, handle: &ModelHandle) -> Response {
    let snap = handler.registry.snapshot();
    let body = JsonValue::Obj(vec![
        ("status".into(), JsonValue::Str("ok".into())),
        (
            "attributes".into(),
            JsonValue::Num(handle.model().n_attributes() as f64),
        ),
        ("k".into(), JsonValue::Num(handle.model().k() as f64)),
        ("degraded".into(), JsonValue::Bool(handle.is_degraded())),
        (
            "queue_depth".into(),
            JsonValue::Num(handle.batcher().queue_depth() as f64),
        ),
        (
            "model_version".into(),
            JsonValue::Num(handle.version() as f64),
        ),
        (
            "model_versions".into(),
            JsonValue::Num(snap.versions().len() as f64),
        ),
        (
            "draining".into(),
            JsonValue::Bool(handler.draining.load(Ordering::SeqCst)),
        ),
    ]);
    stamp(Response::json(200, body.write(false)), handle)
}

fn parse_body(req: &Request) -> Result<JsonValue, Response> {
    let text = req
        .body_str()
        .map_err(|e| err_response(400, &e.to_string()))?;
    obs::json::parse(text).map_err(|e| err_response(400, &format!("body: {e}")))
}

fn num_arr(values: &[f64]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| JsonValue::Num(v)).collect())
}

/// How one `/predict` row will be answered: by the batcher, or inline
/// from the col-avgs floor after a shed.
enum RowPlan {
    Queued(mpsc::Receiver<PredictOutcome>),
    Floor,
}

/// A `/predict` request whose rows are already submitted to the batcher
/// but whose outcomes have not been collected yet. Splitting submission
/// from collection lets the connection worker submit every request of a
/// pipelined burst before any of them waits — so one batch window (and
/// one batched solve) covers the burst.
struct PendingPredict {
    rows: Vec<dataset::holes::HoledRow>,
    plans: Vec<RowPlan>,
    shed: bool,
}

/// Parses the request body and submits its rows. Admission-control
/// outcomes (400s, 429 queue-full, 503 draining) come back as `Err` —
/// already-submitted rows of a rejected request are simply abandoned;
/// the batcher solves them into dropped channels.
fn predict_begin(
    handler: &Handler,
    handle: &Arc<ModelHandle>,
    req: &Request,
    ctx: obs::TraceContext,
) -> Result<PendingPredict, Response> {
    let body = parse_body(req)?;
    let rows_v = match body.get("rows") {
        Some(v) => v,
        None => return Err(err_response(400, "missing \"rows\" (an array of rows)")),
    };
    let m = handle.model().n_attributes();
    let rows = dataset::jsonrow::holed_rows_from_json(rows_v, m)
        .map_err(|e| err_response(400, &e.to_string()))?;
    if rows.is_empty() {
        return Err(err_response(400, "\"rows\" is empty"));
    }

    let mut plans = Vec::with_capacity(rows.len());
    let mut shed = false;
    for row in &rows {
        if shed {
            plans.push(RowPlan::Floor);
            continue;
        }
        match handle.batcher().submit_traced(row.clone(), Some(ctx)) {
            Ok(rx) => plans.push(RowPlan::Queued(rx)),
            Err(SubmitError::QueueFull) if handler.shed_degrade => {
                // Degrade before queueing to death: this row and the
                // rest of the request answer from the col-avgs floor.
                shed = true;
                plans.push(RowPlan::Floor);
            }
            Err(SubmitError::QueueFull) => {
                return Err(stamp(
                    err_response(429, "prediction queue full; retry after backing off")
                        .with_header("retry-after", "1"),
                    handle,
                ));
            }
            Err(SubmitError::ShuttingDown) => {
                return Err(stamp(
                    err_response(503, "server is draining for shutdown")
                        .with_header("retry-after", "1"),
                    handle,
                ));
            }
        }
    }
    Ok(PendingPredict { rows, plans, shed })
}

fn predict_finish(
    handler: &Handler,
    handle: &Arc<ModelHandle>,
    pending: PendingPredict,
) -> Response {
    let PendingPredict { rows, plans, shed } = pending;
    // Generous wait: the batcher answers `Expired` itself at the job
    // deadline; this only guards against a wedged batcher thread.
    let wait = handle.batcher().deadline() * 2 + Duration::from_secs(1);
    let mut out_rows = Vec::with_capacity(plans.len());
    let mut filled: Vec<Option<Vec<f64>>> = Vec::with_capacity(plans.len());
    let mut expired = 0usize;
    let mut shed_rows = 0usize;
    for (plan, row) in plans.into_iter().zip(rows.iter()) {
        let outcome = match plan {
            RowPlan::Queued(rx) => rx
                .recv_timeout(wait)
                .unwrap_or(PredictOutcome::Expired),
            RowPlan::Floor => {
                shed_rows += 1;
                match handle.floor().fill(row) {
                    Ok(values) => PredictOutcome::Filled(crate::queue::Prediction {
                        values,
                        case: "col_avgs".into(),
                    }),
                    Err(e) => PredictOutcome::Failed(e.to_string()),
                }
            }
        };
        out_rows.push(match &outcome {
            PredictOutcome::Filled(p) => JsonValue::Obj(vec![
                ("values".into(), num_arr(&p.values)),
                ("case".into(), JsonValue::Str(p.case.clone())),
            ]),
            PredictOutcome::Failed(msg) => {
                JsonValue::Obj(vec![("error".into(), JsonValue::Str(msg.clone()))])
            }
            PredictOutcome::Expired => {
                expired += 1;
                JsonValue::Obj(vec![(
                    "error".into(),
                    JsonValue::Str("deadline expired before this row was solved".into()),
                )])
            }
        });
        filled.push(match outcome {
            // Only batcher-answered rows are shadow-replayed: a floor
            // answer compared against a full-model shadow would always
            // diverge, by design rather than by defect.
            PredictOutcome::Filled(p) if !shed => Some(p.values),
            _ => None,
        });
    }
    if shed_rows > 0 {
        obs::counter_add(names::SERVE_SHED_DEGRADED_TOTAL, shed_rows as u64);
        obs::flight_event(
            names::EVENT_SERVE_SHED_DEGRADED,
            shed_rows as u64,
            handle.version(),
            0.0,
        );
    }
    // Shadow replay happens after every row is answered, off the
    // registry locks; the worker solves on its own thread.
    for (row, values) in rows.iter().zip(filled.iter()) {
        if let Some(values) = values {
            handler
                .registry
                .shadow_submit(handle.version(), row.clone(), values.clone());
        }
    }
    let n = out_rows.len();
    let body = JsonValue::Obj(vec![("rows".into(), JsonValue::Arr(out_rows))]);
    let status = if expired == n { 504 } else { 200 };
    let response = Response::json(status, body.write(false));
    let response = if shed_rows > 0 && !handle.is_degraded() {
        response.with_header("DEGRADED", "true")
    } else {
        response
    };
    stamp(response, handle)
}

/// `POST /models` — ingest a `model_json` artifact into the registry.
///
/// Body: `{"model": <model document>, "name": "...", "activate": bool,
/// "shadow": bool}`; `activate` defaults to true, `shadow` to false.
fn publish(handler: &Handler, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let Some(model_v) = body.get("model") else {
        return err_response(400, "missing \"model\" (a model_json document)");
    };
    let name = body
        .get("name")
        .and_then(JsonValue::as_str)
        .unwrap_or("unnamed");
    let truthy = |key: &str, default: bool| -> bool {
        match body.get(key) {
            Some(JsonValue::Bool(b)) => *b,
            _ => default,
        }
    };
    let activate = truthy("activate", true);
    let shadow = truthy("shadow", false);
    // Re-serialize the subtree and run it through the same parser a
    // `mine` artifact file goes through (bit-exact f64 round-trip).
    let served = match ratio_rules::model_json::model_from_str(&model_v.write(false)) {
        Ok(m) => m,
        Err(e) => {
            obs::counter_add(names::SERVE_PUBLISH_REJECTED_TOTAL, 1);
            return err_response(400, &format!("model: {e}"));
        }
    };
    match handler.registry.publish(served, name, activate, shadow) {
        Ok(handle) => {
            let doc = JsonValue::Obj(vec![
                ("version".into(), JsonValue::Num(handle.version() as f64)),
                ("name".into(), JsonValue::Str(handle.name().to_string())),
                ("active".into(), JsonValue::Bool(activate)),
                ("shadow".into(), JsonValue::Bool(shadow)),
            ]);
            Response::json(200, doc.write(false))
                .with_header("x-model-version", &handle.version().to_string())
        }
        Err(e) => err_response(400, &e),
    }
}

fn forecast_json(f: &Forecast) -> JsonValue {
    JsonValue::Obj(vec![
        ("values".into(), num_arr(&f.values)),
        ("case".into(), JsonValue::Str(case_name(f.case))),
    ])
}

fn whatif(handle: &Arc<ModelHandle>, req: &Request) -> Response {
    let rules = match handle.model().rules() {
        Some(r) => r,
        None => {
            return stamp(
                err_response(
                    503,
                    "what-if needs a full rule set; this server is serving the degraded col-avgs floor",
                ),
                handle,
            );
        }
    };
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let pins = match body.get("pin").and_then(JsonValue::as_obj) {
        Some(p) if !p.is_empty() => p,
        _ => return err_response(400, "missing \"pin\" (object of label -> value)"),
    };
    let mut scenario = Scenario::new(rules);
    for (label, value) in pins {
        let v = match value.as_f64() {
            Some(v) => v,
            None => return err_response(400, &format!("pin {label:?} is not a number")),
        };
        scenario = match scenario.set(label, v) {
            Ok(s) => s,
            Err(e) => return err_response(400, &e.to_string()),
        };
    }

    if let Some(sweep) = body.get("sweep") {
        let label = match sweep.get("attribute").and_then(JsonValue::as_str) {
            Some(l) => l,
            None => return err_response(400, "sweep needs an \"attribute\" label"),
        };
        let values = match sweep.get("values").and_then(JsonValue::as_arr) {
            Some(vs) => vs,
            None => return err_response(400, "sweep needs a \"values\" array"),
        };
        let values: Vec<f64> = match values.iter().map(JsonValue::as_f64).collect() {
            Some(vs) => vs,
            None => return err_response(400, "sweep values must all be numbers"),
        };
        return match scenario.sweep(label, &values) {
            Ok(forecasts) => {
                let arr: Vec<JsonValue> = forecasts.iter().map(forecast_json).collect();
                stamp(
                    Response::json(
                        200,
                        JsonValue::Obj(vec![("forecasts".into(), JsonValue::Arr(arr))])
                            .write(false),
                    ),
                    handle,
                )
            }
            Err(e) => err_response(400, &e.to_string()),
        };
    }

    match scenario.forecast() {
        Ok(f) => stamp(
            Response::json(
                200,
                JsonValue::Obj(vec![("forecast".into(), forecast_json(&f))]).write(false),
            ),
            handle,
        ),
        Err(e) => err_response(400, &e.to_string()),
    }
}
