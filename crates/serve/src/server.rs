//! The TCP front end: accept loop, worker pool, and request routing.
//!
//! One thread accepts connections into a bounded hand-off queue; `N`
//! worker threads pop connections, parse one request each (the protocol
//! is one-shot, `Connection: close`), route it, and reply. `/predict`
//! rows go through the [`Batcher`]; everything else is answered inline.
//! Shutdown is graceful: the accept loop stops, workers finish the
//! connections already handed off, and the batcher drains its queue
//! before [`Server::shutdown`] returns — accepted work is never dropped.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use obs::json::JsonValue;
use obs::names;
use ratio_rules::whatif::{Forecast, Scenario};

use crate::protocol::{read_request, HttpError, Request, Response};
use crate::queue::{case_name, BatchConfig, Batcher, PredictOutcome, ServeModel, SubmitError};

/// Server configuration (the `serve` subcommand maps its flags here).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral
    /// port, which tests use).
    pub addr: String,
    /// HTTP worker threads.
    pub threads: usize,
    /// Batching-core knobs.
    pub batch: BatchConfig,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Seed for request trace ids (mixed with a per-request sequence, so
    /// equal seeds still yield distinct traces). Deterministic input by
    /// design — no ambient entropy.
    pub trace_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: 4,
            batch: BatchConfig::default(),
            io_timeout: Duration::from_secs(10),
            trace_seed: 0x5252_5345_5256_4500, // "RRSERVE\0"
        }
    }
}

struct ConnState {
    queue: VecDeque<TcpStream>,
    closed: bool,
}

struct ConnQueue {
    state: Mutex<ConnState>,
    cv: Condvar,
    cap: usize,
}

impl ConnQueue {
    fn lock(&self) -> MutexGuard<'_, ConnState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Hands a connection to the workers; answers 503 inline when the
    /// hand-off queue is full (connection-level backpressure, distinct
    /// from the batch queue's 429).
    fn push(&self, stream: TcpStream) {
        let mut st = self.lock();
        if st.queue.len() >= self.cap {
            drop(st);
            obs::flight_event(names::EVENT_SERVE_SHED_503, self.cap as u64, 0, 0.0);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = Response::text(503, "worker hand-off queue full\n".into())
                .with_header("retry-after", "1")
                .write_to(&mut stream);
            return;
        }
        st.queue.push_back(stream);
        drop(st);
        self.cv.notify_one();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut st = self.lock();
        loop {
            if let Some(stream) = st.queue.pop_front() {
                return Some(stream);
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }
}

struct Handler {
    model: Arc<ServeModel>,
    batcher: Batcher,
    rules_doc: String,
    degraded: bool,
    io_timeout: Duration,
    trace_seed: u64,
}

/// A running prediction server.
pub struct Server {
    local_addr: SocketAddr,
    shutting_down: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<ConnQueue>,
    handler: Arc<Handler>,
}

impl Server {
    /// Binds, spawns the accept loop + workers + batcher, and returns.
    ///
    /// # Errors
    /// Propagates bind failures (address in use, permission).
    pub fn start(cfg: ServerConfig, model: ServeModel) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        seed_boot_families();
        let model = Arc::new(model);
        let handler = Arc::new(Handler {
            rules_doc: model.document(),
            degraded: model.is_degraded(),
            batcher: Batcher::start(Arc::clone(&model), cfg.batch.clone()),
            model,
            io_timeout: cfg.io_timeout,
            trace_seed: cfg.trace_seed,
        });
        let threads = cfg.threads.max(1);
        let conns = Arc::new(ConnQueue {
            state: Mutex::new(ConnState {
                queue: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cap: threads * 4,
        });
        let shutting_down = Arc::new(AtomicBool::new(false));

        let accept_conns = Arc::clone(&conns);
        let accept_flag = Arc::clone(&shutting_down);
        let accept = std::thread::Builder::new()
            .name("rr-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(s) => accept_conns.push(s),
                        Err(_) => continue,
                    }
                }
            })
            .ok();

        let workers = (0..threads)
            .filter_map(|i| {
                let conns = Arc::clone(&conns);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("rr-http-{i}"))
                    .spawn(move || {
                        while let Some(stream) = conns.pop() {
                            handle_connection(&handler, stream);
                        }
                    })
                    .ok()
            })
            .collect();

        Ok(Server {
            local_addr,
            shutting_down,
            accept,
            workers,
            conns,
            handler,
        })
    }

    /// The bound address (read the ephemeral port from here).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful drain: stop accepting, finish handed-off connections,
    /// drain the batch queue, join every thread.
    pub fn shutdown(mut self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.conns.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.handler.batcher.shutdown();
    }
}

fn handle_connection(handler: &Handler, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(handler.io_timeout));
    let _ = stream.set_write_timeout(Some(handler.io_timeout));
    let response = match read_request(&mut stream) {
        Ok(req) => route(handler, &req),
        Err(HttpError::TooLarge(msg)) => err_response(413, &msg),
        Err(HttpError::Malformed(msg)) => err_response(400, &msg),
        Err(HttpError::Io(_)) => return, // client vanished; nothing to say
    };
    if response.status >= 400 && response.status != 429 {
        obs::counter_add(names::SERVE_ERRORS_TOTAL, 1);
    }
    let response = if handler.degraded {
        response.with_header("DEGRADED", "true")
    } else {
        response
    };
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
}

/// Registers every family in [`names::SERVE_BOOT_FAMILIES`] so the very
/// first `/metrics` scrape already exposes the full serve/scan surface.
/// Data-driven: a family added to the registry list is seeded here with
/// no code change. Fixed-bucket histograms are skipped — their bounds
/// live with the owning subsystem (the batcher registers
/// `serve_batch_size` itself at start).
fn seed_boot_families() {
    let reg = obs::global();
    for &(name, kind) in names::SERVE_BOOT_FAMILIES {
        match kind {
            names::FamilyKind::Counter => {
                reg.counter(name);
            }
            names::FamilyKind::Gauge => {
                // Gauges whose true value is known statically get it;
                // the rest start at zero until their owner writes.
                let seed = if name == names::COVARIANCE_BLOCK_ROWS {
                    ratio_rules::covariance::DEFAULT_BLOCK_ROWS as f64
                } else {
                    0.0
                };
                reg.gauge(name).set(seed);
            }
            names::FamilyKind::Quantile => {
                reg.quantile(name);
            }
            names::FamilyKind::Histogram => {}
        }
    }
}

fn err_response(status: u16, message: &str) -> Response {
    let body = JsonValue::Obj(vec![(
        "error".into(),
        JsonValue::Str(message.to_string()),
    )]);
    Response::json(status, body.write(false))
}

fn route(handler: &Handler, req: &Request) -> Response {
    obs::counter_add(names::SERVE_REQUESTS_TOTAL, 1);
    // Every request gets its own trace; the span tree is retained in the
    // bounded trace store and served back on /debug/trace?id=<hex>.
    let root = obs::TraceContext::root(handler.trace_seed);
    let start_us = obs::trace::now_us();
    let (mut span, ctx) = obs::TracedSpan::enter(&root, names::SPAN_SERVE_REQUEST);
    let (path, query) = match req.path.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.path.as_str(), ""),
    };
    let (family, response) = match (req.method.as_str(), path) {
        ("GET", "/healthz") => (names::SERVE_REQUEST_US_HEALTHZ, healthz(handler)),
        ("GET", "/metrics") => (
            names::SERVE_REQUEST_US_METRICS,
            Response::text(200, obs::export::to_prometheus(&obs::global().snapshot())),
        ),
        ("GET", "/rules") => (
            names::SERVE_REQUEST_US_RULES,
            Response::json(200, handler.rules_doc.clone()),
        ),
        ("POST", "/predict") => (names::SERVE_REQUEST_US_PREDICT, predict(handler, req, ctx)),
        ("POST", "/whatif") => (names::SERVE_REQUEST_US_WHATIF, whatif(handler, req)),
        ("GET", "/debug/trace") => (names::SERVE_REQUEST_US_DEBUG, debug_trace(query)),
        ("GET", "/debug/flightrecorder") => {
            (names::SERVE_REQUEST_US_DEBUG, debug_flightrecorder())
        }
        (
            _,
            "/healthz" | "/metrics" | "/rules" | "/predict" | "/whatif" | "/debug/trace"
            | "/debug/flightrecorder",
        ) => (
            names::SERVE_REQUEST_US_OTHER,
            err_response(405, "method not allowed for this endpoint"),
        ),
        _ => (
            names::SERVE_REQUEST_US_OTHER,
            err_response(404, "unknown endpoint"),
        ),
    };
    span.arg("status", f64::from(response.status));
    drop(span);
    obs::observe_quantile(
        family,
        obs::trace::now_us().saturating_sub(start_us) as f64,
    );
    response.with_header("x-trace-id", &format!("{:016x}", root.trace_id))
}

/// `GET /debug/trace` — lists retained trace ids; with `?id=<hex>`
/// returns that trace as a Chrome trace-event document (open it in
/// `about:tracing` / Perfetto).
fn debug_trace(query: &str) -> Response {
    let id = query.split('&').find_map(|kv| kv.strip_prefix("id="));
    match id {
        None => {
            let ids: Vec<JsonValue> = obs::trace::trace_ids()
                .iter()
                .map(|id| JsonValue::Str(format!("{id:016x}")))
                .collect();
            Response::json(
                200,
                JsonValue::Obj(vec![("traces".into(), JsonValue::Arr(ids))]).write(false),
            )
        }
        Some(hex) => match u64::from_str_radix(hex, 16) {
            Ok(id) => match obs::trace::get_trace(id) {
                Some(spans) => Response::json(200, obs::chrome_trace_doc(&[(id, spans)])),
                None => err_response(404, "trace not retained (bounded store evicts oldest)"),
            },
            Err(_) => err_response(400, "id must be a hex trace id"),
        },
    }
}

/// `GET /debug/flightrecorder` — the flight recorder's ring contents as
/// JSONL, oldest first (empty body when recording is off or nothing has
/// happened).
fn debug_flightrecorder() -> Response {
    Response::text(200, obs::flight_to_jsonl(&obs::flight_snapshot()))
}

fn healthz(handler: &Handler) -> Response {
    let body = JsonValue::Obj(vec![
        ("status".into(), JsonValue::Str("ok".into())),
        (
            "attributes".into(),
            JsonValue::Num(handler.model.n_attributes() as f64),
        ),
        ("k".into(), JsonValue::Num(handler.model.k() as f64)),
        ("degraded".into(), JsonValue::Bool(handler.degraded)),
        (
            "queue_depth".into(),
            JsonValue::Num(handler.batcher.queue_depth() as f64),
        ),
    ]);
    Response::json(200, body.write(false))
}

fn parse_body(req: &Request) -> Result<JsonValue, Response> {
    let text = req
        .body_str()
        .map_err(|e| err_response(400, &e.to_string()))?;
    obs::json::parse(text).map_err(|e| err_response(400, &format!("body: {e}")))
}

fn num_arr(values: &[f64]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| JsonValue::Num(v)).collect())
}

fn predict(handler: &Handler, req: &Request, ctx: obs::TraceContext) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let rows_v = match body.get("rows") {
        Some(v) => v,
        None => return err_response(400, "missing \"rows\" (an array of rows)"),
    };
    let m = handler.model.n_attributes();
    let rows = match dataset::jsonrow::holed_rows_from_json(rows_v, m) {
        Ok(rows) => rows,
        Err(e) => return err_response(400, &e.to_string()),
    };
    if rows.is_empty() {
        return err_response(400, "\"rows\" is empty");
    }

    let mut receivers = Vec::with_capacity(rows.len());
    for row in rows {
        match handler.batcher.submit_traced(row, Some(ctx)) {
            Ok(rx) => receivers.push(rx),
            Err(SubmitError::QueueFull) => {
                return err_response(429, "prediction queue full; retry after backing off")
                    .with_header("retry-after", "1");
            }
            Err(SubmitError::ShuttingDown) => {
                return err_response(503, "server is draining for shutdown");
            }
        }
    }

    // Generous wait: the batcher answers `Expired` itself at the job
    // deadline; this only guards against a wedged batcher thread.
    let wait = handler.batcher.deadline() * 2 + Duration::from_secs(1);
    let mut out_rows = Vec::with_capacity(receivers.len());
    let mut expired = 0usize;
    for rx in receivers {
        let outcome = rx
            .recv_timeout(wait)
            .unwrap_or(PredictOutcome::Expired);
        out_rows.push(match outcome {
            PredictOutcome::Filled(p) => JsonValue::Obj(vec![
                ("values".into(), num_arr(&p.values)),
                ("case".into(), JsonValue::Str(p.case)),
            ]),
            PredictOutcome::Failed(msg) => {
                JsonValue::Obj(vec![("error".into(), JsonValue::Str(msg))])
            }
            PredictOutcome::Expired => {
                expired += 1;
                JsonValue::Obj(vec![(
                    "error".into(),
                    JsonValue::Str("deadline expired before this row was solved".into()),
                )])
            }
        });
    }
    let n = out_rows.len();
    let body = JsonValue::Obj(vec![("rows".into(), JsonValue::Arr(out_rows))]);
    let status = if expired == n { 504 } else { 200 };
    Response::json(status, body.write(false))
}

fn forecast_json(f: &Forecast) -> JsonValue {
    JsonValue::Obj(vec![
        ("values".into(), num_arr(&f.values)),
        ("case".into(), JsonValue::Str(case_name(f.case))),
    ])
}

fn whatif(handler: &Handler, req: &Request) -> Response {
    let rules = match handler.model.rules() {
        Some(r) => r,
        None => {
            return err_response(
                503,
                "what-if needs a full rule set; this server is serving the degraded col-avgs floor",
            );
        }
    };
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let pins = match body.get("pin").and_then(JsonValue::as_obj) {
        Some(p) if !p.is_empty() => p,
        _ => return err_response(400, "missing \"pin\" (object of label -> value)"),
    };
    let mut scenario = Scenario::new(rules);
    for (label, value) in pins {
        let v = match value.as_f64() {
            Some(v) => v,
            None => return err_response(400, &format!("pin {label:?} is not a number")),
        };
        scenario = match scenario.set(label, v) {
            Ok(s) => s,
            Err(e) => return err_response(400, &e.to_string()),
        };
    }

    if let Some(sweep) = body.get("sweep") {
        let label = match sweep.get("attribute").and_then(JsonValue::as_str) {
            Some(l) => l,
            None => return err_response(400, "sweep needs an \"attribute\" label"),
        };
        let values = match sweep.get("values").and_then(JsonValue::as_arr) {
            Some(vs) => vs,
            None => return err_response(400, "sweep needs a \"values\" array"),
        };
        let values: Vec<f64> = match values.iter().map(JsonValue::as_f64).collect() {
            Some(vs) => vs,
            None => return err_response(400, "sweep values must all be numbers"),
        };
        return match scenario.sweep(label, &values) {
            Ok(forecasts) => {
                let arr: Vec<JsonValue> = forecasts.iter().map(forecast_json).collect();
                Response::json(
                    200,
                    JsonValue::Obj(vec![("forecasts".into(), JsonValue::Arr(arr))]).write(false),
                )
            }
            Err(e) => err_response(400, &e.to_string()),
        };
    }

    match scenario.forecast() {
        Ok(f) => Response::json(
            200,
            JsonValue::Obj(vec![("forecast".into(), forecast_json(&f))]).write(false),
        ),
        Err(e) => err_response(400, &e.to_string()),
    }
}
