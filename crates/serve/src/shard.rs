//! Shard worker: scans an assigned row range and serves the result.
//!
//! One worker process owns a replica of the dataset and answers scan
//! assignments over the same std-only HTTP/1.1 protocol the prediction
//! server speaks. The payload is the existing f64-exact
//! [`ScanCheckpoint`] JSON, so a shard's contribution round-trips the
//! wire bit-for-bit and the coordinator can rebuild the accumulator
//! with [`ScanCheckpoint::accumulator`] — the paper's mergeability
//! claim, across a process boundary.
//!
//! Endpoints:
//!
//! | Endpoint        | Meaning                                            |
//! |-----------------|----------------------------------------------------|
//! | `POST /scan`    | scan `[start, end)` under a [`ScanPolicy`], reply with the checkpoint |
//! | `GET /healthz`  | dataset shape + labels + scans served              |
//!
//! The worker is deliberately single-threaded: a coordinator sends one
//! assignment at a time, and a hung scan blocking the health probe is
//! exactly the failure the coordinator's deadline machinery exists to
//! detect.
//!
//! # Chaos
//!
//! A seeded [`ChaosPlan`] injects the distributed failure taxonomy at
//! the worker: **crash** (partial scan, checkpoint dropped to disk,
//! listener closed — connections get `ECONNREFUSED` thereafter),
//! **hang** (sleep past any reasonable deadline, no reply), **slow**
//! (sleep, then reply normally), **corrupt** (one body byte replaced),
//! and **truncate** (full `Content-Length` declared, half the body
//! sent). Draws are a pure function of `(seed, request-seq)`, so a
//! fault schedule is reproducible run to run. The sixth fault class,
//! double-delivery, is coordinator-side (see
//! [`crate::coordinator`]).

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use linalg::Matrix;
use obs::json::JsonValue;
use obs::names;
use ratio_rules::resilience::{ScanCheckpoint, ScanPolicy, Scanner};
use ratio_rules::RatioRuleError;

use crate::protocol::{read_request, reason, HttpError, Request};

/// Shard protocol version carried in every request and response.
pub const SHARD_PROTOCOL_VERSION: usize = 1;

/// One injected fault class. Ordinals are stable (flight-event `a`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Partial scan, checkpoint to disk, listener closed, no reply.
    Crash,
    /// Sleep far past the coordinator's deadline; no reply.
    Hang,
    /// Sleep briefly, then reply normally.
    Slow,
    /// Reply with one body byte replaced (breaks parse or validation).
    Corrupt,
    /// Declare the full `Content-Length` but send half the body.
    Truncate,
    /// Deliver the same (valid) payload twice — applied by the
    /// coordinator's receive path, never by the worker.
    Duplicate,
}

impl Fault {
    /// Stable ordinal for metrics/flight events.
    #[must_use]
    pub fn ordinal(self) -> u64 {
        match self {
            Fault::Crash => 0,
            Fault::Hang => 1,
            Fault::Slow => 2,
            Fault::Corrupt => 3,
            Fault::Truncate => 4,
            Fault::Duplicate => 5,
        }
    }
}

/// SplitMix64 — the same generator the dataset fault plans use, kept
/// dependency-free. One application per draw key is enough mixing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded fault schedule: each request sequence number draws once, and
/// the stacked rate intervals decide which fault (if any) fires.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Base seed; equal seeds give identical fault schedules.
    pub seed: u64,
    /// Probability of a crash per scan request.
    pub crash_rate: f64,
    /// Probability of a hang per scan request.
    pub hang_rate: f64,
    /// Probability of a slow reply per scan request.
    pub slow_rate: f64,
    /// Probability of a corrupted payload per scan request.
    pub corrupt_rate: f64,
    /// Probability of a truncated payload per scan request.
    pub truncate_rate: f64,
    /// Probability of double-delivery (coordinator-side) per payload.
    pub duplicate_rate: f64,
    /// How long a hang sleeps, milliseconds (must exceed the
    /// coordinator deadline to be a hang at all).
    pub hang_ms: u64,
    /// How long a slow reply sleeps, milliseconds (should stay inside
    /// the deadline).
    pub slow_ms: u64,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            seed: 0,
            crash_rate: 0.0,
            hang_rate: 0.0,
            slow_rate: 0.0,
            corrupt_rate: 0.0,
            truncate_rate: 0.0,
            duplicate_rate: 0.0,
            hang_ms: 600,
            slow_ms: 40,
        }
    }
}

impl ChaosPlan {
    /// A plan that never injects anything (the default).
    #[must_use]
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// The fault (if any) request number `seq` draws. Pure function of
    /// `(seed, seq)`: replaying a run replays its faults.
    #[must_use]
    pub fn draw(&self, seq: u64) -> Option<Fault> {
        let x = splitmix64(self.seed ^ seq.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        let mut acc = 0.0;
        for (rate, fault) in [
            (self.crash_rate, Fault::Crash),
            (self.hang_rate, Fault::Hang),
            (self.slow_rate, Fault::Slow),
            (self.corrupt_rate, Fault::Corrupt),
            (self.truncate_rate, Fault::Truncate),
            (self.duplicate_rate, Fault::Duplicate),
        ] {
            acc += rate;
            if u < acc {
                return Some(fault);
            }
        }
        None
    }
}

/// Worker configuration (`mine-shard` maps its flags here).
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Fault injection schedule (all-zero rates = no chaos).
    pub chaos: ChaosPlan,
    /// Where a crashing worker drops its last checkpoint
    /// (`shard_<start>_<end>.json`) for a successor to resume from.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            addr: "127.0.0.1:0".into(),
            io_timeout: Duration::from_secs(10),
            chaos: ChaosPlan::none(),
            checkpoint_dir: None,
        }
    }
}

/// Serializes a [`ScanPolicy`] for the wire.
#[must_use]
pub fn policy_to_json(policy: &ScanPolicy) -> JsonValue {
    match policy {
        ScanPolicy::Strict => JsonValue::Obj(vec![(
            "mode".into(),
            JsonValue::Str("strict".into()),
        )]),
        ScanPolicy::Quarantine {
            max_bad_rows,
            max_bad_fraction,
        } => JsonValue::Obj(vec![
            ("mode".into(), JsonValue::Str("quarantine".into())),
            (
                "max_bad_rows".into(),
                max_bad_rows.map_or(JsonValue::Null, |n| JsonValue::Num(n as f64)),
            ),
            (
                "max_bad_fraction".into(),
                max_bad_fraction.map_or(JsonValue::Null, JsonValue::Num),
            ),
        ]),
    }
}

/// Parses a wire [`ScanPolicy`].
///
/// # Errors
///
/// An unknown `mode` or a missing/mistyped field.
pub fn policy_from_json(v: &JsonValue) -> Result<ScanPolicy, String> {
    match v.get("mode").and_then(JsonValue::as_str) {
        Some("strict") => Ok(ScanPolicy::Strict),
        Some("quarantine") => {
            let opt_num = |key: &str| -> Result<Option<f64>, String> {
                match v.get(key) {
                    None | Some(JsonValue::Null) => Ok(None),
                    Some(n) => n
                        .as_f64()
                        .map(Some)
                        .ok_or_else(|| format!("policy field {key:?} is not a number")),
                }
            };
            Ok(ScanPolicy::Quarantine {
                max_bad_rows: opt_num("max_bad_rows")?.map(|n| n as usize),
                max_bad_fraction: opt_num("max_bad_fraction")?,
            })
        }
        _ => Err("policy needs a \"mode\" of \"strict\" or \"quarantine\"".into()),
    }
}

/// The crash-checkpoint file name for shard `[start, end)`. Worker and
/// coordinator must agree on this, so it lives in one place.
#[must_use]
pub fn checkpoint_file_name(start: usize, end: usize) -> String {
    format!("shard_{start}_{end}.json")
}

struct WorkerState {
    data: Matrix,
    labels: Vec<String>,
    cfg: ShardConfig,
    dead: AtomicBool,
    scan_seq: AtomicU64,
    scans_served: AtomicU64,
}

/// A running shard worker.
pub struct ShardWorker {
    local_addr: SocketAddr,
    state: Arc<WorkerState>,
    closing: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ShardWorker {
    /// Binds and spawns the (single-threaded) accept loop.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(cfg: ShardConfig, data: Matrix, labels: Vec<String>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        crate::coordinator::seed_coord_boot_families();
        let state = Arc::new(WorkerState {
            data,
            labels,
            cfg,
            dead: AtomicBool::new(false),
            scan_seq: AtomicU64::new(0),
            scans_served: AtomicU64::new(0),
        });
        let closing = Arc::new(AtomicBool::new(false));
        let loop_state = Arc::clone(&state);
        let loop_closing = Arc::clone(&closing);
        let accept = std::thread::Builder::new()
            .name("rr-shard".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if loop_closing.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if !handle_connection(&loop_state, stream) {
                        // A crash fault: drop the listener so every
                        // later connect sees ECONNREFUSED, like a dead
                        // process.
                        loop_state.dead.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            })
            .ok();
        Ok(ShardWorker {
            local_addr,
            state,
            closing,
            accept,
        })
    }

    /// The bound address (read the ephemeral port from here).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether a chaos crash has taken the worker down. The `mine-shard`
    /// process polls this and exits non-zero, completing the
    /// process-crash illusion.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.state.dead.load(Ordering::SeqCst)
    }

    /// Stops accepting and joins the loop thread.
    pub fn shutdown(mut self) {
        self.closing.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Writes a response, optionally mutating it per an injected fault.
/// `Content-Length` always declares the full body; a truncate fault
/// under-delivers it so length-enforcing clients see `UnexpectedEof`.
fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    fault: Option<Fault>,
) -> std::io::Result<()> {
    let mut bytes = body.as_bytes().to_vec();
    let mut send_len = bytes.len();
    match fault {
        Some(Fault::Corrupt) if !bytes.is_empty() => {
            let mid = bytes.len() / 2;
            bytes[mid] = b'!';
        }
        Some(Fault::Truncate) => send_len = bytes.len() / 2,
        _ => {}
    }
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        reason(status),
        bytes.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&bytes[..send_len])?;
    stream.flush()
}

fn error_body(message: &str) -> String {
    JsonValue::Obj(vec![(
        "error".into(),
        JsonValue::Str(message.to_string()),
    )])
    .write(false)
}

/// Handles one connection. Returns `false` when a crash fault fired and
/// the accept loop must die.
fn handle_connection(state: &WorkerState, mut stream: TcpStream) -> bool {
    let _ = stream.set_read_timeout(Some(state.cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(state.cfg.io_timeout));
    let req = match read_request(&mut stream) {
        Ok(req) => req,
        Err(HttpError::Io(_)) => return true,
        Err(e) => {
            let _ = write_response(&mut stream, 400, &error_body(&e.to_string()), None);
            return true;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let labels: Vec<JsonValue> = state
                .labels
                .iter()
                .map(|l| JsonValue::Str(l.clone()))
                .collect();
            let body = JsonValue::Obj(vec![
                ("status".into(), JsonValue::Str("ok".into())),
                ("rows".into(), JsonValue::Num(state.data.rows() as f64)),
                ("cols".into(), JsonValue::Num(state.data.cols() as f64)),
                ("labels".into(), JsonValue::Arr(labels)),
                (
                    "scans_served".into(),
                    JsonValue::Num(state.scans_served.load(Ordering::SeqCst) as f64),
                ),
            ]);
            let _ = write_response(&mut stream, 200, &body.write(false), None);
            true
        }
        ("POST", "/scan") => handle_scan(state, &req, &mut stream),
        _ => {
            let _ = write_response(&mut stream, 404, &error_body("unknown endpoint"), None);
            true
        }
    }
}

/// Runs one scan assignment. Returns `false` on a crash fault.
fn handle_scan(state: &WorkerState, req: &Request, stream: &mut TcpStream) -> bool {
    obs::counter_add(names::SHARD_SCAN_REQUESTS_TOTAL, 1);
    let _span = obs::Span::enter(names::SPAN_SHARD_SCAN);
    let seq = state.scan_seq.fetch_add(1, Ordering::SeqCst);
    let fault = state.cfg.chaos.draw(seq);
    if let Some(f) = fault {
        obs::counter_add(names::SHARD_CHAOS_FAULTS_TOTAL, 1);
        obs::flight_event(names::EVENT_SHARD_CHAOS_INJECTED, f.ordinal(), seq, 0.0);
    }
    match fault {
        Some(Fault::Hang) => {
            // rrlint-allow: RR003 chaos sleep, injected latency only
            std::thread::sleep(Duration::from_millis(state.cfg.chaos.hang_ms));
            return true; // drop the connection without replying
        }
        Some(Fault::Slow) => {
            // rrlint-allow: RR003 chaos sleep, injected latency only
            std::thread::sleep(Duration::from_millis(state.cfg.chaos.slow_ms));
        }
        _ => {}
    }

    let parsed = parse_scan_request(req, state.data.rows(), state.data.cols());
    let (start, end, policy, resume) = match parsed {
        Ok(p) => p,
        Err(msg) => {
            let _ = write_response(stream, 400, &error_body(&msg), None);
            return true;
        }
    };
    obs::flight_event(
        names::EVENT_SHARD_SCAN_STARTED,
        start as u64,
        end as u64,
        0.0,
    );

    // A crash fault consumes only part of the range, checkpoints what it
    // has, and dies — the shape a SIGKILL mid-scan leaves behind.
    let crash = matches!(fault, Some(Fault::Crash));
    let scan_end = if crash {
        (start + (end - start).div_ceil(2)).min(end)
    } else {
        end
    };
    let scanner = match resume {
        Some(cp) => Scanner::resume(&cp, policy),
        None => Ok(Scanner::new(state.data.cols(), policy).with_start_row(start)),
    };
    let mut scanner = match scanner {
        Ok(s) => s.with_consumed_limit(scan_end),
        Err(e) => {
            let _ = write_response(stream, 400, &error_body(&e.to_string()), None);
            return true;
        }
    };
    let mut source = dataset::source::MatrixSource::new(&state.data);
    let outcome = scanner.scan(&mut source).map(|r| r.clone());
    match outcome {
        Ok(report) => {
            let checkpoint = scanner.checkpoint();
            if crash {
                if let Some(dir) = &state.cfg.checkpoint_dir {
                    let path = dir.join(checkpoint_file_name(start, end));
                    let _ = std::fs::write(path, checkpoint.to_json());
                }
                return false; // die without replying
            }
            state.scans_served.fetch_add(1, Ordering::SeqCst);
            obs::counter_add(names::SHARD_SCANS_COMPLETED_TOTAL, 1);
            obs::flight_event(
                names::EVENT_SHARD_SCAN_COMPLETED,
                report.rows_absorbed as u64,
                report.rows_quarantined as u64,
                0.0,
            );
            let body = JsonValue::Obj(vec![
                (
                    "version".into(),
                    JsonValue::Num(SHARD_PROTOCOL_VERSION as f64),
                ),
                ("start".into(), JsonValue::Num(start as f64)),
                ("end".into(), JsonValue::Num(end as f64)),
                ("checkpoint".into(), checkpoint.to_json_value()),
            ])
            .write(true);
            let _ = write_response(stream, 200, &body, fault);
            true
        }
        Err(RatioRuleError::BudgetExhausted {
            quarantined,
            scanned,
            limit,
        }) => {
            // The shard's quarantine budget is blown: no retry can help,
            // so the coordinator must treat this as fatal, not as a
            // transport flake.
            let body = JsonValue::Obj(vec![
                ("error".into(), JsonValue::Str(format!("budget exhausted: {limit}"))),
                ("budget_exhausted".into(), JsonValue::Bool(true)),
                ("quarantined".into(), JsonValue::Num(quarantined as f64)),
                ("scanned".into(), JsonValue::Num(scanned as f64)),
            ])
            .write(false);
            let _ = write_response(stream, 422, &body, None);
            true
        }
        Err(e) => {
            let _ = write_response(stream, 500, &error_body(&e.to_string()), None);
            true
        }
    }
}

type ParsedScan = (usize, usize, ScanPolicy, Option<ScanCheckpoint>);

fn parse_scan_request(req: &Request, n_rows: usize, m: usize) -> Result<ParsedScan, String> {
    let text = req.body_str().map_err(|e| e.to_string())?;
    let doc = obs::json::parse(text).map_err(|e| format!("scan body: {e}"))?;
    let int = |key: &str| -> Result<usize, String> {
        doc.get(key)
            .and_then(JsonValue::as_f64)
            .map(|v| v as usize)
            .ok_or_else(|| format!("missing integer field {key:?}"))
    };
    if int("version")? != SHARD_PROTOCOL_VERSION {
        return Err(format!(
            "unsupported shard protocol version (worker speaks {SHARD_PROTOCOL_VERSION})"
        ));
    }
    let (start, end) = (int("start")?, int("end")?);
    if start >= end || end > n_rows {
        return Err(format!(
            "bad range [{start}, {end}) for a {n_rows}-row dataset"
        ));
    }
    let policy = match doc.get("policy") {
        Some(p) => policy_from_json(p)?,
        None => ScanPolicy::Strict,
    };
    let resume = match doc.get("resume") {
        None | Some(JsonValue::Null) => None,
        Some(v) => {
            let cp = ScanCheckpoint::from_json_value(v).map_err(|e| e.to_string())?;
            if cp.m != m || cp.rows_consumed < start || cp.rows_consumed > end {
                return Err(format!(
                    "resume checkpoint (m = {}, consumed = {}) does not fit shard \
                     [{start}, {end}) over {m} columns",
                    cp.m, cp.rows_consumed
                ));
            }
            Some(cp)
        }
    };
    Ok((start, end, policy, resume))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_draws_are_deterministic_and_rate_shaped() {
        let plan = ChaosPlan {
            seed: 7,
            crash_rate: 0.25,
            ..ChaosPlan::none()
        };
        let a: Vec<_> = (0..64).map(|s| plan.draw(s)).collect();
        let b: Vec<_> = (0..64).map(|s| plan.draw(s)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        let crashes = a.iter().filter(|f| **f == Some(Fault::Crash)).count();
        assert!(crashes > 0, "a 25% rate should fire within 64 draws");
        assert!(crashes < 40, "and not fire nearly always");
        let none = ChaosPlan::none();
        assert!((0..64).all(|s| none.draw(s).is_none()));
    }

    #[test]
    fn stacked_rates_cover_every_fault_class() {
        let plan = ChaosPlan {
            seed: 3,
            crash_rate: 1.0 / 6.0,
            hang_rate: 1.0 / 6.0,
            slow_rate: 1.0 / 6.0,
            corrupt_rate: 1.0 / 6.0,
            truncate_rate: 1.0 / 6.0,
            duplicate_rate: 1.0 / 6.0,
            ..ChaosPlan::none()
        };
        let mut seen = std::collections::HashSet::new();
        for s in 0..512 {
            if let Some(f) = plan.draw(s) {
                seen.insert(f.ordinal());
            }
        }
        assert_eq!(seen.len(), 6, "all six classes drawn: {seen:?}");
    }

    #[test]
    fn policy_round_trips_the_wire() {
        for p in [
            ScanPolicy::Strict,
            ScanPolicy::quarantine_unlimited(),
            ScanPolicy::Quarantine {
                max_bad_rows: Some(3),
                max_bad_fraction: Some(0.25),
            },
        ] {
            let wire = policy_to_json(&p);
            assert_eq!(policy_from_json(&wire).unwrap(), p);
        }
        assert!(policy_from_json(&JsonValue::Obj(vec![])).is_err());
    }

    #[test]
    fn checkpoint_file_names_are_stable() {
        assert_eq!(checkpoint_file_name(100, 250), "shard_100_250.json");
    }
}
