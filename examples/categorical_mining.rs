//! Categorical data with Ratio Rules — the paper's future-work item
//! (Sec. 7), built on one-hot indicator encoding.
//!
//! The UCI abalone table actually has a categorical `sex` column
//! (M / F / I) that the paper's numeric matrix dropped; this example
//! restores it (synthetically), mines rules over the encoded table, and
//! then runs both directions of inference:
//!
//! * predict the physical measurements of an infant (`sex = I`);
//! * predict the sex of an animal from its measurements alone.
//!
//! Run with: `cargo run --release --example categorical_mining`

use dataset::categorical::{DecodedValue, MixedColumn, OneHotEncoder};
use dataset::holes::HoledRow;
use dataset::synth::abalone::abalone_like_mixed;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::reconstruct::fill_holes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cols = abalone_like_mixed(2000, 11)?;

    // Indicator scale ~ typical numeric magnitude so the sex block is
    // neither drowned out nor dominant.
    let (encoder, encoded) = OneHotEncoder::fit_encode(&cols, 0.5)?;
    println!(
        "encoded {} mixed columns into {} numeric columns: {:?}\n",
        cols.len(),
        encoder.encoded_width(),
        encoded.col_labels()
    );

    // Keep three rules: the size factor plus both sex contrasts (the
    // 85%-energy heuristic keeps only two here and would leave the
    // infant-vs-adult axis unmodeled, making sex-conditioned forecasts
    // ill-posed — a nice illustration of why the cutoff matters).
    let rules = RatioRuleMiner::new(Cutoff::FixedK(3)).fit_data(&encoded)?;
    println!("{rules}");

    // --- Direction 1: given sex = I, forecast the measurements ---------
    let sex_block = encoder.block_of(0)?;
    let m = encoder.encoded_width();
    let mut row: Vec<Option<f64>> = vec![None; m];
    // sex levels are sorted: F, I, M.
    for (offset, j) in sex_block.clone().enumerate() {
        row[j] = Some(if offset == 1 { 0.5 } else { 0.0 }); // I indicator
    }
    let filled = fill_holes(&rules, &HoledRow::new(row))?;
    println!("expected measurements of an infant:");
    for v in encoder.decode_row(&filled.values)?.iter().skip(1).take(4) {
        if let DecodedValue::Numeric(x) = v {
            print!("  {x:.3}");
        }
    }
    let mut row_adult: Vec<Option<f64>> = vec![None; m];
    for (offset, j) in sex_block.clone().enumerate() {
        row_adult[j] = Some(if offset == 2 { 0.5 } else { 0.0 }); // M indicator
    }
    let filled_adult = fill_holes(&rules, &HoledRow::new(row_adult))?;
    println!("\nexpected measurements of a male:");
    for v in encoder
        .decode_row(&filled_adult.values)?
        .iter()
        .skip(1)
        .take(4)
    {
        if let DecodedValue::Numeric(x) = v {
            print!("  {x:.3}");
        }
    }
    println!("\n(infant predictions should be uniformly smaller)\n");

    // --- Direction 2: classify sex from measurements -------------------
    let mut correct = 0usize;
    let mut total = 0usize;
    let holdout = abalone_like_mixed(300, 99)?;
    let (_, holdout_encoded) = OneHotEncoder::fit_encode(&holdout, 0.5)?;
    let MixedColumn::Categorical { values: truth, .. } = &holdout[0] else {
        unreachable!()
    };
    for (i, t_level) in truth.iter().enumerate() {
        let full = holdout_encoded.row(i);
        let mut probe: Vec<Option<f64>> = full.iter().copied().map(Some).collect();
        for j in sex_block.clone() {
            probe[j] = None; // hide the sex block
        }
        let filled = fill_holes(&rules, &HoledRow::new(probe))?;
        let decoded = encoder.decode_row(&filled.values)?;
        if let DecodedValue::Categorical { level, .. } = &decoded[0] {
            // Count M/F confusion as half-right: the real abalone sexes
            // are physically indistinguishable; infant-vs-adult is the
            // learnable signal.
            if level == t_level || (level != "I" && t_level != "I") {
                correct += 1;
            }
            total += 1;
        }
    }
    println!(
        "sex classification (adult-vs-infant granularity): {}/{} = {:.1}%",
        correct,
        total,
        100.0 * correct as f64 / total as f64
    );
    Ok(())
}
