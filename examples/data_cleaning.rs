//! Data cleaning: repairing missing values in a damaged table
//! (paper Sec. 3, "reconstructing lost data ... perhaps as a result of
//! consolidating data from many heterogeneous sources for use in a data
//! warehouse").
//!
//! We take the abalone-like table, erase a random 5% of the cells, repair
//! them with Ratio Rules, and report the repair error against both the
//! ground truth and the col-avgs baseline.
//!
//! Run with: `cargo run --release --example data_cleaning`

use dataset::holes::HoleSet;
use dataset::split::train_test_split;
use dataset::synth::abalone::abalone_like_sized;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::predictor::{ColAvgs, Predictor, RuleSetPredictor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = abalone_like_sized(2000, 3)?;
    let split = train_test_split(&data, 0.9, 3)?;
    let m = data.n_cols();

    // Train the repair model on the intact 90%.
    let rules = RatioRuleMiner::new(Cutoff::EnergyFraction(0.85)).fit_data(&split.train)?;
    println!("{rules}");
    let rr = RuleSetPredictor::new(rules);
    let baseline = ColAvgs::fit(split.train.matrix())?;

    // Damage the held-out 10%: each row loses 1-3 random cells.
    let test = split.test.matrix();
    let mut rng = StdRng::seed_from_u64(99);
    let mut rr_sq = 0.0_f64;
    let mut ca_sq = 0.0_f64;
    let mut holes_total = 0usize;
    for i in 0..test.rows() {
        let row = test.row(i);
        let h = rng.gen_range(1..=3);
        let mut idx: Vec<usize> = Vec::new();
        while idx.len() < h {
            let j = rng.gen_range(0..m);
            if !idx.contains(&j) {
                idx.push(j);
            }
        }
        let holes = HoleSet::new(idx, m)?;
        let damaged = holes.apply(row)?;
        let repaired = rr.fill(&damaged)?;
        let naive = baseline.fill(&damaged)?;
        for &j in holes.holes() {
            rr_sq += (repaired[j] - row[j]).powi(2);
            ca_sq += (naive[j] - row[j]).powi(2);
            holes_total += 1;
        }
    }
    let rr_rms = (rr_sq / holes_total as f64).sqrt();
    let ca_rms = (ca_sq / holes_total as f64).sqrt();
    println!(
        "repaired {holes_total} damaged cells across {} rows",
        test.rows()
    );
    println!("repair RMS error: Ratio Rules {rr_rms:.4} vs col-avgs {ca_rms:.4}");
    println!("({:.1}x more accurate repairs)", ca_rms / rr_rms);
    Ok(())
}
