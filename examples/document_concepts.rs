//! Latent concepts in a documents-by-terms matrix — the paper's IR
//! interpretation (Sec. 4.1) and its footnote-1 pointer to Lanczos-type
//! solvers for wide matrices, exercised together.
//!
//! A synthetic corpus with four planted topics is mined twice: with the
//! dense eigensolver and with the Lanczos backend (extracting only the
//! top rules, as one would at LSI scale). The recovered "concept rules"
//! are matched against the planted topics.
//!
//! Run with: `cargo run --release --example document_concepts`

use dataset::synth::text::{generate, CorpusConfig};
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::{EigenSolver, RatioRuleMiner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CorpusConfig {
        n_docs: 800,
        n_terms: 240,
        n_topics: 4,
        doc_length: 150,
        noise_fraction: 0.2,
    };
    let corpus = generate(&config, 7)?;
    println!(
        "corpus: {} documents x {} terms, {} planted topics\n",
        corpus.data.n_rows(),
        corpus.data.n_cols(),
        corpus.topic_terms.len()
    );

    // Dense mining (full spectrum).
    let t0 = std::time::Instant::now();
    let dense = RatioRuleMiner::new(Cutoff::FixedK(4)).fit_data(&corpus.data)?;
    let dense_time = t0.elapsed();

    // Lanczos mining (top rules only — the footnote-1 regime).
    let t0 = std::time::Instant::now();
    let lanczos = RatioRuleMiner::new(Cutoff::FixedK(4))
        .with_solver(EigenSolver::Lanczos { max_k: 6 })
        .fit_data(&corpus.data)?;
    let lanczos_time = t0.elapsed();

    println!("dense eigensolve: {dense_time:?}; lanczos top-6: {lanczos_time:?}\n");

    for (name, rules) in [("dense", &dense), ("lanczos", &lanczos)] {
        println!("== concept rules ({name}) ==");
        for (j, rule) in rules.rules().iter().enumerate() {
            // Which planted topic dominates this rule?
            let (topic, mass) = corpus
                .topic_terms
                .iter()
                .enumerate()
                .map(|(t, terms)| {
                    (
                        t,
                        terms.iter().map(|&i| rule.loadings[i].powi(2)).sum::<f64>(),
                    )
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .expect("topics exist");
            let top_terms: Vec<String> = rule
                .dominant_attributes(4)
                .iter()
                .map(|&a| rules.attribute_labels()[a].clone())
                .collect();
            println!(
                "  RR{}: topic {topic} ({:.0}% of loading mass); top terms: {}",
                j + 1,
                mass * 100.0,
                top_terms.join(", ")
            );
        }
        println!();
    }

    // Agreement between the two backends on the strongest rule.
    let cos =
        linalg::vector::cosine(&dense.rule(0).loadings, &lanczos.rule(0).loadings).unwrap_or(0.0);
    println!("RR1 agreement between backends: cosine = {cos:.6}");
    Ok(())
}
