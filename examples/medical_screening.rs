//! Screening a clinical panel for data-entry errors — the paper's
//! "patients and medical test measurements" interpretation (Sec. 4.1)
//! combined with its data-cleaning application (Sec. 3).
//!
//! Workflow: mine Ratio Rules from a month of clean lab panels, then run
//! each incoming record through leave-one-cell-out reconstruction; cells
//! whose actual value disagrees with the reconstruction by more than
//! 2 sigma (the paper's threshold) are routed to manual review. A
//! transposed-digits systolic entry (126 -> 216) is planted to show the
//! catch.
//!
//! Run with: `cargo run --release --example medical_screening`

use dataset::synth::patients::patients_like;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::interpret;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::outlier::OutlierDetector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Last month's verified panels.
    let history = patients_like(2000, 31)?;
    let rules = RatioRuleMiner::new(Cutoff::EnergyFraction(0.9)).fit_data(&history)?;
    println!("{rules}");
    for line in interpret::describe(&rules, 0.25) {
        println!("{line}");
    }

    // Today's batch, with one transposed-digit systolic reading.
    let mut batch = patients_like(40, 77)?.into_matrix();
    let (bad_row, systolic) = (17usize, 2usize);
    let original = batch[(bad_row, systolic)];
    batch[(bad_row, systolic)] = 216.0; // "126" typed as "216"
    println!(
        "\nplanting a transposed-digit error: patient {bad_row} systolic {original:.0} -> 216"
    );

    let detector = OutlierDetector::new(&rules); // 2-sigma, per the paper
    let flagged = detector.cell_outliers(&batch)?;
    println!("\ncells routed to manual review (z > 2):");
    for cell in flagged.iter().take(6) {
        println!(
            "  patient {:>2}, {:<16} actual {:>7.1}, expected {:>7.1}, z = {:.1}",
            cell.row,
            history.col_labels()[cell.col],
            cell.actual,
            cell.expected,
            cell.z_score
        );
    }
    let caught = flagged
        .iter()
        .any(|c| c.row == bad_row && c.col == systolic);
    println!("\nplanted error caught: {caught}");
    Ok(())
}
