//! Outlier detection on the nba-like dataset (paper Sec. 6.1).
//!
//! The paper's scatter plots surface Michael Jordan and Dennis Rodman as
//! the two obvious outliers of the 1991-92 season table. The synthetic
//! stand-in plants analogues of both (plus a Muggsy Bogues analogue);
//! this example recovers them with the reconstruction-based detector and
//! the RR-space projection.
//!
//! Run with: `cargo run --release --example outlier_detection`

use dataset::synth::sports::nba_like;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::outlier::OutlierDetector;
use ratio_rules::visualize::project_2d;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (data, planted) = nba_like(42)?;
    let rules = RatioRuleMiner::new(Cutoff::FixedK(3)).fit_data(&data)?;

    // Row-level outliers: distance from the RR hyperplane.
    let detector = OutlierDetector::new(&rules);
    let scores = detector.row_scores(data.matrix())?;
    println!("top 5 players by distance from the rule hyperplane:");
    for s in scores.iter().take(5) {
        println!(
            "  {:>14}  residual {:10.1}",
            data.row_labels()[s.row],
            s.residual
        );
    }
    let top5: Vec<usize> = scores.iter().take(5).map(|s| s.row).collect();
    println!(
        "\nplanted outliers found in top-5: jordan={} rodman={} bogues={}",
        top5.contains(&planted.jordan),
        top5.contains(&planted.rodman),
        top5.contains(&planted.bogues)
    );

    // Cell-level outliers: corrupt one statistic and find it.
    let mut corrupted = data.matrix().clone();
    let (row, col) = (100, 7); // player100's points
    let original = corrupted[(row, col)];
    corrupted[(row, col)] = original * 6.0 + 500.0;
    println!(
        "\ncorrupting {}'s points: {original:.0} -> {:.0}",
        data.row_labels()[row],
        corrupted[(row, col)]
    );
    let cells = detector.with_threshold(4.0).cell_outliers(&corrupted)?;
    match cells.iter().find(|c| c.row == row && c.col == col) {
        Some(c) => println!(
            "detector flagged it: actual {:.0}, expected {:.0}, z = {:.1}",
            c.actual, c.expected, c.z_score
        ),
        None => println!("detector missed the corruption (top: {:?})", cells.first()),
    }

    // The paper's visual: extremes of the (RR1, RR2) projection.
    let proj = project_2d(&rules, data.matrix(), 0, 1)?;
    println!("\nextremes of the 2-d RR projection (paper: Jordan and Rodman):");
    for &i in proj.extremes(3).iter() {
        let (x, y) = proj.points[i];
        println!("  {:>14}  ({x:8.1}, {y:8.1})", data.row_labels()[i]);
    }
    Ok(())
}
