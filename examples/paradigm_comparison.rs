//! Ratio Rules vs Boolean vs quantitative association rules on the same
//! basket data — the paper's Sec. 6.3 comparison, end to end.
//!
//! Run with: `cargo run --release --example paradigm_comparison`

use assoc::apriori::Apriori;
use assoc::predict::{predict_hole, PredictOutcome};
use assoc::quantitative::QuantitativeMiner;
use assoc::transactions::binarize;
use dataset::holes::HoledRow;
use dataset::synth::quest::{generate, QuestConfig};
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::reconstruct::fill_holes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = QuestConfig {
        n_rows: 2_000,
        n_items: 12,
        ..QuestConfig::default()
    };
    let data = generate(&cfg, 5)?;
    let x = data.matrix();

    // --- Boolean association rules (Apriori) --------------------------
    let transactions = binarize(x, 0.0)?;
    let apriori = Apriori::new(0.08, 0.6)?;
    let itemsets = apriori.frequent_itemsets(&transactions)?;
    let bool_rules = apriori.rules(&itemsets, transactions.len())?;
    println!("== Boolean association rules (binarized amounts) ==");
    println!(
        "{} frequent itemsets, {} rules, needing {} passes over the data",
        itemsets.len(),
        bool_rules.len(),
        Apriori::passes_needed(&itemsets)
    );
    for r in bool_rules.iter().take(3) {
        println!(
            "  {:?} => {:?} (sup {:.2}, conf {:.2})",
            r.antecedent, r.consequent, r.support, r.confidence
        );
    }
    println!("  (amounts were discarded: a $1 and a $40 purchase look identical)\n");

    // --- Quantitative association rules --------------------------------
    let quant = QuantitativeMiner {
        intervals: 4,
        min_support: 0.05,
        min_confidence: 0.5,
    }
    .mine(x)?;
    println!("== Quantitative association rules (interval items) ==");
    println!("{} rules; first three:", quant.rules.len());
    for r in quant.rules.iter().take(3) {
        println!("  {r}");
    }

    // --- Ratio Rules ----------------------------------------------------
    let rules = RatioRuleMiner::new(Cutoff::EnergyFraction(0.85)).fit_data(&data)?;
    println!("\n== Ratio Rules (single pass) ==");
    println!("{rules}");

    // --- Head-to-head: predict item1 given only item0 -------------------
    let probe = 1.5 * rules.column_means()[0].max(1.0) + 30.0; // outside the data range
    println!("prediction task: item0 = ${probe:.2} (an extreme customer), item1 = ?");

    let mut row = vec![None; x.cols()];
    row[0] = Some(probe);
    match predict_hole(&quant, &row, 1)? {
        PredictOutcome::Predicted { value, rules_fired } => {
            println!("  quantitative rules: ${value:.2} ({rules_fired} rules fired)")
        }
        PredictOutcome::NoRuleFires => {
            println!("  quantitative rules: NO RULE FIRES (cannot extrapolate)")
        }
    }
    let mut holed = vec![None; x.cols()];
    holed[0] = Some(probe);
    let filled = fill_holes(&rules, &HoledRow::new(holed))?;
    println!(
        "  ratio rules:        ${:.2} (extrapolates along RR1)",
        filled.values[1]
    );
    println!("  boolean rules:      no numeric prediction is even defined");
    Ok(())
}
