//! Quickstart: mine Ratio Rules from the paper's Figure 1 dataset and
//! guess a missing value.
//!
//! Run with: `cargo run --example quickstart`

use dataset::holes::HoledRow;
use dataset::DataMatrix;
use linalg::Matrix;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::interpret;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::reconstruct::fill_holes;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 1: five customers, dollar amounts spent on
    // (bread, butter).
    let x = Matrix::from_rows(&[
        &[0.89, 0.49],
        &[3.34, 1.85],
        &[5.00, 3.09],
        &[1.78, 0.99],
        &[4.02, 2.61],
    ])?;
    let data = DataMatrix::with_labels(
        x,
        vec![
            "Billie".into(),
            "Charlie".into(),
            "Ella".into(),
            "John".into(),
            "Miles".into(),
        ],
        vec!["bread".into(), "butter".into()],
    )?;

    // Mine with the paper's default cutoff (85% energy, Eq. 1).
    let rules = RatioRuleMiner::new(Cutoff::EnergyFraction(0.85)).fit_data(&data)?;
    println!("{rules}");
    println!("{}", interpret::table(&rules, 0.0));

    let rr1 = rules.rule(0);
    let (bread, butter) = rr1.ratio(0, 1).expect("two attributes");
    println!("RR1: bread : butter = {bread:.3} : {butter:.3}  (paper: 0.866 : 0.5)\n");

    // A new customer bought $10 of bread; how much butter?
    let row = HoledRow::new(vec![Some(10.0), None]);
    let filled = fill_holes(&rules, &row)?;
    println!(
        "customer spends $10.00 on bread -> predicted butter: ${:.2} (case: {:?})",
        filled.values[1], filled.case
    );
    Ok(())
}
