//! Retail forecasting and what-if scenarios on a market-basket dataset.
//!
//! The paper's motivating applications (Sec. 3): "If a customer spends $1
//! on bread and $2.50 on ham, how much will s/he spend on mayonnaise?"
//! and "We expect the demand for Cheerios to double; how much milk should
//! we stock up on?" — run against a Quest-style synthetic basket matrix.
//!
//! Run with: `cargo run --release --example retail_forecasting`

use dataset::split::train_test_split;
use dataset::synth::quest::{generate, QuestConfig};
use ratio_rules::cutoff::Cutoff;
use ratio_rules::guessing::GuessingErrorEvaluator;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::predictor::{ColAvgs, RuleSetPredictor};
use ratio_rules::whatif::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 5,000-customer x 30-product basket matrix with planted
    // co-purchase structure.
    let cfg = QuestConfig {
        n_rows: 5_000,
        n_items: 30,
        ..QuestConfig::default()
    };
    let data = generate(&cfg, 2024)?;
    let split = train_test_split(&data, 0.9, 7)?;

    // Mine the rules from the training portion.
    let rules = RatioRuleMiner::new(Cutoff::EnergyFraction(0.85)).fit_data(&split.train)?;
    println!("{rules}");

    // How trustworthy are forecasts from these rules? Check the guessing
    // error on held-out customers against the col-avgs baseline.
    let ev = GuessingErrorEvaluator::default();
    let rr = RuleSetPredictor::new(rules.clone());
    let baseline = ColAvgs::fit(split.train.matrix())?;
    let ge_rr = ev.ge1(&rr, split.test.matrix())?;
    let ge_ca = ev.ge1(&baseline, split.test.matrix())?;
    println!("GE_1 on held-out customers: RR {ge_rr:.3} vs col-avgs {ge_ca:.3}");
    println!(
        "(forecasts are {:.1}x more accurate than naive averages)\n",
        ge_ca / ge_rr
    );

    // Forecasting: a customer's partial basket.
    let scenario = Scenario::new(&rules)
        .set("item0", 12.0)?
        .set("item1", 3.5)?;
    let forecast = scenario.forecast()?;
    println!("given item0 = $12.00 and item1 = $3.50, forecast basket (top items):");
    let mut indexed: Vec<(usize, f64)> = forecast.values.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (j, v) in indexed.into_iter().take(8) {
        println!("  {:>7}: ${v:6.2}", forecast.labels[j]);
    }

    // What-if: demand for item2 doubles.
    let base = rules.column_means().to_vec();
    let whatif = Scenario::new(&rules)
        .scale_of_mean("item2", 2.0)?
        .forecast()?;
    println!(
        "\nwhat-if: demand for item2 doubles (${:.2} -> ${:.2}):",
        base[2], whatif.values[2]
    );
    let mut deltas: Vec<(usize, f64)> = whatif
        .values
        .iter()
        .zip(&base)
        .map(|(w, b)| w - b)
        .enumerate()
        .collect();
    deltas.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
    println!("largest knock-on changes to stock up on:");
    for (j, d) in deltas.into_iter().filter(|&(j, _)| j != 2).take(5) {
        println!("  {:>7}: {d:+.2}", whatif.labels[j]);
    }
    Ok(())
}
