//! Live model maintenance over a transaction stream (incremental mining
//! extension) plus EM imputation of an incomplete warehouse table.
//!
//! Two workflows the warehouse setting of the paper's intro implies but
//! the paper leaves implicit:
//!
//! 1. keep a Ratio Rules model fresh as daily batches arrive, without
//!    rescanning history (the single-pass accumulator is a sum);
//! 2. load a table that is *already* full of holes and complete it with
//!    the EM-style imputation loop.
//!
//! Run with: `cargo run --release --example streaming_updates`

use dataset::synth::quest::{generate, QuestConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ratio_rules::cutoff::Cutoff;
use ratio_rules::impute::Imputer;
use ratio_rules::incremental::IncrementalMiner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. streaming updates ------------------------------------------
    let m = 20;
    let mut live = IncrementalMiner::new(m, Cutoff::EnergyFraction(0.85));
    println!("ingesting 7 daily batches of 2,000 transactions each:");
    for day in 0..7 {
        let cfg = QuestConfig {
            n_rows: 2_000,
            n_items: m,
            ..QuestConfig::default()
        };
        let batch = generate(&cfg, 100 + day)?;
        live.observe_matrix(batch.matrix())?;
        let rules = live.rules()?;
        println!(
            "  day {}: {:>6} rows total -> {} rules, {:.1}% energy, RR1 eigenvalue {:.0}",
            day + 1,
            live.n_seen(),
            rules.k(),
            rules.retained_energy() * 100.0,
            rules.rule(0).eigenvalue
        );
    }

    // --- 2. imputing an incomplete table --------------------------------
    println!("\nimputing a damaged table (15% of cells missing):");
    let table = dataset::synth::abalone::abalone_like_sized(500, 77)?;
    let truth = table.matrix();
    let mut rng = StdRng::seed_from_u64(7);
    let holey: Vec<Vec<Option<f64>>> = (0..truth.rows())
        .map(|i| {
            (0..truth.cols())
                .map(|j| {
                    // Keep at least one known cell per row.
                    if j > 0 && rng.gen::<f64>() < 0.15 {
                        None
                    } else {
                        Some(truth[(i, j)])
                    }
                })
                .collect()
        })
        .collect();
    let n_holes: usize = holey.iter().flatten().filter(|v| v.is_none()).count();

    let result = Imputer::default().impute(&holey)?;
    let mut sq = 0.0_f64;
    for (i, row) in holey.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            if v.is_none() {
                sq += (result.matrix[(i, j)] - truth[(i, j)]).powi(2);
            }
        }
    }
    let rms = (sq / n_holes as f64).sqrt();
    println!(
        "  {} holes repaired in {} EM iterations; RMS error {:.4} (column std ~{:.4})",
        n_holes,
        result.iterations,
        rms,
        {
            let stats = dataset::stats::column_stats(truth);
            (stats.variances.iter().sum::<f64>() / stats.variances.len() as f64).sqrt()
        }
    );
    Ok(())
}
