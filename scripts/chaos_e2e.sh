#!/usr/bin/env bash
# Distributed-mining chaos harness: real `mine-shard` worker processes,
# a real `mine-distributed` coordinator, seeded fault injection, and a
# byte-compare against the single-process oracle `mine --shards W`.
#
# Scenarios (exit codes asserted per docs/DISTRIBUTED.md):
#   1. clean fleet            -> exit 0, model `cmp`-identical to oracle
#   2. seeded chaos fleet     -> exit 0 + identical model, or exit 3
#                                with the budget-exhausted report; never
#                                a silently different model
#   3. crash + checkpoint     -> worker dies mid-scan, shard resumes on
#                                the survivor from its checkpoint file,
#                                exit 0 + identical model
#   4. unrecoverable shard    -> inside --max-lost-shards: exit 2 with
#                                the lost row range named
#   5. budget blown           -> beyond --max-lost-shards: exit 3
#
# Usage: ./scripts/chaos_e2e.sh [--quick]
#   --quick   one chaos seed instead of three (CI smoke)
#   RR_BIN    path to a prebuilt ratio-rules binary (skips cargo build)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[ "${1:-}" = "--quick" ] && quick=1

if [ -n "${RR_BIN:-}" ]; then
    bin="$RR_BIN"
else
    cargo build --release -p ratio-rules-cli
    bin="target/release/ratio-rules"
fi
[ -x "$bin" ] || { echo "chaos_e2e: binary not found: $bin" >&2; exit 1; }

work="$(mktemp -d /tmp/rr_chaos_e2e.XXXXXX)"
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT

# Deterministic dataset: correlated columns + integer jitter, no RNG.
csv="$work/data.csv"
{
    echo "bread,milk,butter,eggs"
    for i in $(seq 0 239); do
        echo "$((10 + i)),$((20 + 2 * i + i % 7)),$((5 + i + i % 3)),$((3 + 3 * i))"
    done
} > "$csv"

# Port allocator: mutates the counter in THIS shell (a command
# substitution would increment in a subshell and hand every worker the
# same port). Read the result from $port.
port=18870
next_port() { port=$((port + 1)); }

# Poll a worker's /healthz over bash's /dev/tcp until it answers.
wait_healthy() {
    local p="$1" reply=""
    for _ in $(seq 1 100); do
        if reply="$( { exec 3<>"/dev/tcp/127.0.0.1/$p" &&
                printf 'GET /healthz HTTP/1.1\r\nhost: chaos\r\n\r\n' >&3 &&
                cat <&3; exec 3>&- 3<&-; } 2>/dev/null)" &&
           grep -qF '"status":"ok"' <<<"$reply"; then
            return 0
        fi
        sleep 0.1
    done
    echo "chaos_e2e: worker on port $p never became healthy" >&2
    return 1
}

# start_worker PORT [extra mine-shard flags...]
start_worker() {
    local p="$1"; shift
    "$bin" mine-shard --input "$csv" --port "$p" "$@" > /dev/null 2>&1 &
    pids+=($!)
}

join_ports() {
    local out="" p
    for p in "$@"; do out="$out${out:+,}127.0.0.1:$p"; done
    echo "$out"
}

MINE_FLAGS=(--k 1)

echo "== oracle: single-process mine --shards W =="
for w in 2 3; do
    "$bin" mine --input "$csv" --shards "$w" "${MINE_FLAGS[@]}" \
        --output "$work/oracle_$w.json" > /dev/null
done

echo "== scenario 1: clean 3-worker fleet, bit-identical model =="
next_port; p1=$port; next_port; p2=$port; next_port; p3=$port
start_worker "$p1"; start_worker "$p2"; start_worker "$p3"
wait_healthy "$p1"; wait_healthy "$p2"; wait_healthy "$p3"
out="$("$bin" mine-distributed --workers "$(join_ports "$p1" "$p2" "$p3")" \
    "${MINE_FLAGS[@]}" --output "$work/dist_clean.json")"
grep -qF "3/3 shards merged" <<<"$out" || {
    echo "clean run: summary missing merge line: $out" >&2; exit 1; }
cmp "$work/dist_clean.json" "$work/oracle_3.json" || {
    echo "clean run: distributed model differs from oracle bytes" >&2; exit 1; }
echo "  clean fleet: exit 0, model bytes identical to 'mine --shards 3'"

echo "== scenario 2: seeded chaos (corrupt/truncate/slow + duplicates) =="
seeds="11 22 33"
[ "$quick" -eq 1 ] && seeds="11"
for seed in $seeds; do
    next_port; c1=$port; next_port; c2=$port; next_port; c3=$port
    chaos=(--chaos-seed "$seed" --chaos-corrupt 0.20 --chaos-truncate 0.15
           --chaos-slow 0.15 --chaos-slow-ms 10)
    start_worker "$c1" "${chaos[@]}"
    start_worker "$c2" "${chaos[@]}"
    start_worker "$c3" "${chaos[@]}"
    wait_healthy "$c1"; wait_healthy "$c2"; wait_healthy "$c3"
    set +e
    out="$("$bin" mine-distributed --workers "$(join_ports "$c1" "$c2" "$c3")" \
        "${MINE_FLAGS[@]}" --retries 3 --retry-base-ms 5 \
        --chaos-seed "$seed" --chaos-dup-rate 0.5 \
        --output "$work/dist_chaos_$seed.json" 2>&1)"
    code=$?
    set -e
    case "$code" in
        0)
            cmp "$work/dist_chaos_$seed.json" "$work/oracle_3.json" || {
                echo "seed $seed: chaos run converged to DIFFERENT bytes" >&2
                exit 1
            }
            echo "  seed $seed: converged, model bytes identical to oracle"
            ;;
        3)
            grep -qF "error budget exhausted" <<<"$out" || {
                echo "seed $seed: exit 3 without the budget report: $out" >&2
                exit 1
            }
            echo "  seed $seed: unrecoverable under chaos, failed loudly (exit 3)"
            ;;
        *)
            echo "seed $seed: expected exit 0 or 3, got $code: $out" >&2
            exit 1
            ;;
    esac
done

echo "== scenario 3: crash mid-scan, checkpoint-resumed reassignment =="
ckpt="$work/ckpt"
mkdir -p "$ckpt"
next_port; k1=$port; next_port; k2=$port
start_worker "$k1" --chaos-seed 7 --chaos-crash 1.0 --checkpoint-dir "$ckpt"
start_worker "$k2"
wait_healthy "$k1"; wait_healthy "$k2"
out="$("$bin" mine-distributed --workers "$(join_ports "$k1" "$k2")" \
    "${MINE_FLAGS[@]}" --retries 1 --retry-base-ms 5 --warmup-ms 200 \
    --checkpoint-dir "$ckpt" --output "$work/dist_crash.json")"
ls "$ckpt"/shard_*.json > /dev/null 2>&1 || {
    echo "crash run: no checkpoint file dropped in $ckpt" >&2
    echo "coordinator output was: $out" >&2
    exit 1
}
cmp "$work/dist_crash.json" "$work/oracle_2.json" || {
    echo "crash run: resumed model differs from oracle bytes" >&2; exit 1; }
echo "  crash + resume: exit 0, checkpoint dropped, model identical to 'mine --shards 2'"

echo "== scenario 4: unrecoverable shard inside --max-lost-shards: exit 2 =="
next_port; d1=$port; next_port; d2=$port
start_worker "$d1" --chaos-seed 7 --chaos-crash 1.0
start_worker "$d2"
wait_healthy "$d1"; wait_healthy "$d2"
set +e
out="$("$bin" mine-distributed --workers "$(join_ports "$d1" "$d2")" \
    "${MINE_FLAGS[@]}" --retries 1 --retry-base-ms 5 --warmup-ms 200 \
    --reassign-budget 0 --max-lost-shards 1 \
    --output "$work/dist_degraded.json" 2>&1)"
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "degraded run: expected exit 2, got $code: $out" >&2
    exit 1
fi
grep -qF "LOST 1 shard(s)" <<<"$out" || {
    echo "degraded run: report does not name the lost shard: $out" >&2; exit 1; }
echo "  degraded partial model: exit 2, lost row range reported"

echo "== scenario 5: shard loss beyond --max-lost-shards: exit 3 =="
next_port; b1=$port; next_port; b2=$port
start_worker "$b1" --chaos-seed 7 --chaos-crash 1.0
start_worker "$b2"
wait_healthy "$b1"; wait_healthy "$b2"
set +e
out="$("$bin" mine-distributed --workers "$(join_ports "$b1" "$b2")" \
    "${MINE_FLAGS[@]}" --retries 1 --retry-base-ms 5 --warmup-ms 200 \
    --reassign-budget 0 --max-lost-shards 0 \
    --output "$work/dist_abort.json" 2>&1)"
code=$?
set -e
if [ "$code" -ne 3 ]; then
    echo "abort run: expected exit 3, got $code: $out" >&2
    exit 1
fi
grep -qF "error budget exhausted" <<<"$out" || {
    echo "abort run: missing budget-exhausted report: $out" >&2; exit 1; }
echo "  budget blown: exit 3 with accurate report"

echo "chaos_e2e: OK"
