#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then the perf-path gates
# (benches must compile, hot crates must be clippy-clean).
#
# Run from anywhere: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + tests =="
cargo build --release
cargo test -q

echo "== benches compile (no run) =="
cargo bench -p bench --no-run

echo "== clippy -D warnings (linalg + core) =="
cargo clippy -p linalg -p ratio-rules -- -D warnings

echo "verify: OK"
