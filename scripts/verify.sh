#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then the perf-path gates
# (benches must compile, hot crates must be clippy-clean), then an
# end-to-end instrumented `profile` run on a tiny synthetic matrix.
#
# Run from anywhere: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + tests =="
cargo build --release
cargo test -q

echo "== obs crate: tests =="
cargo test -q -p obs

echo "== benches compile (no run) =="
cargo bench -p bench --no-run

echo "== clippy -D warnings (linalg + core + obs + cli) =="
cargo clippy -p linalg -p ratio-rules -p obs -p ratio-rules-cli -- -D warnings

echo "== profile end-to-end (synthetic, instrumented) =="
metrics_file="$(mktemp /tmp/rr_profile_metrics.XXXXXX.json)"
trap 'rm -f "$metrics_file"' EXIT
out="$(cargo run --release -q --bin ratio-rules -- profile --rows 50 --k 1 --threads 2 --metrics-out "$metrics_file")"
for needle in "spans:" "covariance_scan" "eigensolve" "metrics:" \
              "eigen_iterations" "solver_cache_hits" "ge_h_shard_max_ns"; do
    if ! grep -qF "$needle" <<<"$out"; then
        echo "profile output missing '$needle'" >&2
        echo "$out" >&2
        exit 1
    fi
done
grep -qF "covariance_rows_scanned_total" "$metrics_file" || {
    echo "metrics file missing covariance counter" >&2
    exit 1
}

echo "verify: OK"
