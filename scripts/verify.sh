#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, then the perf-path gates
# (benches must compile, hot crates must be clippy-clean), then an
# end-to-end instrumented `profile` run on a tiny synthetic matrix.
#
# Run from anywhere: ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rrlint: workspace static analysis (gate, stale entries deny) =="
cargo run --release -q -p analyzer --bin rrlint -- check --deny-stale

echo "== rrlint: injected violations must flip the gate =="
lint_probe="$(mktemp -d /tmp/rr_lint_probe.XXXXXX)"
trap 'rm -rf "$lint_probe"' EXIT
cp Cargo.toml lint-baseline.json "$lint_probe/"
cp -r crates "$lint_probe/crates"

# inject FILE: appends stdin to the scratch copy, saving the pristine
# version for probe_check to restore.
inject() {
    cp "$lint_probe/$1" "$lint_probe/pristine.rs.bak"
    cat >> "$lint_probe/$1"
}
# probe_check RULE FILE: the mutated scratch tree must fail the gate
# (exit 1) and report RULE; restores FILE afterwards.
probe_check() {
    local rule="$1" target="$2" out code
    set +e
    out="$(cargo run --release -q -p analyzer --bin rrlint -- check \
        --root "$lint_probe" 2>&1)"
    code=$?
    set -e
    mv "$lint_probe/pristine.rs.bak" "$lint_probe/$target"
    if [ "$code" -ne 1 ]; then
        echo "rrlint probe: expected exit 1 on injected $rule, got $code" >&2
        echo "$out" >&2
        exit 1
    fi
    if ! grep -qF "$rule" <<<"$out"; then
        echo "rrlint probe: injected $rule violation not reported" >&2
        echo "$out" >&2
        exit 1
    fi
    echo "  injected $rule flips check to exit 1: ok"
}

inject crates/core/src/lib.rs <<'EOF'

/// rrlint e2e probe: a deliberate float-equality violation.
pub fn rrlint_probe_rr002(x: f64) -> bool {
    x == 0.25
}
EOF
probe_check RR002 crates/core/src/lib.rs

inject crates/serve/src/lib.rs <<'EOF'

/// rrlint e2e probe: a lock guard held across a blocking call.
pub fn rrlint_probe_rr010(m: &std::sync::Mutex<u64>) -> u64 {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    std::thread::sleep(std::time::Duration::from_millis(1));
    *g
}
EOF
probe_check RR010 crates/serve/src/lib.rs

inject crates/core/src/covariance.rs <<'EOF'

/// rrlint e2e probe: hash-order iteration on the numeric result path.
pub fn rrlint_probe_rr012() -> f64 {
    let m: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    let mut s = 0.0;
    for v in m.values() {
        s += *v;
    }
    s
}
EOF
probe_check RR012 crates/core/src/covariance.rs

inject crates/core/src/lib.rs <<'EOF'

fn rrlint_probe_rr013_leaf() {
    panic!("rrlint probe");
}

/// rrlint e2e probe: a panic reachable from a pub entry point.
pub fn rrlint_probe_rr013() {
    rrlint_probe_rr013_leaf();
}
EOF
probe_check RR013 crates/core/src/lib.rs

rm -rf "$lint_probe"

echo "== tier 1: build + tests =="
cargo build --release
cargo test -q

echo "== obs crate: tests =="
cargo test -q -p obs

echo "== numeric-sanitizer: NaN-injection tests (debug build) =="
cargo test -q -p ratio-rules --features numeric-sanitizer sanitizer
cargo test -q -p linalg --features numeric-sanitizer sanitize

echo "== benches compile (no run) =="
cargo bench -p bench --no-run

echo "== bench --quick: scan-path divergence smoke =="
quick_out="$(cargo bench -q -p bench --bench covariance -- --quick)"
if ! grep -qF "quick bench OK" <<<"$quick_out"; then
    echo "covariance --quick smoke did not report agreement" >&2
    echo "$quick_out" >&2
    exit 1
fi

echo "== clippy -D warnings (whole workspace) =="
cargo clippy --workspace -- -D warnings

echo "== profile end-to-end (synthetic, instrumented) =="
metrics_file="$(mktemp /tmp/rr_profile_metrics.XXXXXX.json)"
trap 'rm -f "$metrics_file"' EXIT
out="$(cargo run --release -q --bin ratio-rules -- profile --rows 50 --k 1 --threads 2 --metrics-out "$metrics_file")"
for needle in "spans:" "covariance_scan" "eigensolve" "metrics:" \
              "eigen_iterations" "solver_cache_hits" "ge_h_shard_max_ns"; do
    if ! grep -qF "$needle" <<<"$out"; then
        echo "profile output missing '$needle'" >&2
        echo "$out" >&2
        exit 1
    fi
done
grep -qF "covariance_rows_scanned_total" "$metrics_file" || {
    echo "metrics file missing covariance counter" >&2
    exit 1
}

echo "== chaos: fault injection end-to-end (exit codes 0/2/3) =="
chaos_dir="$(mktemp -d /tmp/rr_chaos.XXXXXX)"
trap 'rm -f "$metrics_file"; rm -rf "$chaos_dir"' EXIT
csv="$chaos_dir/chaos.csv"
{
    echo "bread,milk,butter"
    for i in $(seq 0 199); do
        echo "$((10 + i)),$((20 + 2 * i)),$((5 + i))"
    done
} > "$csv"
bin="target/release/ratio-rules"

# Clean streaming mine under quarantine: exit 0.
"$bin" mine --input "$csv" --output "$chaos_dir/m0.json" --k 1 --max-bad-rows 5 \
    > /dev/null
echo "  clean scan: exit 0 ok"

# 1% and 10% fault rates inside a generous budget: model mines, exit 2.
for rate in 0.01 0.10; do
    set +e
    out="$("$bin" mine --input "$csv" --output "$chaos_dir/m_$rate.json" --k 1 \
        --fault-rate "$rate" --max-bad-rows 150 --retries 3)"
    code=$?
    set -e
    if [ "$code" -ne 2 ]; then
        echo "fault rate $rate: expected exit 2 (degraded), got $code" >&2
        exit 1
    fi
    grep -qF "quarantined" <<<"$out" || {
        echo "fault rate $rate: report missing quarantine summary" >&2
        exit 1
    }
    echo "  fault rate $rate: exit 2 ok"
done

# Budget blown: exit 3 with the dedicated message.
set +e
err="$("$bin" mine --input "$csv" --output "$chaos_dir/m3.json" --k 1 \
    --fault-rate 0.5 --max-bad-rows 1 2>&1 >/dev/null)"
code=$?
set -e
if [ "$code" -ne 3 ]; then
    echo "expected exit 3 (budget exhausted), got $code" >&2
    exit 1
fi
grep -qF "error budget exhausted" <<<"$err" || {
    echo "budget error message missing: $err" >&2
    exit 1
}
echo "  budget exhaustion: exit 3 ok"

# Strict mode (the default) still fails fast: exit 1.
set +e
"$bin" mine --input "$csv" --output "$chaos_dir/m1.json" --k 1 \
    --fault-rate 0.5 --retries 1 > /dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 1 ]; then
    echo "expected strict fail-fast exit 1, got $code" >&2
    exit 1
fi
echo "  strict fail-fast: exit 1 ok"

# Forced total eigensolve failure degrades to the col-avgs floor: exit 2.
set +e
out="$("$bin" mine --input "$csv" --output "$chaos_dir/m_floor.json" \
    --degrade --ladder none)"
code=$?
set -e
if [ "$code" -ne 2 ]; then
    echo "expected col-avgs degradation exit 2, got $code" >&2
    exit 1
fi
grep -qF "col-avgs baseline" <<<"$out" || {
    echo "degradation output missing col-avgs marker: $out" >&2
    exit 1
}
echo "  eigensolve ladder floor: exit 2 ok"

# Checkpoint + resume across two processes.
"$bin" mine --input "$csv" --output "$chaos_dir/m_cp.json" --k 1 \
    --checkpoint "$chaos_dir/scan_cp.json" > /dev/null
out="$("$bin" mine --input "$csv" --output "$chaos_dir/m_cp2.json" --k 1 \
    --resume "$chaos_dir/scan_cp.json")"
grep -qF "resumed from checkpoint" <<<"$out" || {
    echo "resume output missing checkpoint marker: $out" >&2
    exit 1
}
echo "  checkpoint/resume: ok"

echo "== distributed chaos: workers + coordinator vs oracle (exit 0/2/3) =="
RR_BIN="$bin" ./scripts/chaos_e2e.sh --quick

echo "== serve: HTTP smoke (healthz, predict, metrics) =="
serve_port=17878
serve_pid=""
trap 'rm -f "$metrics_file"; rm -rf "$chaos_dir"; [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null' EXIT
"$bin" serve --model "$chaos_dir/m0.json" --port "$serve_port" \
    --batch-window-us 100 > /dev/null &
serve_pid=$!

# Dependency-free HTTP over bash's /dev/tcp. The server keeps
# connections alive by default now, so each helper asks for
# `connection: close` — the close after the answer is what lets `cat`
# terminate. The keep-alive path gets its own pipelined check below.
http_get() {
    exec 3<>"/dev/tcp/127.0.0.1/$serve_port"
    printf 'GET %s HTTP/1.1\r\nhost: verify\r\nconnection: close\r\n\r\n' "$1" >&3
    cat <&3
    exec 3>&- 3<&-
}
http_post() {
    exec 3<>"/dev/tcp/127.0.0.1/$serve_port"
    printf 'POST %s HTTP/1.1\r\nhost: verify\r\ncontent-length: %s\r\nconnection: close\r\n\r\n%s' \
        "$1" "${#2}" "$2" >&3
    cat <&3
    exec 3>&- 3<&-
}

for _ in $(seq 1 50); do
    if health="$(http_get /healthz 2>/dev/null)" && \
       grep -qF '"status":"ok"' <<<"$health"; then
        break
    fi
    health=""
    sleep 0.1
done
if [ -z "$health" ]; then
    echo "serve: /healthz never came up on port $serve_port" >&2
    exit 1
fi
echo "  /healthz: ok"

predicted="$(http_post /predict '{"rows":[[12.0,null,7.0]]}')"
grep -qF 'HTTP/1.1 200' <<<"$predicted" && grep -qF '"values"' <<<"$predicted" || {
    echo "serve: /predict failed: $predicted" >&2
    exit 1
}
echo "  /predict: ok"

metrics="$(http_get /metrics)"
for needle in serve_requests_total serve_rows_predicted_total serve_batch_size; do
    grep -qF "$needle" <<<"$metrics" || {
        echo "serve: /metrics missing $needle" >&2
        exit 1
    }
done
echo "  /metrics: ok"

# Tail-latency quantile families must be exposed as Prometheus
# summaries: per-endpoint request latency plus the pipeline stages.
for needle in serve_request_us_predict serve_latency_us serve_queue_wait_us \
              serve_solve_us; do
    grep -qF "$needle" <<<"$metrics" || {
        echo "serve: /metrics missing quantile family $needle" >&2
        exit 1
    }
done
grep -qF 'quantile="0.99"' <<<"$metrics" || {
    echo "serve: /metrics missing summary quantile labels" >&2
    exit 1
}
echo "  /metrics quantile families: ok"

# The flight recorder endpoint returns well-formed JSONL; the /predict
# above was batch-coalesced with the recorder armed, so the ring is
# non-empty.
flight_body="$(http_get /debug/flightrecorder | sed '1,/^\r\{0,1\}$/d')"
flight_lines=0
while IFS= read -r line; do
    [ -z "$line" ] && continue
    case "$line" in
        \{*\}) ;;
        *) echo "serve: /debug/flightrecorder non-JSON line: $line" >&2; exit 1 ;;
    esac
    grep -qF '"event":' <<<"$line" && grep -qF '"seq":' <<<"$line" || {
        echo "serve: flight event missing fields: $line" >&2
        exit 1
    }
    flight_lines=$((flight_lines + 1))
done <<<"$flight_body"
if [ "$flight_lines" -lt 1 ]; then
    echo "serve: flight recorder empty after a coalesced /predict" >&2
    exit 1
fi
echo "  /debug/flightrecorder: $flight_lines JSONL events ok"

grep -qF '"traces"' <<<"$(http_get /debug/trace)" || {
    echo "serve: /debug/trace did not list retained traces" >&2
    exit 1
}
echo "  /debug/trace: ok"

# Keep-alive + pipelining: two /predict requests written back-to-back on
# ONE connection; the second asks to close so `cat` terminates. Both
# must answer 200, proving the persistent-connection parser resyncs
# across pipelined request boundaries.
ka_body='{"rows":[[12.0,null,7.0]]}'
exec 3<>"/dev/tcp/127.0.0.1/$serve_port"
printf 'POST /predict HTTP/1.1\r\nhost: verify\r\ncontent-length: %s\r\nconnection: keep-alive\r\n\r\n%sPOST /predict HTTP/1.1\r\nhost: verify\r\ncontent-length: %s\r\nconnection: close\r\n\r\n%s' \
    "${#ka_body}" "$ka_body" "${#ka_body}" "$ka_body" >&3
pipelined="$(cat <&3)"
exec 3>&- 3<&-
ka_count="$(grep -cF 'HTTP/1.1 200' <<<"$pipelined" || true)"
if [ "$ka_count" -ne 2 ]; then
    echo "serve: pipelined keep-alive expected 2x 200, got $ka_count" >&2
    echo "$pipelined" >&2
    exit 1
fi
echo "  keep-alive pipelining: 2 responses on one connection ok"

# Hot swap: mine a second model from different data, publish it into
# the running server's registry over the wire, and check that /predict
# now answers from version 2 while /models reports the swap.
csv2="$chaos_dir/swap.csv"
{
    echo "bread,milk,butter"
    for i in $(seq 0 99); do
        echo "$((7 + 3 * i)),$((11 + i)),$((2 + 2 * i))"
    done
} > "$csv2"
"$bin" mine --input "$csv2" --output "$chaos_dir/m_v2.json" --k 1 > /dev/null
pub_out="$("$bin" publish --model "$chaos_dir/m_v2.json" --name verify-v2 \
    --addr "127.0.0.1:$serve_port")"
grep -qF "published:" <<<"$pub_out" || {
    echo "serve: publish failed: $pub_out" >&2
    exit 1
}
swapped="$(http_post /predict '{"rows":[[12.0,null,7.0]]}')"
grep -qF 'HTTP/1.1 200' <<<"$swapped" && grep -qF 'x-model-version: 2' <<<"$swapped" || {
    echo "serve: post-publish /predict did not answer from version 2: $swapped" >&2
    exit 1
}
models="$(http_get /models)"
grep -qF '"active_version":2' <<<"$models" && grep -qF '"verify-v2"' <<<"$models" || {
    echo "serve: /models did not report the hot swap: $models" >&2
    exit 1
}
echo "  hot swap: publish -> v2 active, stamped on /predict ok"
kill "$serve_pid"
serve_pid=""

echo "== serve-bench --quick: loadgen smoke (non-recording) =="
sb_out="$("$bin" serve-bench --quick --requests 30 --concurrency 3)"
if ! grep -qF "quick serve bench OK" <<<"$sb_out"; then
    echo "serve-bench --quick did not report oracle agreement" >&2
    echo "$sb_out" >&2
    exit 1
fi
grep -qF " 0 errors" <<<"$sb_out" || {
    echo "serve-bench --quick saw request errors" >&2
    echo "$sb_out" >&2
    exit 1
}
echo "  serve-bench quick: ok"

echo "verify: OK"
