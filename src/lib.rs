//! Umbrella crate for the Ratio Rules reproduction workspace.
//!
//! This crate exists so the workspace root can host runnable `examples/` and
//! cross-crate integration `tests/`. It re-exports the member crates so
//! examples can write `use ratio_rules_repro::prelude::*;`.

pub use assoc;
pub use dataset;
pub use linalg;
pub use ratio_rules;

/// Convenient re-exports for examples and integration tests.
pub mod prelude {
    pub use assoc::{apriori::Apriori, quantitative::QuantitativeMiner};
    pub use dataset::{split::train_test_split, DataMatrix};
    pub use linalg::Matrix;
    pub use ratio_rules::{
        cutoff::Cutoff, guessing::GuessingErrorEvaluator, miner::RatioRuleMiner,
        predictor::Predictor, rules::RuleSet,
    };
}
