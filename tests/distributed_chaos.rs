//! Distributed-mining chaos suite: shard workers + supervising
//! coordinator, in-process, under a seeded fault schedule.
//!
//! The contract under test is the strongest one the coordinator makes:
//! a distributed mine over `W` workers either produces an accumulator
//! **bit-identical** to the single-process `mine --shards W` oracle
//! (`covariance_parallel`), or it fails loudly with an accurate
//! accounting of what was lost — never a silently wrong model. Every
//! fault class the [`serve::shard::ChaosPlan`] taxonomy names is
//! exercised: crash (with checkpoint-resumed reassignment), hang,
//! slow, corrupt, truncate, and coordinator-side double delivery.

use std::path::Path;
use std::time::Duration;

use dataset::retry::BackoffPolicy;
use linalg::Matrix;
use ratio_rules::covariance::CovarianceAccumulator;
use ratio_rules::parallel::covariance_parallel;
use ratio_rules::resilience::ScanPolicy;
use ratio_rules::RatioRuleError;
use serve::coordinator::{coordinate, CoordinatorConfig};
use serve::shard::{ChaosPlan, ShardConfig, ShardWorker};

const ROWS: usize = 240;
const COLS: usize = 5;

/// Deterministic low-rank-plus-jitter workload (same family as the
/// scan-equivalence suite): interesting spectra, reproducible bits.
fn workload() -> Matrix {
    Matrix::from_fn(ROWS, COLS, |i, j| {
        let t = 1.0 + i as f64;
        let base = t * [5.0, 4.0, 3.0, 2.0, 1.0][j];
        base + ((i * 13 + j * 7) % 17) as f64 * 0.01
    })
}

fn labels() -> Vec<String> {
    (0..COLS).map(|j| format!("c{j}")).collect()
}

fn start_worker(data: Matrix, chaos: ChaosPlan, dir: Option<&Path>) -> ShardWorker {
    ShardWorker::start(
        ShardConfig {
            addr: "127.0.0.1:0".into(),
            io_timeout: Duration::from_secs(5),
            chaos,
            checkpoint_dir: dir.map(Path::to_path_buf),
        },
        data,
        labels(),
    )
    .expect("bind shard worker")
}

fn start_fleet(plans: &[ChaosPlan], dir: Option<&Path>) -> Vec<ShardWorker> {
    plans
        .iter()
        .map(|chaos| start_worker(workload(), chaos.clone(), dir))
        .collect()
}

/// Fast-timing coordinator config: the fleet is in-process and already
/// bound, so warm-ups and deadlines can be tight without flaking.
fn cfg_for(fleet: &[ShardWorker], shards: usize) -> CoordinatorConfig {
    CoordinatorConfig {
        workers: fleet.iter().map(ShardWorker::addr).collect(),
        shards: Some(shards),
        policy: ScanPolicy::Strict,
        deadline: Duration::from_secs(2),
        backoff: BackoffPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            multiplier: 1.0,
            max_delay: Duration::from_millis(20),
        },
        reassign_budget: 4,
        max_lost_shards: 0,
        checkpoint_dir: None,
        connect_warmup: Duration::from_millis(100),
        chaos: ChaosPlan::none(),
    }
}

fn assert_acc_bits_eq(a: &CovarianceAccumulator, b: &CovarianceAccumulator, what: &str) {
    let (n1, s1, r1) = a.parts();
    let (n2, s2, r2) = b.parts();
    assert_eq!(n1, n2, "{what}: row counts");
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&s1), bits(&s2), "{what}: column sums");
    assert_eq!(bits(&r1), bits(&r2), "{what}: raw moments");
}

/// A clean fleet of W workers merges to the exact bits of the
/// single-process `mine --shards W` oracle, for W in {2, 4, 8}.
#[test]
fn clean_distributed_mine_is_bit_identical_to_single_process() {
    let x = workload();
    for w in [2usize, 4, 8] {
        let fleet = start_fleet(&vec![ChaosPlan::none(); w], None);
        let outcome = coordinate(&cfg_for(&fleet, w)).expect("clean run");
        let oracle = covariance_parallel(&x, w).unwrap();
        assert_acc_bits_eq(&outcome.acc, &oracle, &format!("{w} workers"));
        assert_eq!(outcome.shards, w);
        assert_eq!(outcome.shards_merged, w);
        assert_eq!(outcome.shards_lost, 0);
        assert_eq!(outcome.labels, labels());
        assert!(!outcome.is_degraded());
        for worker in fleet {
            worker.shutdown();
        }
    }
}

/// Seeded chaos across the full fault taxonomy, for 3 seeds x {2, 4, 8}
/// workers. Each run must either converge to the oracle's exact bits or
/// fail with the budget-exhausted error the CLI maps to exit 3 — and
/// across the grid the schedule must actually have injected faults.
#[test]
fn seeded_chaos_converges_bit_identically_or_fails_loudly() {
    let x = workload();
    let mut faults_observed = 0usize;
    for seed in [11u64, 22, 33] {
        for w in [2usize, 4, 8] {
            // Hang is the slowest fault (deadline timeouts); confine it
            // to one seed so the grid stays fast.
            let hang = seed == 33;
            let plan = ChaosPlan {
                seed,
                slow_rate: 0.15,
                corrupt_rate: 0.20,
                truncate_rate: 0.15,
                hang_rate: if hang { 0.15 } else { 0.0 },
                hang_ms: 400,
                slow_ms: 10,
                ..ChaosPlan::none()
            };
            let fleet = start_fleet(&vec![plan; w], None);
            let mut cfg = cfg_for(&fleet, w);
            if hang {
                cfg.deadline = Duration::from_millis(200);
            }
            cfg.chaos = ChaosPlan {
                seed,
                duplicate_rate: 0.5,
                ..ChaosPlan::none()
            };
            match coordinate(&cfg) {
                Ok(outcome) => {
                    let oracle = covariance_parallel(&x, w).unwrap();
                    assert_acc_bits_eq(
                        &outcome.acc,
                        &oracle,
                        &format!("seed {seed}, {w} workers"),
                    );
                    assert!(!outcome.is_degraded(), "nothing was lost or quarantined");
                    faults_observed += outcome.retries
                        + outcome.reassignments
                        + outcome.duplicates_dropped;
                }
                Err(e) => {
                    // Workers that flake past the retry + reassignment
                    // budgets are *allowed* to fail the run — but only
                    // with the loud, exit-3 error, never a wrong model.
                    assert!(
                        matches!(e, RatioRuleError::BudgetExhausted { .. }),
                        "seed {seed}, {w} workers: unexpected error {e}"
                    );
                    faults_observed += 1;
                }
            }
            for worker in fleet {
                worker.shutdown();
            }
        }
    }
    assert!(
        faults_observed > 0,
        "rates this high must inject faults somewhere in a 3x3 grid"
    );
}

/// A worker that crashes mid-scan leaves a checkpoint behind; the
/// coordinator declares it dead, reassigns its shard to the survivor,
/// and the resumed scan still lands on the oracle's exact bits.
#[test]
fn crashed_worker_shard_is_reassigned_and_resumes_from_its_checkpoint() {
    let x = workload();
    let dir = std::env::temp_dir().join(format!("rr_chaos_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let plans = [
        ChaosPlan {
            seed: 1,
            crash_rate: 1.0,
            ..ChaosPlan::none()
        },
        ChaosPlan::none(),
    ];
    let fleet = start_fleet(&plans, Some(&dir));
    let mut cfg = cfg_for(&fleet, 2);
    cfg.checkpoint_dir = Some(dir.clone());
    cfg.connect_warmup = Duration::from_millis(50);
    let outcome = coordinate(&cfg).expect("run must recover via reassignment");

    assert_eq!(outcome.workers_lost, 1);
    assert_eq!(outcome.reassignments, 1);
    assert_eq!(outcome.checkpoint_resumes, 1, "the crash checkpoint was used");
    assert_eq!(outcome.shards_lost, 0);
    assert_acc_bits_eq(
        &outcome.acc,
        &covariance_parallel(&x, 2).unwrap(),
        "checkpoint-resumed",
    );
    // The crash dropped the half-scanned shard [0, 120) to disk, and the
    // worker is observably dead (the CLI would now exit 1).
    assert!(dir.join("shard_0_120.json").exists());
    assert!(fleet[0].is_dead());
    for worker in fleet {
        worker.shutdown();
    }
}

/// At-least-once delivery: with every payload replayed, the per-shard
/// slot guard must drop the duplicates — absorbing one twice would
/// double its rows and break bit-identity.
#[test]
fn duplicate_deliveries_are_dropped_not_double_counted() {
    let x = workload();
    let fleet = start_fleet(&[ChaosPlan::none(), ChaosPlan::none()], None);
    let mut cfg = cfg_for(&fleet, 2);
    cfg.chaos = ChaosPlan {
        seed: 9,
        duplicate_rate: 1.0,
        ..ChaosPlan::none()
    };
    let outcome = coordinate(&cfg).unwrap();
    assert_eq!(outcome.duplicates_dropped, 2, "one replay per shard, both dropped");
    assert_eq!(outcome.acc.n_rows(), ROWS, "no row was counted twice");
    assert_acc_bits_eq(
        &outcome.acc,
        &covariance_parallel(&x, 2).unwrap(),
        "double delivery",
    );
    for worker in fleet {
        worker.shutdown();
    }
}

/// With no reassignment budget and no checkpoint, a crashing worker's
/// shard is unrecoverable: inside `max_lost_shards` the run completes
/// degraded with an exact account of the missing rows; beyond it the
/// run fails with the exit-3 error.
#[test]
fn unrecoverable_shard_degrades_within_budget_and_fails_beyond_it() {
    let x = workload();
    let crashy = || {
        [
            ChaosPlan {
                seed: 5,
                crash_rate: 1.0,
                ..ChaosPlan::none()
            },
            ChaosPlan::none(),
        ]
    };

    // Within budget: a partial-data model plus an accurate report.
    let fleet = start_fleet(&crashy(), None);
    let mut cfg = cfg_for(&fleet, 2);
    cfg.reassign_budget = 0;
    cfg.max_lost_shards = 1;
    cfg.connect_warmup = Duration::from_millis(50);
    let outcome = coordinate(&cfg).expect("one lost shard is inside the budget");
    assert!(outcome.is_degraded());
    assert_eq!(outcome.shards_lost, 1);
    assert_eq!(outcome.lost_ranges, vec![(0, ROWS / 2)]);
    assert_eq!(outcome.acc.n_rows(), ROWS - ROWS / 2);
    // The surviving half is exactly the serial fold of rows [120, 240).
    let mut survivor = CovarianceAccumulator::new(COLS);
    for i in ROWS / 2..ROWS {
        survivor.push_row(x.row(i)).unwrap();
    }
    assert_acc_bits_eq(&outcome.acc, &survivor, "surviving shard");
    let summary = outcome.summary();
    assert!(summary.contains("LOST 1 shard(s)"), "{summary}");
    assert!(summary.contains("rows [0, 120)"), "{summary}");
    for worker in fleet {
        worker.shutdown();
    }

    // Beyond budget: the loud failure the CLI maps to exit 3.
    let fleet = start_fleet(&crashy(), None);
    let mut cfg = cfg_for(&fleet, 2);
    cfg.reassign_budget = 0;
    cfg.max_lost_shards = 0;
    cfg.connect_warmup = Duration::from_millis(50);
    match coordinate(&cfg) {
        Err(RatioRuleError::BudgetExhausted { quarantined, .. }) => {
            assert_eq!(quarantined, 1, "exactly one shard was unrecoverable");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    for worker in fleet {
        worker.shutdown();
    }
}

fn workload_with_nan() -> Matrix {
    let clean = workload();
    Matrix::from_fn(ROWS, COLS, |i, j| {
        if i == 7 && j == 3 {
            f64::NAN
        } else {
            clean.row(i)[j]
        }
    })
}

/// A worker whose quarantine budget blows answers 422; the coordinator
/// must treat that as fatal (a retry cannot un-quarantine rows), while a
/// tolerant policy completes degraded with the quarantine accounted.
#[test]
fn worker_quarantine_budget_exhaustion_aborts_the_run() {
    // Zero-tolerance policy: the NaN row is fatal.
    let fleet: Vec<ShardWorker> = (0..2)
        .map(|_| start_worker(workload_with_nan(), ChaosPlan::none(), None))
        .collect();
    let mut cfg = cfg_for(&fleet, 2);
    cfg.policy = ScanPolicy::Quarantine {
        max_bad_rows: Some(0),
        max_bad_fraction: None,
    };
    match coordinate(&cfg) {
        Err(RatioRuleError::BudgetExhausted { limit, .. }) => {
            assert!(limit.contains("shard [0, 120)"), "{limit}");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    for worker in fleet {
        worker.shutdown();
    }

    // Tolerant policy: the run completes, degraded, with the quarantine
    // attributed to the corrupt-cell reason.
    let fleet: Vec<ShardWorker> = (0..2)
        .map(|_| start_worker(workload_with_nan(), ChaosPlan::none(), None))
        .collect();
    let mut cfg = cfg_for(&fleet, 2);
    cfg.policy = ScanPolicy::quarantine_unlimited();
    let outcome = coordinate(&cfg).unwrap();
    assert!(outcome.is_degraded());
    assert_eq!(outcome.rows_quarantined, 1);
    assert_eq!(outcome.by_reason, (1, 0, 0));
    assert_eq!(outcome.acc.n_rows(), ROWS - 1);
    for worker in fleet {
        worker.shutdown();
    }
}

/// Workers serving different datasets cannot be merged; the boot probe
/// rejects the fleet before any scan is dispatched.
#[test]
fn dataset_shape_disagreement_is_rejected_at_boot() {
    let small = Matrix::from_fn(10, COLS, |i, j| (i + j) as f64);
    let fleet = vec![
        start_worker(workload(), ChaosPlan::none(), None),
        start_worker(small, ChaosPlan::none(), None),
    ];
    match coordinate(&cfg_for(&fleet, 2)) {
        Err(RatioRuleError::Invalid(msg)) => {
            assert!(msg.contains("disagree"), "{msg}");
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
    for worker in fleet {
        worker.shutdown();
    }
}
