//! Cross-crate integration tests: the full pipeline from raw data on
//! disk to predictions, exercising every crate together.

use dataset::csv;
use dataset::holes::HoledRow;
use dataset::source::{CountingSource, CsvFileSource};
use dataset::split::train_test_split;
use linalg::Matrix;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::guessing::GuessingErrorEvaluator;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::predictor::{ColAvgs, Predictor, RuleSetPredictor};
use ratio_rules::rules::RuleSet;

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rr_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Mine rules from a CSV file on disk — the paper's actual deployment
/// scenario — and verify the single-pass property on the file source.
#[test]
fn mine_from_disk_in_a_single_pass() {
    let dir = tmpdir();
    let path = dir.join("sales.csv");

    // Write a 200 x 3 linearly-correlated sales table.
    let x = Matrix::from_fn(200, 3, |i, j| {
        let t = 1.0 + i as f64;
        t * [3.0, 2.0, 1.0][j] + ((i * 13 + j * 5) % 7) as f64 * 0.01
    });
    let dm = dataset::DataMatrix::new(x.clone());
    csv::write_csv_file(&dm, &path).unwrap();

    // Stream it from disk with pass counting.
    let src = CsvFileSource::open(&path, true).unwrap();
    let mut counted = CountingSource::new(src);
    let rules = RatioRuleMiner::paper_defaults().fit(&mut counted).unwrap();

    assert_eq!(counted.rewinds, 1, "mining must be single-pass");
    assert_eq!(counted.rows_delivered, 200);
    assert_eq!(rules.n_train(), 200);
    assert_eq!(rules.k(), 1, "rank-1 data keeps one rule at 85% energy");

    // The mined rule matches mining from memory.
    let in_memory = RatioRuleMiner::paper_defaults().fit_matrix(&x).unwrap();
    for (a, b) in rules
        .rule(0)
        .loadings
        .iter()
        .zip(&in_memory.rule(0).loadings)
    {
        assert!((a - b).abs() < 1e-12);
    }
    std::fs::remove_file(&path).unwrap();
}

/// Train on 90%, evaluate GE_1 on 10%, compare against col-avgs, fill a
/// fresh record — the complete paper protocol on synthetic abalone.
#[test]
fn full_protocol_on_abalone_like_data() {
    let data = dataset::synth::abalone::abalone_like_sized(800, 17).unwrap();
    let split = train_test_split(&data, 0.9, 17).unwrap();

    let rules = RatioRuleMiner::paper_defaults()
        .fit_data(&split.train)
        .unwrap();
    let rr = RuleSetPredictor::new(rules.clone());
    let baseline = ColAvgs::fit(split.train.matrix()).unwrap();

    let ev = GuessingErrorEvaluator::default();
    let ge_rr = ev.ge1(&rr, split.test.matrix()).unwrap();
    let ge_ca = ev.ge1(&baseline, split.test.matrix()).unwrap();
    assert!(
        ge_rr < 0.5 * ge_ca,
        "RR must decisively beat col-avgs on near-rank-1 data: {ge_rr} vs {ge_ca}"
    );

    // Fill holes in a fresh record: hide the weights, keep the lengths.
    let record = split.test.row(0);
    let holed = HoledRow::new(vec![
        Some(record[0]),
        Some(record[1]),
        Some(record[2]),
        None,
        None,
        None,
        None,
    ]);
    let filled = rr.fill(&holed).unwrap();
    for j in 3..7 {
        let rel = (filled[j] - record[j]).abs() / record[j].max(1e-9);
        assert!(
            rel < 0.6,
            "hole {j}: predicted {} vs actual {}",
            filled[j],
            record[j]
        );
    }
}

/// A trained model survives JSON persistence and keeps predicting
/// identically.
#[test]
fn model_persistence_roundtrip() {
    let (data, _) = dataset::synth::sports::nba_like(5).unwrap();
    let rules = RatioRuleMiner::paper_defaults().fit_data(&data).unwrap();

    let json = ratio_rules::model_json::rules_to_string(&rules);
    let restored: RuleSet = ratio_rules::model_json::rules_from_str(&json).unwrap();
    assert_eq!(restored, rules);

    let row = {
        let mut v: Vec<Option<f64>> = data.row(10).iter().copied().map(Some).collect();
        v[7] = None;
        v[3] = None;
        HoledRow::new(v)
    };
    let a = ratio_rules::reconstruct::fill_holes(&rules, &row).unwrap();
    let b = ratio_rules::reconstruct::fill_holes(&restored, &row).unwrap();
    assert_eq!(a.values, b.values);
    assert_eq!(a.case, b.case);
}

/// Parallel mining produces the same model as the serial single pass.
#[test]
fn parallel_and_serial_mining_agree_end_to_end() {
    let data = dataset::synth::abalone::abalone_like_sized(500, 23).unwrap();
    let serial = RatioRuleMiner::new(Cutoff::FixedK(2))
        .fit_matrix(data.matrix())
        .unwrap();
    let parallel =
        ratio_rules::parallel::fit_parallel(data.matrix(), Cutoff::FixedK(2), 4).unwrap();
    for (rs, rp) in serial.rules().iter().zip(parallel.rules()) {
        assert!((rs.eigenvalue - rp.eigenvalue).abs() / rs.eigenvalue < 1e-9);
        for (a, b) in rs.loadings.iter().zip(&rp.loadings) {
            assert!((a - b).abs() < 1e-8);
        }
    }
}

/// Multi-file mining: chaining per-day CSV shards is equivalent to
/// mining the concatenated table, still in one pass per shard.
#[test]
fn chained_shards_equal_concatenated_mining() {
    use dataset::source::{ChainSource, CsvFileSource};

    let dir = tmpdir();
    let day1 = dir.join("day1.csv");
    let day2 = dir.join("day2.csv");
    let x = Matrix::from_fn(120, 3, |i, j| {
        let t = 1.0 + i as f64;
        t * [3.0, 2.0, 1.0][j] + ((i * 7 + j) % 9) as f64 * 0.02
    });
    let first = dataset::DataMatrix::new(x.select_rows(&(0..70).collect::<Vec<_>>()));
    let second = dataset::DataMatrix::new(x.select_rows(&(70..120).collect::<Vec<_>>()));
    csv::write_csv_file(&first, &day1).unwrap();
    csv::write_csv_file(&second, &day2).unwrap();

    let mut chain = ChainSource::new(vec![
        CsvFileSource::open(&day1, true).unwrap(),
        CsvFileSource::open(&day2, true).unwrap(),
    ])
    .unwrap();
    let chained = RatioRuleMiner::new(Cutoff::FixedK(1))
        .fit(&mut chain)
        .unwrap();
    let whole = RatioRuleMiner::new(Cutoff::FixedK(1))
        .fit_matrix(&x)
        .unwrap();

    assert_eq!(chained.n_train(), 120);
    for (a, b) in chained.rule(0).loadings.iter().zip(&whole.rule(0).loadings) {
        assert!((a - b).abs() < 1e-12);
    }
    std::fs::remove_file(&day1).unwrap();
    std::fs::remove_file(&day2).unwrap();
}

/// Rule mining is invariant to row order (the covariance is a sum).
#[test]
fn mining_is_row_order_invariant() {
    let data = dataset::synth::abalone::abalone_like_sized(300, 31).unwrap();
    let x = data.matrix();
    let forward = RatioRuleMiner::new(Cutoff::FixedK(2))
        .fit_matrix(x)
        .unwrap();

    let reversed_idx: Vec<usize> = (0..x.rows()).rev().collect();
    let reversed = x.select_rows(&reversed_idx);
    let backward = RatioRuleMiner::new(Cutoff::FixedK(2))
        .fit_matrix(&reversed)
        .unwrap();

    for (rf, rb) in forward.rules().iter().zip(backward.rules()) {
        assert!((rf.eigenvalue - rb.eigenvalue).abs() / rf.eigenvalue.max(1e-12) < 1e-9);
        for (a, b) in rf.loadings.iter().zip(&rb.loadings) {
            assert!((a - b).abs() < 1e-8);
        }
    }
}

/// The umbrella crate's prelude exposes the advertised API.
#[test]
fn prelude_compiles_and_works() {
    use ratio_rules_repro::prelude::*;

    let x = Matrix::from_rows(&[&[2.0, 1.0], &[4.0, 2.0], &[6.0, 3.0], &[8.0, 4.1]]).unwrap();
    let data = DataMatrix::new(x);
    let split = train_test_split(&data, 0.5, 1).unwrap();
    let rules: RuleSet = RatioRuleMiner::new(Cutoff::EnergyFraction(0.85))
        .fit_data(&split.train)
        .unwrap();
    let p = ratio_rules::predictor::RuleSetPredictor::new(rules);
    let ev = GuessingErrorEvaluator::default();
    let ge = ev.ge1(&p, split.test.matrix()).unwrap();
    assert!(ge.is_finite());
    // Predictor trait is in scope via the prelude.
    let _ = p.name();
}
