//! Golden-file regression: a checked-in CSV with pinned mined rules and
//! guessing-error values.
//!
//! The fixture (`tests/fixtures/golden.csv`) is 24 rows x 4 attributes of
//! exact-decimal rank-2 data plus a small deterministic perturbation, so
//! every stage — CSV parsing, covariance, eigendecomposition, hole
//! filling, GE evaluation — runs the same arithmetic on every machine.
//! `golden_rules.json` pins the mined model through the zero-dependency
//! `model_json` writer; the GE constants below pin the paper's Sec. 5
//! quality metrics. A drift in any numeric stage shows up here first.
//!
//! The fixture shape keeps GE_h RNG-free: with `m = 4, h = 2` there are
//! only C(4,2) = 6 hole patterns, below the evaluator's sampling budget,
//! so the hole sets are enumerated rather than sampled.

use dataset::csv;
use linalg::cmp::rel_eq;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::guessing::GuessingErrorEvaluator;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::model_json;
use ratio_rules::predictor::{ColAvgs, RuleSetPredictor};
use ratio_rules::rules::RuleSet;

const GOLDEN_CSV: &str = include_str!("fixtures/golden.csv");
const GOLDEN_RULES: &str = include_str!("fixtures/golden_rules.json");

/// Pinned guessing errors on the golden dataset (trained and evaluated
/// on the full fixture; the evaluator's defaults enumerate, not sample).
const GE1_RULES: f64 = 0.05443600042509746;
const GE1_COLAVGS: f64 = 3.431703389140977;
const GEH2_RULES: f64 = 0.06984778370409733;
const GEH2_COLAVGS: f64 = 3.4317033891409756;

/// Relative tolerance for mined values: loose enough to absorb
/// platform-dependent rounding in the eigensolver's iteration, far
/// tighter than any semantic change could stay under.
const TOL: f64 = 1e-9;

fn assert_close(a: f64, b: f64, what: &str) {
    assert!(
        rel_eq(a, b, TOL) || (a - b).abs() <= 1e-12,
        "{what}: {a} vs {b}"
    );
}

fn mine_golden() -> RuleSet {
    let dm = csv::read_csv(GOLDEN_CSV.as_bytes(), true).unwrap();
    RatioRuleMiner::new(Cutoff::FixedK(2)).fit_data(&dm).unwrap()
}

#[test]
fn golden_rules_match_fixture() {
    let mined = mine_golden();
    let expected = model_json::rules_from_str(GOLDEN_RULES).unwrap();

    assert_eq!(mined.k(), expected.k());
    assert_eq!(mined.n_train(), expected.n_train());
    assert_eq!(mined.attribute_labels(), expected.attribute_labels());
    for (j, (a, b)) in mined
        .column_means()
        .iter()
        .zip(expected.column_means())
        .enumerate()
    {
        assert_close(*a, *b, &format!("column mean {j}"));
    }
    for (i, (a, b)) in mined.spectrum().iter().zip(expected.spectrum()).enumerate() {
        assert_close(*a, *b, &format!("eigenvalue {i}"));
    }
    for (r, (ra, rb)) in mined.rules().iter().zip(expected.rules()).enumerate() {
        assert_close(ra.eigenvalue, rb.eigenvalue, &format!("rule {r} eigenvalue"));
        for (j, (a, b)) in ra.loadings.iter().zip(&rb.loadings).enumerate() {
            assert_close(*a, *b, &format!("rule {r} loading {j}"));
        }
    }
}

#[test]
fn golden_guessing_errors_are_pinned() {
    let dm = csv::read_csv(GOLDEN_CSV.as_bytes(), true).unwrap();
    let rules = mine_golden();
    let rr = RuleSetPredictor::new(rules);
    let ca = ColAvgs::fit(dm.matrix()).unwrap();
    let ev = GuessingErrorEvaluator::default();

    assert_close(ev.ge1(&rr, dm.matrix()).unwrap(), GE1_RULES, "GE_1 rules");
    assert_close(
        ev.ge1(&ca, dm.matrix()).unwrap(),
        GE1_COLAVGS,
        "GE_1 col-avgs",
    );
    assert_close(
        ev.ge_h(&rr, dm.matrix(), 2).unwrap(),
        GEH2_RULES,
        "GE_2 rules",
    );
    assert_close(
        ev.ge_h(&ca, dm.matrix(), 2).unwrap(),
        GEH2_COLAVGS,
        "GE_2 col-avgs",
    );
    // The paper's qualitative claim on near-low-rank data: Ratio Rules
    // decisively beat the column-averages baseline.
    assert!(GE1_RULES < 0.2 * GE1_COLAVGS);
    assert!(GEH2_RULES < 0.2 * GEH2_COLAVGS);
}

#[test]
fn golden_model_json_roundtrip_is_exact() {
    // The fixture document itself must survive a parse + re-serialize
    // bit-for-bit: pins both the JSON format and f64 text round-tripping.
    let parsed = model_json::rules_from_str(GOLDEN_RULES).unwrap();
    assert_eq!(model_json::rules_to_string(&parsed), GOLDEN_RULES);
}
