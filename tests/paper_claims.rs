//! The paper's headline claims, encoded as regression tests.
//!
//! Each test cites the section/figure it checks. These are the assertions
//! that EXPERIMENTS.md reports quantitatively; failures here mean the
//! reproduction has drifted from the paper's qualitative results.

use assoc::predict::{predict_hole, PredictOutcome};
use assoc::quantitative::QuantitativeMiner;
use dataset::holes::HoledRow;
use dataset::split::train_test_split;
use linalg::Matrix;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::guessing::GuessingErrorEvaluator;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::predictor::{ColAvgs, RuleSetPredictor};
use ratio_rules::reconstruct::fill_holes;

const SEED: u64 = 1998;

fn contenders(data: &dataset::DataMatrix) -> (RuleSetPredictor, ColAvgs, dataset::split::Split) {
    let split = train_test_split(data, 0.9, SEED).unwrap();
    let rules = RatioRuleMiner::paper_defaults()
        .fit_data(&split.train)
        .unwrap();
    let rr = RuleSetPredictor::new(rules);
    let ca = ColAvgs::fit(split.train.matrix()).unwrap();
    (rr, ca, split)
}

/// Figure 1 / Sec. 4.1: the bread-butter example's first eigenvector is
/// approximately (0.866, 0.5).
#[test]
fn fig1_first_rule_is_30_degrees() {
    let x = Matrix::from_rows(&[
        &[0.89, 0.49],
        &[3.34, 1.85],
        &[5.00, 3.09],
        &[1.78, 0.99],
        &[4.02, 2.61],
    ])
    .unwrap();
    let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
        .fit_matrix(&x)
        .unwrap();
    let v = &rules.rule(0).loadings;
    let angle = v[1].atan2(v[0]).to_degrees();
    assert!(
        (angle - 30.0).abs() < 4.0,
        "RR1 angle {angle} degrees (paper: 30)"
    );
}

/// Figure 7 / Sec. 5.1: RR beats col-avgs on all three datasets; the best
/// case approaches the paper's "one-fifth the guessing error".
#[test]
fn fig7_rr_beats_col_avgs_on_all_datasets() {
    let mut best_ratio = f64::INFINITY;

    let (nba, _) = dataset::synth::sports::nba_like(SEED).unwrap();
    let baseball = dataset::synth::sports::baseball_like(SEED).unwrap();
    let abalone = dataset::synth::abalone::abalone_like(SEED).unwrap();

    for data in [&nba, &baseball, &abalone] {
        let (rr, ca, split) = contenders(data);
        let ev = GuessingErrorEvaluator::default();
        let ge_rr = ev.ge1(&rr, split.test.matrix()).unwrap();
        let ge_ca = ev.ge1(&ca, split.test.matrix()).unwrap();
        let ratio = ge_rr / ge_ca;
        assert!(ratio < 1.0, "RR must beat col-avgs: ratio {ratio}");
        best_ratio = best_ratio.min(ratio);
    }
    assert!(
        best_ratio < 0.25,
        "best dataset should approach the paper's 5x win, got ratio {best_ratio}"
    );
}

/// Figure 6 / Sec. 5.2: GE_h of col-avgs is constant in h; GE_h of RR
/// stays well below it for h up to 5.
#[test]
fn fig6_error_stability() {
    let (nba, _) = dataset::synth::sports::nba_like(SEED).unwrap();
    let (rr, ca, split) = contenders(&nba);
    // A larger hole-set sample than the default 32: the col-avgs curve
    // is only flat once enough of C(M,h) is enumerated per h.
    let ev = GuessingErrorEvaluator {
        max_hole_sets: 128,
        seed: SEED,
    };
    let test = split.test.matrix();

    let ca_curve: Vec<f64> = (1..=5).map(|h| ev.ge_h(&ca, test, h).unwrap()).collect();
    // col-avgs is *theoretically* exactly constant; sampling different
    // hole sets perturbs which cells are averaged, so allow a few percent.
    for w in ca_curve.windows(2) {
        assert!(
            (w[0] - w[1]).abs() / w[0] < 0.10,
            "col-avgs curve should be flat: {ca_curve:?}"
        );
    }

    for h in 1..=5 {
        let ge_rr = ev.ge_h(&rr, test, h).unwrap();
        let ge_ca = ev.ge_h(&ca, test, h).unwrap();
        assert!(
            ge_rr < 0.6 * ge_ca,
            "RR should stay well below col-avgs at h={h}: {ge_rr} vs {ge_ca}"
        );
    }
}

/// Sec. 5.3 / Figure 8: mining cost grows roughly linearly in N.
#[test]
fn fig8_mining_is_linear_in_n() {
    use std::time::Instant;
    let cfg = dataset::synth::quest::QuestConfig {
        n_rows: 8_000,
        n_items: 50,
        ..Default::default()
    };
    let data = dataset::synth::quest::generate(&cfg, SEED).unwrap();
    let x = data.matrix();
    let miner = RatioRuleMiner::paper_defaults();

    let time_for = |n: usize| {
        let prefix = x.select_rows(&(0..n).collect::<Vec<_>>());
        // Warm up once, then take the best of 3 to cut scheduler noise.
        miner.fit_matrix(&prefix).unwrap();
        (0..3)
            .map(|_| {
                let t = Instant::now();
                miner.fit_matrix(&prefix).unwrap();
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let t2k = time_for(2_000);
    let t8k = time_for(8_000);
    let ratio = t8k / t2k;
    // Linear would be 4.0; allow generous slack for timer noise but rule
    // out quadratic (16x).
    assert!(ratio < 9.0, "4x rows took {ratio:.1}x time (expected ~4x)");
}

/// Sec. 6.3 / Figure 12: quantitative rules cannot extrapolate beyond
/// their rectangles; Ratio Rules predict $6.10 of butter for $8.50 of
/// bread.
#[test]
fn fig12_extrapolation_head_to_head() {
    let x = Matrix::from_fn(64, 2, |i, j| {
        let bread = 1.0 + 7.0 * ((i % 32) as f64) / 31.0;
        if j == 0 {
            bread
        } else {
            0.7176 * bread
        }
    });

    // Quantitative rules with bounded rectangles.
    let model = QuantitativeMiner {
        intervals: 4,
        min_support: 0.05,
        min_confidence: 0.5,
    }
    .mine(&x)
    .unwrap();
    let mut bounded = model.clone();
    bounded.rules.retain(|r| {
        r.antecedent
            .iter()
            .all(|a| a.lo.is_finite() && a.hi.is_finite())
            && r.consequent
                .iter()
                .all(|c| c.lo.is_finite() && c.hi.is_finite())
    });
    assert!(
        !bounded.rules.is_empty(),
        "need bounded rules for the comparison"
    );
    let outcome = predict_hole(&bounded, &[Some(8.5), None], 1).unwrap();
    assert_eq!(
        outcome,
        PredictOutcome::NoRuleFires,
        "paper: no rectangle covers bread=8.5"
    );

    // Ratio Rules extrapolate to ~6.10.
    let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
        .fit_matrix(&x)
        .unwrap();
    let filled = fill_holes(&rules, &HoledRow::new(vec![Some(8.5), None])).unwrap();
    assert!(
        (filled.values[1] - 6.10).abs() < 0.05,
        "paper predicts $6.10, got {:.3}",
        filled.values[1]
    );
}

/// Table 2 / Sec. 6.2: the nba rules carry the paper's interpretations.
#[test]
fn table2_rule_interpretations() {
    let (nba, _) = dataset::synth::sports::nba_like(SEED).unwrap();
    let rules = RatioRuleMiner::new(Cutoff::FixedK(3))
        .fit_data(&nba)
        .unwrap();
    let idx = |l: &str| nba.col_index(l).unwrap();

    // RR1 "court action": a volume factor, minutes:points near 2:1.
    let rr1 = &rules.rule(0).loadings;
    let ratio = rr1[idx("minutes played")] / rr1[idx("points")];
    assert!((1.5..=2.6).contains(&ratio), "minutes:points {ratio}");

    // RR2 "field position": rebounds against points.
    let rr2 = &rules.rule(1).loadings;
    assert!(rr2[idx("total rebounds")] * rr2[idx("points")] < 0.0);

    // RR3 "height": assists/steals against blocked shots.
    let rr3 = &rules.rule(2).loadings;
    assert!(rr3[idx("assists")] * rr3[idx("blocked shots")] < 0.0);
    assert!(rr3[idx("assists")] * rr3[idx("steals")] > 0.0);
}

/// Sec. 6.1 / Figure 11: the planted Jordan/Rodman analogues are the most
/// extreme points of the RR projection.
#[test]
fn fig11_outliers_pop_out_of_the_projection() {
    let (nba, planted) = dataset::synth::sports::nba_like(SEED).unwrap();
    let rules = RatioRuleMiner::new(Cutoff::FixedK(3))
        .fit_data(&nba)
        .unwrap();
    let proj = ratio_rules::visualize::project_2d(&rules, nba.matrix(), 0, 1).unwrap();
    // Rodman's analogue is extreme on the rebounds axis but mid-pack on
    // scoring, so he ranks a few places behind the pure scorers; a top-8
    // window still singles the planted pair out of 200+ rows.
    let extremes = proj.extremes(8);
    assert!(
        extremes.contains(&planted.jordan),
        "Jordan analogue not extreme"
    );
    assert!(
        extremes.contains(&planted.rodman),
        "Rodman analogue not extreme"
    );
}

/// Sec. 6.1: the reconstruction-based outlier detector surfaces all three
/// planted player analogues at the top of the row ranking.
#[test]
fn outlier_detector_finds_all_planted_players() {
    let (nba, planted) = dataset::synth::sports::nba_like(SEED).unwrap();
    let rules = RatioRuleMiner::new(Cutoff::FixedK(3))
        .fit_data(&nba)
        .unwrap();
    let detector = ratio_rules::outlier::OutlierDetector::new(&rules);
    let scores = detector.row_scores(nba.matrix()).unwrap();
    let top: Vec<usize> = scores.iter().take(5).map(|s| s.row).collect();
    for (name, idx) in [
        ("Jordan", planted.jordan),
        ("Rodman", planted.rodman),
        ("Bogues", planted.bogues),
    ] {
        assert!(
            top.contains(&idx),
            "{name} analogue missing from top-5: {top:?}"
        );
    }
}

/// Definition 2, exactly: with full enumeration of the hole sets, GE_h is
/// the root-mean-square over (row, hole-set, hole) triples — recomputed
/// here by hand against the evaluator.
#[test]
fn ge_h_matches_definition_under_full_enumeration() {
    use dataset::holes::enumerate_hole_sets;
    use ratio_rules::guessing::GuessingErrorEvaluator;
    use ratio_rules::predictor::Predictor;

    let test = Matrix::from_fn(9, 4, |i, j| ((i * 4 + j) as f64).sin() * 10.0);
    let ca = ColAvgs::fit(&test).unwrap();
    // max_hole_sets large enough that C(4,2) = 6 is fully enumerated.
    let ev = GuessingErrorEvaluator {
        max_hole_sets: 100,
        seed: 1,
    };
    let got = ev.ge_h(&ca, &test, 2).unwrap();

    let sets = enumerate_hole_sets(4, 2).unwrap();
    let mut sum_sq = 0.0;
    let mut count = 0usize;
    for i in 0..test.rows() {
        for hs in &sets {
            let filled = ca.fill(&hs.apply(test.row(i)).unwrap()).unwrap();
            for &l in hs.holes() {
                sum_sq += (filled[l] - test[(i, l)]).powi(2);
                count += 1;
            }
        }
    }
    let expected = (sum_sq / count as f64).sqrt();
    assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
}

/// Sec. 5 setup: col-avgs is identical to the proposed method with k = 0 —
/// checked via the singular-fallback path, which fills with column means
/// when the rules carry no usable information.
#[test]
fn col_avgs_equals_rr_with_no_information() {
    let x = Matrix::from_rows(&[&[1.0, 5.0], &[2.0, 5.0], &[3.0, 5.0], &[4.0, 5.0]]).unwrap();
    let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
        .fit_matrix(&x)
        .unwrap();
    let ca = ColAvgs::fit(&x).unwrap();
    // Attribute 1 is constant; knowing only it says nothing about
    // attribute 0, so RR's estimate degenerates to the column mean =
    // exactly what col-avgs answers.
    let row = HoledRow::new(vec![None, Some(5.0)]);
    let rr_fill = fill_holes(&rules, &row).unwrap().values;
    use ratio_rules::predictor::Predictor;
    let ca_fill = ca.fill(&row).unwrap();
    assert!((rr_fill[0] - ca_fill[0]).abs() < 1e-9);
}
