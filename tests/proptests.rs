//! Cross-crate property-based tests: invariants of the mining +
//! reconstruction pipeline on randomized low-rank datasets.

use dataset::holes::{HoleSet, HoledRow};
use linalg::Matrix;
use proptest::prelude::*;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::reconstruct::fill_holes;
use ratio_rules::rules::RuleSet;

/// Strategy: a random rank-`r` matrix `n x m` built from `r` random
/// direction/coefficient pairs, plus optional noise.
fn low_rank(n: usize, m: usize, r: usize, noise: f64) -> impl Strategy<Value = Matrix> {
    let dirs = proptest::collection::vec(0.2..1.0f64, r * m);
    let coeffs = proptest::collection::vec(-5.0..5.0f64, r * n);
    let noise_cells = proptest::collection::vec(-1.0..1.0f64, n * m);
    (dirs, coeffs, noise_cells).prop_map(move |(d, c, eps)| {
        Matrix::from_fn(n, m, |i, j| {
            let mut v = 0.0;
            for f in 0..r {
                // Alternate direction signs per factor so they differ.
                let sign = if (f + j) % 2 == 0 { 1.0 } else { -1.0 };
                v += c[f * n + i] * d[f * m + j] * sign;
            }
            v + noise * eps[i * m + j]
        })
    })
}

fn mine(x: &Matrix, k: usize) -> RuleSet {
    RatioRuleMiner::new(Cutoff::FixedK(k))
        .fit_matrix(x)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Known values always pass through hole filling unchanged.
    #[test]
    fn known_values_pass_through(
        x in low_rank(30, 5, 2, 0.1),
        hole in 0usize..5,
        row_idx in 0usize..30,
    ) {
        let rules = mine(&x, 2);
        let row = x.row(row_idx);
        let hs = HoleSet::new(vec![hole], 5).unwrap();
        let filled = fill_holes(&rules, &hs.apply(row).unwrap()).unwrap();
        for (j, (filled_j, row_j)) in filled.values.iter().zip(row).enumerate() {
            if j != hole {
                prop_assert_eq!(filled_j, row_j);
            }
        }
        prop_assert!(filled.values.iter().all(|v| v.is_finite()));
    }

    /// On exactly rank-k data, filling any single hole with k rules
    /// recovers the original value (up to numerical error).
    #[test]
    fn exact_recovery_on_noiseless_low_rank(
        x in low_rank(40, 6, 2, 0.0),
        hole in 0usize..6,
        row_idx in 0usize..40,
    ) {
        let rules = mine(&x, 2);
        let row = x.row(row_idx);
        let hs = HoleSet::new(vec![hole], 6).unwrap();
        let filled = fill_holes(&rules, &hs.apply(row).unwrap()).unwrap();
        let scale = x.max_abs().max(1.0);
        prop_assert!(
            (filled.values[hole] - row[hole]).abs() < 1e-6 * scale,
            "hole {}: {} vs {}", hole, filled.values[hole], row[hole]
        );
    }

    /// Mined eigenvalues are nonnegative and descending, loadings are
    /// unit-norm, and retained energy is in [0, 1].
    #[test]
    fn ruleset_structural_invariants(x in low_rank(25, 5, 3, 0.5)) {
        let rules = RatioRuleMiner::paper_defaults().fit_matrix(&x).unwrap();
        let mut prev = f64::INFINITY;
        for r in rules.rules() {
            prop_assert!(r.eigenvalue <= prev);
            prop_assert!(r.eigenvalue > -1e-6);
            prev = r.eigenvalue;
            let norm = linalg::vector::norm(&r.loadings);
            prop_assert!((norm - 1.0).abs() < 1e-9, "loading norm {norm}");
        }
        let e = rules.retained_energy();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&e));
        // 85% cutoff must actually reach 85% (or keep everything).
        prop_assert!(e >= 0.85 - 1e-9 || rules.k() == 5);
    }

    /// Projection then reconstruction is a contraction towards the rule
    /// subspace: reconstructing twice changes nothing.
    #[test]
    fn reconstruction_is_idempotent(x in low_rank(20, 5, 2, 1.0), row_idx in 0usize..20) {
        let rules = mine(&x, 2);
        let row = x.row(row_idx);
        let c1 = rules.project_row(row).unwrap();
        let r1 = rules.reconstruct_row(&c1).unwrap();
        let c2 = rules.project_row(&r1).unwrap();
        let r2 = rules.reconstruct_row(&c2).unwrap();
        for (a, b) in r1.iter().zip(&r2) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    /// GE_1 of any predictor is nonnegative and zero only for perfect
    /// reconstruction; col-avgs GE_1 equals the RMS column deviation.
    #[test]
    fn guessing_error_properties(x in low_rank(20, 4, 2, 0.3)) {
        use ratio_rules::guessing::GuessingErrorEvaluator;
        use ratio_rules::predictor::ColAvgs;
        let ev = GuessingErrorEvaluator::default();
        let ca = ColAvgs::fit(&x).unwrap();
        let ge = ev.ge1(&ca, &x).unwrap();
        prop_assert!(ge >= 0.0);
        let stats = dataset::stats::column_stats(&x);
        let expected = (stats.variances.iter().sum::<f64>() / 4.0).sqrt();
        prop_assert!((ge - expected).abs() < 1e-9 * expected.max(1.0));
    }

    /// Hole sets sampled for GE_h are valid: distinct, sorted, in range.
    #[test]
    fn sampled_hole_sets_are_valid(m in 3usize..12, h in 1usize..4, seed in 0u64..1000) {
        prop_assume!(h < m);
        let sets = dataset::holes::sample_hole_sets(m, h, 10, seed).unwrap();
        prop_assert!(!sets.is_empty());
        for s in &sets {
            prop_assert_eq!(s.len(), h);
            prop_assert!(s.holes().windows(2).all(|w| w[0] < w[1]));
            prop_assert!(s.holes().iter().all(|&j| j < m));
        }
    }

    /// Filling a row whose known values sit exactly at the training means
    /// yields the means everywhere (the centered problem is homogeneous).
    #[test]
    fn mean_row_fills_to_means(x in low_rank(25, 5, 2, 0.2), hole in 0usize..5) {
        let rules = mine(&x, 2);
        let means = rules.column_means().to_vec();
        let mut vals: Vec<Option<f64>> = means.iter().copied().map(Some).collect();
        vals[hole] = None;
        let filled = fill_holes(&rules, &HoledRow::new(vals)).unwrap();
        prop_assert!(
            (filled.values[hole] - means[hole]).abs() < 1e-7 * means[hole].abs().max(1.0)
        );
    }

    /// Cached hole filling is bit-for-bit identical to the one-shot path
    /// across random rule sets and hole patterns, hitting all three solve
    /// cases (k vs M - h decides the case; h in 1..M and k in 1..=4 on
    /// M = 5 covers exactly-, over-, and under-specified systems).
    #[test]
    fn solver_cache_is_bit_identical_to_one_shot(
        x in low_rank(30, 5, 2, 0.4),
        k in 1usize..=4,
        hole_bits in 1u32..31, // nonzero, not all 5 bits: 0 < h < M
        row_idx in 0usize..30,
    ) {
        use ratio_rules::predictor::{Predictor, RuleSetPredictor};
        use ratio_rules::reconstruct::SolverCache;

        let rules = mine(&x, k);
        let holes: Vec<usize> = (0..5).filter(|j| hole_bits & (1 << j) != 0).collect();
        let hs = HoleSet::new(holes, 5).unwrap();
        let holed = hs.apply(x.row(row_idx)).unwrap();

        let one_shot = fill_holes(&rules, &holed).unwrap();

        // SolverCache path: solve twice so the second fill is a cache hit.
        let cache = SolverCache::new(&rules);
        let cold = cache.fill(&holed).unwrap();
        let warm = cache.fill(&holed).unwrap();
        prop_assert_eq!(&cold, &one_shot);
        prop_assert_eq!(&warm, &one_shot);
        prop_assert_eq!(cache.len(), 1);

        // Predictor path: cached and uncached wrappers agree exactly.
        let cached_p = RuleSetPredictor::new(rules.clone());
        let uncached_p = RuleSetPredictor::uncached(rules);
        prop_assert_eq!(cached_p.fill(&holed).unwrap(), uncached_p.fill(&holed).unwrap());
        prop_assert_eq!(cached_p.fill(&holed).unwrap(), one_shot.values);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Quarantining faulty rows is *bit-identical* to never having seen
    /// them: for any fault seed and rates, a quarantine scan over the
    /// faulty stream produces the same accumulator (same f64 additions in
    /// the same order) as a clean scan over the plan's clean subset.
    #[test]
    fn quarantine_scan_equals_clean_subset(
        x in low_rank(80, 4, 2, 0.3),
        seed in 0u64..1_000_000,
        corrupt_rate in 0.0..0.4f64,
        arity_rate in 0.0..0.3f64,
        transient_rate in 0.0..0.3f64,
    ) {
        use dataset::fault::{FaultPlan, FaultyRowSource};
        use dataset::source::MatrixSource;
        use ratio_rules::covariance::CovarianceAccumulator;
        use ratio_rules::resilience::{ScanPolicy, Scanner};

        let plan = FaultPlan {
            seed,
            transient_rate,
            corrupt_rate,
            arity_rate,
            truncate_after: None,
        };
        let mut faulty = FaultyRowSource::new(MatrixSource::new(&x), plan);
        let mut scanner = Scanner::new(4, ScanPolicy::quarantine_unlimited());
        scanner.scan(&mut faulty).unwrap();
        let (acc, report) = scanner.into_parts();

        let mut reference = CovarianceAccumulator::new(4);
        let mut clean = 0usize;
        for pos in 0..80 {
            if plan.row_is_clean(pos, 4) {
                reference.push_row(x.row(pos)).unwrap();
                clean += 1;
            }
        }
        prop_assert_eq!(acc.n_rows(), clean);
        prop_assert_eq!(report.rows_absorbed, clean);
        prop_assert_eq!(report.rows_quarantined, 80 - clean);
        let (n1, s1, r1) = acc.parts();
        let (n2, s2, r2) = reference.parts();
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(s1, s2, "column sums must be bit-identical");
        prop_assert_eq!(r1, r2, "moment matrix must be bit-identical");
    }

    /// A scan interrupted at any point, checkpointed through its JSON
    /// serialization, and resumed over a fresh stream is bit-identical to
    /// the uninterrupted scan.
    #[test]
    fn checkpointed_scan_equals_uninterrupted(
        x in low_rank(60, 4, 2, 0.3),
        seed in 0u64..1_000_000,
        rate in 0.0..0.25f64,
        stop_after in 1usize..59,
    ) {
        use dataset::fault::{FaultPlan, FaultyRowSource};
        use dataset::source::MatrixSource;
        use ratio_rules::resilience::{ScanCheckpoint, ScanPolicy, Scanner};

        let plan = FaultPlan {
            seed,
            transient_rate: rate,
            corrupt_rate: rate,
            arity_rate: rate,
            truncate_after: None,
        };
        let mut whole = Scanner::new(4, ScanPolicy::quarantine_unlimited());
        whole
            .scan(&mut FaultyRowSource::new(MatrixSource::new(&x), plan))
            .unwrap();
        let (acc_whole, rep_whole) = whole.into_parts();

        // Crash mid-scan, checkpoint through JSON, resume a fresh stream.
        let crash_plan = FaultPlan { truncate_after: Some(stop_after), ..plan };
        let mut first = Scanner::new(4, ScanPolicy::quarantine_unlimited());
        first
            .scan(&mut FaultyRowSource::new(MatrixSource::new(&x), crash_plan))
            .unwrap();
        let cp = ScanCheckpoint::from_json(&first.checkpoint().to_json()).unwrap();

        let mut resumed = Scanner::resume(&cp, ScanPolicy::quarantine_unlimited()).unwrap();
        resumed
            .scan(&mut FaultyRowSource::new(MatrixSource::new(&x), plan))
            .unwrap();
        let (acc_res, rep_res) = resumed.into_parts();

        let (n1, s1, r1) = acc_whole.parts();
        let (n2, s2, r2) = acc_res.parts();
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(s1, s2, "column sums must survive the round-trip");
        prop_assert_eq!(r1, r2, "moments must survive the round-trip");
        prop_assert_eq!(rep_whole.rows_quarantined, rep_res.rows_quarantined);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The blocked panel kernel is bit-identical to the row-at-a-time
    /// scan for any block size and any `push_block` segmentation —
    /// including final partial panels and segments that straddle panel
    /// boundaries.
    #[test]
    fn blocked_scan_equals_rowwise_for_any_segmentation(
        x in low_rank(70, 5, 2, 0.4),
        block_rows in 1usize..100,
        cuts in proptest::collection::vec(0usize..70, 0..6),
    ) {
        use ratio_rules::covariance::CovarianceAccumulator;

        let mut rowwise = CovarianceAccumulator::new(5);
        for row in x.row_iter() {
            rowwise.push_row(row).unwrap();
        }

        let mut bounds: Vec<usize> = cuts;
        bounds.push(0);
        bounds.push(70);
        bounds.sort_unstable();
        bounds.dedup();
        let mut blocked = CovarianceAccumulator::with_block_rows(5, block_rows);
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            blocked.push_block(&x.data()[lo * 5..hi * 5], hi - lo).unwrap();
        }

        let (n1, s1, r1) = rowwise.parts();
        let (n2, s2, r2) = blocked.parts();
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(s1, s2, "column sums must be bit-identical");
        prop_assert_eq!(r1, r2, "moment matrix must be bit-identical");
    }

    /// An `RRCB` round-trip is lossless, and a columnar scan over it is
    /// bit-identical to scanning the matrix row by row — for any shape
    /// and any read-block size.
    #[test]
    fn columnar_scan_equals_rowwise(
        x in low_rank(50, 4, 2, 0.5),
        read_rows in 1usize..80,
    ) {
        use dataset::columnar::{write_block_file, ColumnarBlockSource};
        use ratio_rules::covariance::CovarianceAccumulator;

        let dir = std::env::temp_dir()
            .join(format!("rr_proptest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("case_{read_rows}.rrcb"));
        write_block_file(&path, 4, 50, x.data()).unwrap();

        let mut rowwise = CovarianceAccumulator::new(4);
        for row in x.row_iter() {
            rowwise.push_row(row).unwrap();
        }

        let mut src = ColumnarBlockSource::open(&path).unwrap();
        let mut columnar = CovarianceAccumulator::new(4);
        let mut buf = Vec::new();
        loop {
            let got = src.read_block(&mut buf, read_rows).unwrap();
            if got == 0 {
                break;
            }
            columnar.push_block(&buf, got).unwrap();
        }

        let (n1, s1, r1) = rowwise.parts();
        let (n2, s2, r2) = columnar.parts();
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(s1, s2, "column sums must survive the RRCB round-trip");
        prop_assert_eq!(r1, r2, "moments must survive the RRCB round-trip");
    }

    /// A checkpoint taken after any prefix of rows — including mid-panel,
    /// with rows still buffered — restores to an accumulator that finishes
    /// bit-identically to the uninterrupted scan.
    #[test]
    fn mid_panel_checkpoint_restores_bitwise(
        x in low_rank(40, 4, 2, 0.3),
        block_rows in 1usize..50,
        cut in 1usize..39,
    ) {
        use ratio_rules::covariance::CovarianceAccumulator;

        let mut whole = CovarianceAccumulator::with_block_rows(4, block_rows);
        for row in x.row_iter() {
            whole.push_row(row).unwrap();
        }

        let mut first = CovarianceAccumulator::with_block_rows(4, block_rows);
        for i in 0..cut {
            first.push_row(x.row(i)).unwrap();
        }
        let (n, sums, upper) = first.parts();
        let mut resumed = CovarianceAccumulator::from_parts(4, n, sums, upper).unwrap();
        for i in cut..40 {
            resumed.push_row(x.row(i)).unwrap();
        }

        let (n1, s1, r1) = whole.parts();
        let (n2, s2, r2) = resumed.parts();
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(s1, s2, "column sums must survive the checkpoint");
        prop_assert_eq!(r1, r2, "moments must survive the checkpoint");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On integer-grid data every sum the accumulator forms is exactly
    /// representable (values in [-100, 100], well under 2^53 of mass),
    /// so fp addition is genuinely associative and bit-identity must
    /// survive ANY partition arity and ANY merge order — not just the
    /// fixed tree. The shards also round-trip the wire checkpoint JSON,
    /// making this the property the distributed coordinator leans on
    /// when workers deliver out of order.
    #[test]
    fn tree_merge_any_partition_and_order_equals_serial_on_integer_grid(
        rows in proptest::collection::vec(
            proptest::collection::vec(-100i32..=100, 4), 1..60),
        cuts in proptest::collection::vec(0usize..60, 0..6),
        order_seed in 0u64..1_000_000,
    ) {
        use ratio_rules::covariance::CovarianceAccumulator;
        use ratio_rules::parallel::tree_merge;
        use ratio_rules::resilience::ScanCheckpoint;

        let data: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r.iter().map(|&v| f64::from(v)).collect())
            .collect();
        let n = data.len();
        let mut serial = CovarianceAccumulator::new(4);
        for r in &data {
            serial.push_row(r).unwrap();
        }

        // Partition bounds from the cuts, then a deterministic shuffle
        // of the shard order from the seed (LCG-driven Fisher-Yates).
        let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (n + 1)).collect();
        bounds.push(0);
        bounds.push(n);
        bounds.sort_unstable();
        bounds.dedup();
        let ranges: Vec<(usize, usize)> = bounds
            .windows(2)
            .filter(|w| w[0] < w[1])
            .map(|w| (w[0], w[1]))
            .collect();
        let mut order: Vec<usize> = (0..ranges.len()).collect();
        let mut s = order_seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }

        let shards: Vec<CovarianceAccumulator> = order
            .iter()
            .map(|&t| {
                let (lo, hi) = ranges[t];
                let mut acc = CovarianceAccumulator::new(4);
                for r in &data[lo..hi] {
                    acc.push_row(r).unwrap();
                }
                // Wire round-trip, as a real shard delivery would.
                ScanCheckpoint::from_json(&ScanCheckpoint::from_accumulator(&acc).to_json())
                    .unwrap()
                    .accumulator()
                    .unwrap()
            })
            .collect();
        let merged = tree_merge(shards).unwrap();

        let (n1, s1, r1) = serial.parts();
        let (n2, s2, r2) = merged.parts();
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(s1, s2, "column sums must be bit-identical in any order");
        prop_assert_eq!(r1, r2, "moments must be bit-identical in any order");
    }
}

/// Strategy: a nonnegative spectrum sorted in descending order, as
/// produced by the eigensolver.
fn spectrum(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..10.0f64, 1..max_len).prop_map(|mut v| {
        v.sort_by(|a, b| b.partial_cmp(a).unwrap());
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 1 minimality: the selected k reaches the energy threshold and
    /// k - 1 does not. The reference prefix sums below repeat select()'s
    /// accumulation order, so the comparison is bit-exact.
    #[test]
    fn cutoff_k_is_minimal(evs in spectrum(12), f in 0.01..=1.0f64) {
        let k = Cutoff::EnergyFraction(f).select(&evs).unwrap();
        prop_assert!((1..=evs.len()).contains(&k), "k={k} out of range");
        let total: f64 = evs.iter().map(|l| l.max(0.0)).sum();
        if total <= 0.0 {
            // Degenerate all-zero spectrum: one rule by convention.
            prop_assert_eq!(k, 1);
        } else {
            let mass = |n: usize| evs[..n].iter().map(|l| l.max(0.0)).sum::<f64>();
            prop_assert!(mass(k) / total >= f, "k={k} misses the threshold");
            if k > 1 {
                prop_assert!(mass(k - 1) / total < f, "k={k} is not minimal");
            }
        }
    }

    /// Raising the energy threshold never keeps fewer rules.
    #[test]
    fn cutoff_k_monotone_in_threshold(
        evs in spectrum(12),
        f1 in 0.01..=1.0f64,
        f2 in 0.01..=1.0f64,
    ) {
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let k_lo = Cutoff::EnergyFraction(lo).select(&evs).unwrap();
        let k_hi = Cutoff::EnergyFraction(hi).select(&evs).unwrap();
        prop_assert!(k_lo <= k_hi, "k({lo})={k_lo} > k({hi})={k_hi}");
    }

    /// "k = 0 iff the threshold is 0": a zero (or negative) threshold is
    /// rejected outright, so a successfully selected k is never 0.
    #[test]
    fn cutoff_never_selects_zero_rules(evs in spectrum(12), f in 0.01..=1.0f64) {
        prop_assert!(Cutoff::EnergyFraction(f).select(&evs).unwrap() >= 1);
        prop_assert!(Cutoff::EnergyFraction(0.0).select(&evs).is_err());
        prop_assert!(Cutoff::EnergyFraction(-f).select(&evs).is_err());
    }
}

/// Strategy: a latency-like sample spanning several decades (the range
/// serve quantiles actually see: sub-microsecond to tens of seconds).
fn latencies(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0.0..6.0f64).prop_map(|e| 10f64.powf(e - 1.0)), 1..max_len)
}

fn feed_quantile(values: &[f64]) -> obs::QuantileSnapshot {
    let q = obs::Quantile::standalone();
    for &v in values {
        q.observe(v);
    }
    q.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Quantile estimates are monotone in q and never exceed the exact
    /// max; in particular p50 <= p99 <= max for any sample.
    #[test]
    fn quantile_estimates_are_monotone_and_capped(values in latencies(400)) {
        let s = feed_quantile(&values);
        let mut prev = 0.0;
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let est = s.quantile(q);
            prop_assert!(est >= prev, "quantile({q}) = {est} < {prev}");
            prop_assert!(est <= s.max, "quantile({q}) = {est} > max {}", s.max);
            prev = est;
        }
        prop_assert!(s.quantile(0.5) <= s.quantile(0.99));
        prop_assert_eq!(s.quantile(1.0), s.max);
    }

    /// Merging two snapshots is bucket-exact: counts, buckets, and max
    /// are identical to feeding the concatenated sample into one
    /// histogram. `sum` is one fp add of two partial sums versus an
    /// element-wise chain, so it only agrees to rounding.
    #[test]
    fn quantile_merge_equals_concatenated_feed(
        a in latencies(200),
        b in latencies(200),
    ) {
        let merged = feed_quantile(&a).merge(&feed_quantile(&b));
        let combined: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let fed = feed_quantile(&combined);
        prop_assert_eq!(&merged.buckets, &fed.buckets);
        prop_assert_eq!(merged.count, fed.count);
        prop_assert_eq!(merged.max.to_bits(), fed.max.to_bits());
        prop_assert!(
            (merged.sum - fed.sum).abs() <= 1e-9 * fed.sum.abs().max(1.0),
            "merged sum {} vs fed sum {}", merged.sum, fed.sum
        );
    }

    /// Every reported quantile lands within one log bucket of the true
    /// order statistic: relative error below 2^(1/8) - 1 (with
    /// float-boundary slack), and never an undershoot.
    #[test]
    fn quantile_relative_error_is_bounded(values in latencies(500)) {
        let s = feed_quantile(&values);
        let mut sorted = values.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).expect("finite sample"));
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = s.quantile(q);
            prop_assert!(
                (est - truth).abs() / truth < 0.092,
                "q={}: est {} vs truth {}", q, est, truth
            );
            prop_assert!(est >= truth * (1.0 - 1e-12), "q={}: undershoot", q);
        }
    }

    /// count and sum aggregate exactly, and the windowed delta of a
    /// snapshot against an earlier baseline recovers just the window.
    #[test]
    fn quantile_delta_recovers_the_window(
        before in latencies(150),
        after in latencies(150),
    ) {
        let q = obs::Quantile::standalone();
        for &v in &before {
            q.observe(v);
        }
        let baseline = q.snapshot();
        prop_assert_eq!(baseline.count, before.len() as u64);
        for &v in &after {
            q.observe(v);
        }
        let window = q.snapshot().delta_since(&baseline);
        prop_assert_eq!(window.count, after.len() as u64);
        let window_buckets = feed_quantile(&after).buckets;
        prop_assert_eq!(&window.buckets, &window_buckets);
    }
}

/// Golden regression: pins k across thresholds on a fixed geometric
/// spectrum (energy halves per rule; cumulative fractions 0.508, 0.762,
/// 0.889, 0.952, 0.984, 1.0). A change in Eq. 1's accounting — clamping,
/// tie-breaking, or comparison direction — shifts at least one of these.
#[test]
fn cutoff_golden_geometric_spectrum() {
    let evs = [50.0, 25.0, 12.5, 6.25, 3.125, 1.5625];
    for (f, expected) in [
        (0.50, 1),
        (0.76, 2),
        (0.85, 3),
        (0.90, 4),
        (0.97, 5),
        (0.99, 6),
        (1.00, 6),
    ] {
        let k = Cutoff::EnergyFraction(f).select(&evs).unwrap();
        assert_eq!(k, expected, "threshold {f}");
    }
}

/// A `Read` impl that hands the stream back in pre-chosen segments, one
/// segment per `read` call, to exercise every byte boundary a socket
/// could produce (TCP may fragment anywhere, including inside
/// `"\r\n\r\n"` or a `content-length` digit).
struct Segmented {
    data: Vec<u8>,
    cuts: Vec<usize>,
    pos: usize,
}

impl Segmented {
    /// `raw_cuts` are arbitrary; they are folded into `0..=len` bounds.
    fn new(data: Vec<u8>, raw_cuts: &[usize]) -> Segmented {
        let mut cuts: Vec<usize> = raw_cuts.iter().map(|&c| c % (data.len() + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        Segmented { data, cuts, pos: 0 }
    }
}

impl std::io::Read for Segmented {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let cut_end = self
            .cuts
            .iter()
            .copied()
            .find(|&c| c > self.pos)
            .unwrap_or(self.data.len());
        let n = (cut_end - self.pos).min(out.len());
        out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

const METHODS: [&str; 3] = ["GET", "POST", "PUT"];
const PATHS: [&str; 3] = ["/predict", "/healthz", "/models"];

/// Strategy: a pipelined stream of 1..`max` requests, each with a
/// random method/path pair and a random (possibly binary) body.
fn pipeline_requests(
    max: usize,
) -> impl Strategy<Value = Vec<(usize, usize, Vec<u8>)>> {
    proptest::collection::vec(
        (0usize..3, 0usize..3, proptest::collection::vec(0u8..=255u8, 0..160)),
        1..max,
    )
}

/// Serializes the generated requests back-to-back, as a pipelining
/// client would put them on the wire.
fn raw_stream(reqs: &[(usize, usize, Vec<u8>)]) -> Vec<u8> {
    let mut stream = Vec::new();
    for (i, (m, p, body)) in reqs.iter().enumerate() {
        stream.extend_from_slice(
            format!(
                "{} {} HTTP/1.1\r\nx-seq: {}\r\ncontent-length: {}\r\n\r\n",
                METHODS[*m],
                PATHS[*p],
                i,
                body.len()
            )
            .as_bytes(),
        );
        stream.extend_from_slice(body);
    }
    stream
}

/// Reference parse: drive the pure `try_parse` over the whole buffer in
/// one shot, draining each complete request from the front.
fn parse_all(mut rest: &[u8]) -> Vec<serve::protocol::Request> {
    use serve::protocol::{try_parse, Parsed};
    let mut out = Vec::new();
    while let Parsed::Complete(req, consumed) = try_parse(rest).unwrap() {
        out.push(req);
        rest = &rest[consumed..];
    }
    assert!(rest.is_empty(), "reference parse left {} bytes", rest.len());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any byte-boundary segmentation of a pipelined request stream
    /// parses to exactly the same requests — method, path, header
    /// order, and body bytes — as the one-shot parse of the full
    /// buffer, and the reader ends exactly at a request boundary.
    #[test]
    fn segmented_parse_equals_one_shot(
        reqs in pipeline_requests(6),
        cuts in proptest::collection::vec(0usize..4096, 0..16),
    ) {
        use serve::protocol::RequestReader;

        let stream = raw_stream(&reqs);
        let reference = parse_all(&stream);
        prop_assert_eq!(reference.len(), reqs.len());

        let mut seg = Segmented::new(stream, &cuts);
        let mut reader = RequestReader::new();
        let mut got = Vec::new();
        while let Some(req) = reader.next_request(&mut seg).unwrap() {
            got.push(req);
        }
        prop_assert_eq!(got.len(), reference.len());
        for (a, b) in got.iter().zip(&reference) {
            prop_assert_eq!(&a.method, &b.method);
            prop_assert_eq!(&a.path, &b.path);
            prop_assert_eq!(&a.headers, &b.headers);
            prop_assert_eq!(&a.body, &b.body);
        }
        // EOF landed exactly on a request boundary: clean close, no
        // leftover read-ahead.
        prop_assert!(reader.next_request(&mut seg).unwrap().is_none());
        prop_assert!(!reader.has_buffered());
    }

    /// A request declaring a body over `MAX_BODY_BYTES` is rejected as
    /// `TooLarge` the moment its head completes — before any body byte
    /// arrives — for every segmentation, and every pipelined request
    /// ahead of it still parses identically to the one-shot reference
    /// (no desync from the poison request).
    #[test]
    fn oversized_body_rejected_mid_stream_without_desync(
        lead in pipeline_requests(4),
        cuts in proptest::collection::vec(0usize..4096, 0..16),
        excess in 1usize..1_000_000,
    ) {
        use serve::protocol::{HttpError, RequestReader, MAX_BODY_BYTES};

        let mut stream = raw_stream(&lead);
        // The poison head declares an oversized body and sends none of
        // it: the declared length alone must trigger the error.
        stream.extend_from_slice(
            format!(
                "POST /predict HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                MAX_BODY_BYTES + excess
            )
            .as_bytes(),
        );

        let reference = parse_all(&raw_stream(&lead));
        let mut seg = Segmented::new(stream, &cuts);
        let mut reader = RequestReader::new();
        for expected in &reference {
            let got = reader.next_request(&mut seg).unwrap().unwrap();
            prop_assert_eq!(&got.method, &expected.method);
            prop_assert_eq!(&got.path, &expected.path);
            prop_assert_eq!(&got.headers, &expected.headers);
            prop_assert_eq!(&got.body, &expected.body);
        }
        match reader.next_request(&mut seg) {
            Err(HttpError::TooLarge(msg)) => prop_assert!(msg.contains("body")),
            other => prop_assert!(false, "expected TooLarge, got {:?}", other),
        }
    }

    /// A header block that outgrows `MAX_HEAD_BYTES` is rejected as
    /// `TooLarge` for every segmentation — both incrementally (no
    /// terminator in sight yet) and when the late terminator finally
    /// proves the overrun.
    #[test]
    fn oversized_head_rejected_for_any_segmentation(
        pad in 0usize..2048,
        cuts in proptest::collection::vec(0usize..32_768, 0..12),
    ) {
        use serve::protocol::{HttpError, RequestReader, MAX_HEAD_BYTES};

        let mut head = b"GET /predict HTTP/1.1\r\nx-filler: ".to_vec();
        head.resize(MAX_HEAD_BYTES + 4 + pad, b'a');

        // Unterminated head: the overrun is flagged from the buffered
        // length alone, before "\r\n\r\n" ever shows up.
        let mut seg = Segmented::new(head.clone(), &cuts);
        match RequestReader::new().next_request(&mut seg) {
            Err(HttpError::TooLarge(msg)) => prop_assert!(msg.contains("headers")),
            other => prop_assert!(false, "unterminated: expected TooLarge, got {:?}", other),
        }

        // Terminated head: same verdict once the terminator lands past
        // the limit.
        head.extend_from_slice(b"\r\n\r\n");
        let mut seg = Segmented::new(head, &cuts);
        match RequestReader::new().next_request(&mut seg) {
            Err(HttpError::TooLarge(msg)) => prop_assert!(msg.contains("headers")),
            other => prop_assert!(false, "terminated: expected TooLarge, got {:?}", other),
        }
    }
}
