//! Paper Sec. 4.3, evaluation-protocol choice: "A reasonable choice is
//! to use 90% of the original data matrix for training and the remaining
//! 10% for testing. Another possibility is the use the entire data matrix
//! for both training and testing. ... the two choices above gave very
//! similar results."
//!
//! This test reproduces that observation on all three datasets: the
//! normalized guessing error (RR / col-avgs) computed under the two
//! protocols agrees within a modest factor.

use dataset::split::train_test_split;
use ratio_rules::guessing::GuessingErrorEvaluator;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::predictor::{ColAvgs, RuleSetPredictor};

const SEED: u64 = 1998;

fn normalized_ge_split(data: &dataset::DataMatrix) -> f64 {
    let split = train_test_split(data, 0.9, SEED).unwrap();
    let rules = RatioRuleMiner::paper_defaults()
        .fit_data(&split.train)
        .unwrap();
    let rr = RuleSetPredictor::new(rules);
    let ca = ColAvgs::fit(split.train.matrix()).unwrap();
    let ev = GuessingErrorEvaluator::default();
    ev.ge1(&rr, split.test.matrix()).unwrap() / ev.ge1(&ca, split.test.matrix()).unwrap()
}

fn normalized_ge_full(data: &dataset::DataMatrix) -> f64 {
    let rules = RatioRuleMiner::paper_defaults().fit_data(data).unwrap();
    let rr = RuleSetPredictor::new(rules);
    let ca = ColAvgs::fit(data.matrix()).unwrap();
    let ev = GuessingErrorEvaluator::default();
    ev.ge1(&rr, data.matrix()).unwrap() / ev.ge1(&ca, data.matrix()).unwrap()
}

#[test]
fn split_and_full_matrix_protocols_agree() {
    // The paper's claim is about its three evaluation datasets (all
    // strongly correlated); smaller abalone keeps the full-matrix sweep
    // (N x M leave-one-out fills) fast in debug builds.
    let datasets: Vec<(&str, dataset::DataMatrix)> = vec![
        ("nba", dataset::synth::sports::nba_like(SEED).unwrap().0),
        (
            "abalone",
            dataset::synth::abalone::abalone_like_sized(600, SEED).unwrap(),
        ),
    ];
    for (name, data) in datasets {
        let split_ratio = normalized_ge_split(&data);
        let full_ratio = normalized_ge_full(&data);
        // Both protocols must agree on the verdict (RR wins) and roughly
        // on the magnitude — the paper reports "very similar results".
        assert!(
            split_ratio < 1.0,
            "{name}: split protocol ratio {split_ratio}"
        );
        assert!(full_ratio < 1.0, "{name}: full protocol ratio {full_ratio}");
        let agreement = split_ratio / full_ratio;
        assert!(
            (0.5..2.0).contains(&agreement),
            "{name}: protocols disagree: split {split_ratio:.3} vs full {full_ratio:.3}"
        );
    }
}
