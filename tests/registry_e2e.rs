//! End-to-end tests of the hot-swap model registry over real sockets:
//! `POST /models` publishes, `GET /models` listings, `x-model-version`
//! pinning, shadow (canary) divergence counting, and the torn-read
//! hammer — concurrent keep-alive clients fire `/predict` through a
//! storm of hot swaps, and every response must bit-match exactly one
//! version's single-shot oracle with the version header agreeing.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use dataset::holes::{HoleSet, HoledRow};
use linalg::Matrix;
use obs::json::JsonValue;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::predictor::{Predictor, RuleSetPredictor};
use ratio_rules::rules::RuleSet;
use serve::{BatchConfig, ServeModel, Server, ServerConfig};

/// Rank-2 training data in 4 attributes; `seed` rotates the direction
/// mix so differently-seeded models genuinely predict differently.
fn training_matrix(seed: u64) -> Matrix {
    let s = 1.0 + (seed % 5) as f64;
    let d1 = [2.0, 1.0, 0.0, 1.0 + s];
    let d2 = [0.0, 1.0 + s, 3.0, -1.0];
    Matrix::from_fn(40, 4, |i, j| {
        let a = (i as f64 % 7.0) - 3.0;
        let b = ((i * 3) as f64 % 5.0) - 2.0;
        10.0 + a * d1[j] + b * d2[j]
    })
}

fn mine(seed: u64) -> RuleSet {
    RatioRuleMiner::new(Cutoff::FixedK(2))
        .fit_matrix(&training_matrix(seed))
        .unwrap()
}

fn start_server() -> (Server, SocketAddr) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        batch: BatchConfig {
            max_batch: 32,
            batch_window: Duration::from_millis(1),
            max_queue: 1024,
            deadline: Duration::from_secs(5),
        },
        io_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let server = Server::start(
        cfg,
        ServeModel::from_served(ratio_rules::resilience::ServedModel::Rules(mine(0))),
    )
    .unwrap();
    let addr = server.addr();
    (server, addr)
}

/// Reads `Content-Length`-framed responses off a persistent connection.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    fn open(addr: SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Conn {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, method: &str, path: &str, body: &str, extra: &str) {
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n{extra}\r\n{body}",
            body.len()
        );
        self.stream.write_all(raw.as_bytes()).unwrap();
    }

    fn next(&mut self) -> (u16, Vec<(String, String)>, String) {
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = self.stream.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed before the response head ended");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(self.buf[..head_end - 4].to_vec()).unwrap();
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .unwrap()
            .split_ascii_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .map(|(_, v)| v.parse().unwrap())
            .expect("responses declare content-length");
        let total = head_end + content_length;
        while self.buf.len() < total {
            let n = self.stream.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8(self.buf[head_end..total].to_vec()).unwrap();
        self.buf.drain(..total);
        (status, headers, body)
    }

    fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        extra: &str,
    ) -> (u16, Vec<(String, String)>, String) {
        self.send(method, path, body, extra);
        self.next()
    }
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn rows_body(rows: &[HoledRow]) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            let row: Vec<String> = r
                .values
                .iter()
                .map(|c| match c {
                    Some(v) => format!("{v}"),
                    None => "null".to_string(),
                })
                .collect();
            format!("[{}]", row.join(","))
        })
        .collect();
    format!("{{\"rows\":[{}]}}", cells.join(","))
}

fn predicted_values(body: &str) -> Vec<Vec<f64>> {
    let doc = obs::json::parse(body).unwrap();
    doc.get("rows")
        .and_then(JsonValue::as_arr)
        .unwrap()
        .iter()
        .map(|row| {
            row.get("values")
                .and_then(JsonValue::as_arr)
                .unwrap_or_else(|| panic!("row without values: {row:?}"))
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect()
        })
        .collect()
}

fn publish_body(rules: &RuleSet, name: &str, extra_fields: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",{extra_fields}\"model\":{}}}",
        ratio_rules::model_json::rules_to_string(rules)
    )
}

#[test]
fn publish_list_and_pin_flow() {
    obs::set_enabled(true);
    let (server, addr) = start_server();
    let v1_oracle = RuleSetPredictor::new(mine(0));
    let v2_rules = mine(1);
    let v2_oracle = RuleSetPredictor::new(v2_rules.clone());

    let mut conn = Conn::open(addr);
    // Publish + activate a second model over the wire.
    let (status, headers, body) =
        conn.roundtrip("POST", "/models", &publish_body(&v2_rules, "v2", ""), "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(header(&headers, "x-model-version"), Some("2"));
    let doc = obs::json::parse(&body).unwrap();
    assert_eq!(doc.get("version").and_then(JsonValue::as_f64), Some(2.0));
    assert_eq!(doc.get("active"), Some(&JsonValue::Bool(true)));

    // Unpinned traffic now answers from v2, stamped with its version.
    let row = HoleSet::new(vec![1], 4)
        .unwrap()
        .apply(training_matrix(1).row(5))
        .unwrap();
    let body_req = rows_body(std::slice::from_ref(&row));
    let (status, headers, body) = conn.roundtrip("POST", "/predict", &body_req, "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(header(&headers, "x-model-version"), Some("2"));
    assert_eq!(predicted_values(&body)[0], v2_oracle.fill(&row).unwrap());

    // The old version stays pinnable and still answers its own bits.
    let (status, headers, body) =
        conn.roundtrip("POST", "/predict", &body_req, "x-model-version: 1\r\n");
    assert_eq!(status, 200, "{body}");
    assert_eq!(header(&headers, "x-model-version"), Some("1"));
    assert_eq!(predicted_values(&body)[0], v1_oracle.fill(&row).unwrap());

    // Pin errors: unknown version 404s, garbage 400s.
    assert_eq!(
        conn.roundtrip("POST", "/predict", &body_req, "x-model-version: 99\r\n")
            .0,
        404
    );
    assert_eq!(
        conn.roundtrip("POST", "/predict", &body_req, "x-model-version: nope\r\n")
            .0,
        400
    );

    // GET /models lists both versions with the right flags.
    let (status, _, listing) = conn.roundtrip("GET", "/models", "", "");
    assert_eq!(status, 200);
    let doc = obs::json::parse(&listing).unwrap();
    assert_eq!(
        doc.get("active_version").and_then(JsonValue::as_f64),
        Some(2.0)
    );
    let models = doc.get("models").and_then(JsonValue::as_arr).unwrap();
    assert_eq!(models.len(), 2);
    let by_version = |v: f64| {
        models
            .iter()
            .find(|m| m.get("version").and_then(JsonValue::as_f64) == Some(v))
            .unwrap_or_else(|| panic!("version {v} missing from {listing}"))
    };
    assert_eq!(
        by_version(1.0).get("active"),
        Some(&JsonValue::Bool(false))
    );
    assert_eq!(by_version(2.0).get("active"), Some(&JsonValue::Bool(true)));
    assert_eq!(
        by_version(2.0).get("name").and_then(JsonValue::as_str),
        Some("v2")
    );

    // /healthz reports the registry state too.
    let (status, _, health) = conn.roundtrip("GET", "/healthz", "", "");
    assert_eq!(status, 200);
    let doc = obs::json::parse(&health).unwrap();
    assert_eq!(
        doc.get("model_version").and_then(JsonValue::as_f64),
        Some(2.0)
    );
    assert_eq!(
        doc.get("model_versions").and_then(JsonValue::as_f64),
        Some(2.0)
    );
    server.shutdown();
}

#[test]
fn publish_rejects_invalid_payloads_without_disturbing_serving() {
    obs::set_enabled(true);
    let (server, addr) = start_server();
    let oracle = RuleSetPredictor::new(mine(0));
    let mut conn = Conn::open(addr);

    // No "model" subtree.
    assert_eq!(
        conn.roundtrip("POST", "/models", "{\"name\":\"x\"}", "").0,
        400
    );
    // Garbage model document.
    assert_eq!(
        conn.roundtrip("POST", "/models", "{\"model\":{\"nope\":1}}", "")
            .0,
        400
    );
    // Wrong width: a 3-attribute model into a 4-attribute server. The
    // document itself is valid — rejection happens at the registry's
    // trust boundary.
    let narrow = RatioRuleMiner::new(Cutoff::FixedK(1))
        .fit_matrix(&Matrix::from_fn(30, 3, |i, j| {
            (i as f64 + 1.0) * (j as f64 + 1.0)
        }))
        .unwrap();
    let (status, _, body) =
        conn.roundtrip("POST", "/models", &publish_body(&narrow, "narrow", ""), "");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("attributes"), "{body}");

    // Serving is untouched: still version 1, still bit-exact.
    let row = HoleSet::new(vec![0], 4)
        .unwrap()
        .apply(training_matrix(0).row(7))
        .unwrap();
    let (status, headers, body) =
        conn.roundtrip("POST", "/predict", &rows_body(std::slice::from_ref(&row)), "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(header(&headers, "x-model-version"), Some("1"));
    assert_eq!(predicted_values(&body)[0], oracle.fill(&row).unwrap());
    server.shutdown();
}

/// The torn-read hammer (tentpole acceptance): concurrent keep-alive
/// clients fire `/predict` while the main thread hot-swaps between two
/// models over and over. Every response must bit-match exactly one
/// version's single-shot oracle, and the `x-model-version` header must
/// agree with which.
#[test]
fn hot_swap_hammer_never_tears_a_response() {
    obs::set_enabled(true);
    let (server, addr) = start_server();
    let model_a = mine(0);
    let model_b = mine(1);
    let oracle_a = RuleSetPredictor::new(model_a.clone());
    let oracle_b = RuleSetPredictor::new(model_b.clone());

    // Versions alternate A, B, A, B, ...: version v serves A when v is
    // odd (v1 = boot = A), B when even.
    let x = training_matrix(0);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..3usize {
            let stop = &stop;
            let (oracle_a, oracle_b) = (&oracle_a, &oracle_b);
            let x = &x;
            scope.spawn(move || {
                let mut conn = Conn::open(addr);
                let mut i = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let hole = (t + i) % 4;
                    let row = HoleSet::new(vec![hole], 4)
                        .unwrap()
                        .apply(x.row((t * 13 + i) % 40))
                        .unwrap();
                    let (status, headers, body) = conn.roundtrip(
                        "POST",
                        "/predict",
                        &rows_body(std::slice::from_ref(&row)),
                        "",
                    );
                    assert_eq!(status, 200, "{body}");
                    let version: u64 = header(&headers, "x-model-version")
                        .expect("stamped version")
                        .parse()
                        .unwrap();
                    let want = if version % 2 == 1 {
                        oracle_a.fill(&row).unwrap()
                    } else {
                        oracle_b.fill(&row).unwrap()
                    };
                    let got = &predicted_values(&body)[0];
                    assert_eq!(
                        got, &want,
                        "response (version {version}) does not bit-match its own \
                         version's oracle — torn read across a swap"
                    );
                    i += 1;
                }
            });
        }

        // Ten swaps under fire, spaced so traffic lands on both sides.
        let registry = server.registry();
        for swap in 0..10u64 {
            std::thread::sleep(Duration::from_millis(40));
            let next = if swap % 2 == 0 {
                ratio_rules::resilience::ServedModel::Rules(model_b.clone())
            } else {
                ratio_rules::resilience::ServedModel::Rules(model_a.clone())
            };
            registry
                .publish(next, &format!("swap{swap}"), true, false)
                .expect("publish under load");
        }
        std::thread::sleep(Duration::from_millis(80));
        stop.store(true, Ordering::SeqCst);
    });
    server.shutdown();
}

/// Shadow (canary) routing: a non-activated shadow version gets every
/// answered row replayed off the response path; divergences from the
/// active model are counted and exposed on `GET /models`.
#[test]
fn shadow_routing_counts_divergences_off_the_response_path() {
    obs::set_enabled(true);
    let (server, addr) = start_server();
    let oracle_a = RuleSetPredictor::new(mine(0));
    let mut conn = Conn::open(addr);

    // Publish a *different* model as shadow, without activating.
    let (status, _, body) = conn.roundtrip(
        "POST",
        "/models",
        &publish_body(&mine(1), "canary", "\"activate\":false,\"shadow\":true,"),
        "",
    );
    assert_eq!(status, 200, "{body}");

    // Traffic still answers from v1 (the active model), bit-exact.
    let x = training_matrix(0);
    for i in 0..8usize {
        let row = HoleSet::new(vec![i % 4], 4)
            .unwrap()
            .apply(x.row(i * 5 % 40))
            .unwrap();
        let (status, headers, body) =
            conn.roundtrip("POST", "/predict", &rows_body(std::slice::from_ref(&row)), "");
        assert_eq!(status, 200, "{body}");
        assert_eq!(header(&headers, "x-model-version"), Some("1"));
        assert_eq!(predicted_values(&body)[0], oracle_a.fill(&row).unwrap());
    }

    // The shadow worker replays asynchronously; poll the listing until
    // the counters show it solved (and diverged — the models differ).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, _, listing) = conn.roundtrip("GET", "/models", "", "");
        assert_eq!(status, 200);
        let doc = obs::json::parse(&listing).unwrap();
        let solves = doc
            .get("shadow_solves")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        let divergences = doc
            .get("shadow_divergences")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        if solves >= 8.0 && divergences >= 1.0 {
            // The listing also marks the canary.
            let models = doc.get("models").and_then(JsonValue::as_arr).unwrap();
            let canary = models
                .iter()
                .find(|m| m.get("name").and_then(JsonValue::as_str) == Some("canary"))
                .expect("canary listed");
            assert_eq!(canary.get("shadow"), Some(&JsonValue::Bool(true)));
            assert_eq!(canary.get("active"), Some(&JsonValue::Bool(false)));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "shadow counters never moved: solves {solves}, divergences {divergences}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}
