//! Robustness and failure-injection tests: degenerate datasets, corrupt
//! input, extreme scales — the situations a production deployment hits
//! that the paper's clean experiments never exercise.

use dataset::holes::HoledRow;
use dataset::source::MatrixSource;
use linalg::Matrix;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::guessing::GuessingErrorEvaluator;
use ratio_rules::miner::{EigenSolver, RatioRuleMiner};
use ratio_rules::predictor::{ColAvgs, RuleSetPredictor};
use ratio_rules::reconstruct::fill_holes;
use ratio_rules::RatioRuleError;

/// A NaN cell in the stream is reported with its location, not silently
/// absorbed into the covariance.
#[test]
fn nan_cell_is_rejected_with_location() {
    let mut x = Matrix::from_fn(10, 3, |i, j| (i * 3 + j) as f64);
    x[(4, 2)] = f64::NAN;
    let err = RatioRuleMiner::paper_defaults().fit_matrix(&x).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("column 2"), "message: {msg}");
    assert!(msg.contains("row 5"), "message: {msg}");
}

/// A completely constant matrix has zero variance everywhere: mining
/// still succeeds (one rule, by the degenerate-spectrum convention) and
/// every prediction equals the column mean.
#[test]
fn constant_matrix_degenerates_to_means() {
    let x = Matrix::from_fn(20, 3, |_, j| [7.0, -2.0, 0.5][j]);
    let rules = RatioRuleMiner::paper_defaults().fit_matrix(&x).unwrap();
    assert_eq!(rules.k(), 1);
    let filled = fill_holes(&rules, &HoledRow::new(vec![Some(7.0), None, None])).unwrap();
    assert!((filled.values[1] + 2.0).abs() < 1e-9);
    assert!((filled.values[2] - 0.5).abs() < 1e-9);

    // And its guessing error equals the baseline's exactly (both zero
    // here: the data is constant).
    let ev = GuessingErrorEvaluator::default();
    let rr = RuleSetPredictor::new(rules);
    let ca = ColAvgs::fit(&x).unwrap();
    assert_eq!(ev.ge1(&rr, &x).unwrap(), 0.0);
    assert_eq!(ev.ge1(&ca, &x).unwrap(), 0.0);
}

/// Single-row training: covariance is all zeros, but the pipeline does
/// not panic and predictions return the (only) row's values as means.
#[test]
fn single_training_row_is_survivable() {
    let x = Matrix::from_rows(&[&[3.0, 6.0, 9.0]]).unwrap();
    let rules = RatioRuleMiner::paper_defaults().fit_matrix(&x).unwrap();
    let filled = fill_holes(&rules, &HoledRow::new(vec![Some(1.0), None, None])).unwrap();
    assert!((filled.values[1] - 6.0).abs() < 1e-9);
}

/// Duplicated rows must not break anything and must not change the mined
/// directions (covariance scales, eigenvectors do not).
#[test]
fn duplicated_rows_leave_directions_unchanged() {
    let base = Matrix::from_fn(30, 3, |i, j| {
        let t = 1.0 + i as f64;
        t * [3.0, 2.0, 1.0][j] + ((i * 7 + j) % 5) as f64 * 0.01
    });
    let mut doubled_rows: Vec<f64> = base.data().to_vec();
    doubled_rows.extend_from_slice(base.data());
    let doubled = Matrix::from_vec(60, 3, doubled_rows).unwrap();

    let a = RatioRuleMiner::new(Cutoff::FixedK(1))
        .fit_matrix(&base)
        .unwrap();
    let b = RatioRuleMiner::new(Cutoff::FixedK(1))
        .fit_matrix(&doubled)
        .unwrap();
    for (x, y) in a.rule(0).loadings.iter().zip(&b.rule(0).loadings) {
        assert!((x - y).abs() < 1e-10);
    }
    // Eigenvalue (scatter) doubles with the row count.
    assert!(
        (2.0 * a.rule(0).eigenvalue - b.rule(0).eigenvalue).abs() < 1e-6 * b.rule(0).eigenvalue
    );
}

/// Data at 1e9 magnitude: the single-pass covariance loses some digits
/// to cancellation (documented paper trade-off) but the mined direction
/// still matches the two-pass oracle to good precision.
#[test]
fn extreme_scale_mining_stays_accurate() {
    let x = Matrix::from_fn(200, 3, |i, j| {
        let t = i as f64;
        1e9 + t * [30.0, 20.0, 10.0][j] + ((i * 13 + j * 7) % 11) as f64
    });
    let rules = RatioRuleMiner::new(Cutoff::FixedK(1))
        .fit_matrix(&x)
        .unwrap();

    let c_ref = dataset::stats::covariance_two_pass(&x).unwrap();
    let eig = linalg::eigen::SymmetricEigen::new(&c_ref).unwrap();
    let reference = eig.eigenvector(0);
    let cos = linalg::vector::cosine(&rules.rule(0).loadings, &reference).unwrap();
    assert!(cos > 1.0 - 1e-6, "direction cosine {cos}");
}

/// Near-duplicate attributes (correlation ~1) produce a nearly singular
/// covariance; mining, filling, and outlier scoring must all stay finite.
#[test]
fn collinear_attributes_do_not_explode() {
    let x = Matrix::from_fn(50, 4, |i, j| {
        let t = 1.0 + i as f64;
        match j {
            0 => t,
            1 => t + 1e-9 * (i % 3) as f64, // virtually identical to attr 0
            2 => 2.0 * t,
            _ => 5.0,
        }
    });
    let rules = RatioRuleMiner::paper_defaults().fit_matrix(&x).unwrap();
    let filled = fill_holes(&rules, &HoledRow::new(vec![Some(10.0), None, None, None])).unwrap();
    assert!(filled.values.iter().all(|v| v.is_finite()));
    assert!(
        (filled.values[1] - 10.0).abs() < 1e-3,
        "near-copy should track attr 0"
    );
    assert!((filled.values[2] - 20.0).abs() < 1e-3);
}

/// Lanczos backend on a moderately wide matrix agrees with dense mining
/// end to end (predictions, not just eigenvalues).
#[test]
fn wide_matrix_lanczos_predictions_match_dense() {
    let m = 60;
    let x = Matrix::from_fn(300, m, |i, j| {
        let a = ((i * 7) % 13) as f64 - 6.0;
        let b = ((i * 11) % 17) as f64 - 8.0;
        a * ((j % 5) as f64 + 1.0) + b * if j % 2 == 0 { 1.0 } else { -0.5 }
    });
    let dense = RatioRuleMiner::new(Cutoff::FixedK(2))
        .fit_matrix(&x)
        .unwrap();
    let lanczos = RatioRuleMiner::new(Cutoff::FixedK(2))
        .with_solver(EigenSolver::Lanczos { max_k: 4 })
        .fit_matrix(&x)
        .unwrap();

    let mut probe: Vec<Option<f64>> = x.row(5).iter().copied().map(Some).collect();
    probe[3] = None;
    probe[40] = None;
    let row = HoledRow::new(probe);
    let a = fill_holes(&dense, &row).unwrap();
    let b = fill_holes(&lanczos, &row).unwrap();
    for (x, y) in a.values.iter().zip(&b.values) {
        assert!((x - y).abs() < 1e-6, "{x} vs {y}");
    }
}

/// Empty and absurd inputs fail loudly everywhere, never panic.
#[test]
fn degenerate_inputs_error_cleanly() {
    // Zero-column stream.
    let x = Matrix::zeros(5, 0);
    let mut src = MatrixSource::new(&x);
    assert!(RatioRuleMiner::paper_defaults().fit(&mut src).is_err());

    // Fill against a mismatched model.
    let good = Matrix::from_fn(10, 2, |i, j| (i + j) as f64);
    let rules = RatioRuleMiner::paper_defaults().fit_matrix(&good).unwrap();
    assert!(matches!(
        fill_holes(&rules, &HoledRow::new(vec![Some(1.0), None, None])),
        Err(RatioRuleError::WidthMismatch { .. })
    ));
}

/// Full-pipeline chaos run: injected faults at 1% and 10%, quarantine
/// policy, retrying source — the mined rules match a clean mine of the
/// surviving rows, and the report accounts for every injected fault.
#[test]
fn chaos_pipeline_mines_through_injected_faults() {
    use dataset::fault::{FaultPlan, FaultyRowSource};
    use dataset::retry::{BackoffPolicy, RetryingSource};
    use ratio_rules::resilience::{ScanPolicy, Scanner};

    let x = Matrix::from_fn(300, 4, |i, j| {
        let t = i as f64;
        (t * [1.3, 0.7, 2.1, 0.4][j]).sin() * 8.0 + t * 0.02 * (j as f64 + 1.0)
    });
    for rate in [0.01, 0.10] {
        let plan = FaultPlan {
            seed: 77,
            transient_rate: rate,
            corrupt_rate: rate,
            arity_rate: rate,
            truncate_after: None,
        };
        let faulty = FaultyRowSource::new(MatrixSource::new(&x), plan);
        let mut src = RetryingSource::new(faulty, BackoffPolicy::immediate(4));
        let mut scanner = Scanner::new(
            4,
            ScanPolicy::Quarantine {
                max_bad_rows: None,
                max_bad_fraction: Some(0.5),
            },
        );
        scanner.scan(&mut src).unwrap();
        let (acc, report) = scanner.into_parts();
        let rules = RatioRuleMiner::new(Cutoff::FixedK(2)).finish(&acc).unwrap();

        // Clean-subset reference mine must agree exactly.
        let clean_rows: Vec<usize> = (0..300).filter(|&p| plan.row_is_clean(p, 4)).collect();
        let clean = Matrix::from_fn(clean_rows.len(), 4, |i, j| x[(clean_rows[i], j)]);
        let reference = RatioRuleMiner::new(Cutoff::FixedK(2))
            .fit_matrix(&clean)
            .unwrap();
        assert_eq!(rules.k(), reference.k(), "rate {rate}");
        for (a, b) in rules.rules().iter().zip(reference.rules()) {
            assert_eq!(a.eigenvalue.to_bits(), b.eigenvalue.to_bits(), "rate {rate}");
        }
        assert_eq!(report.rows_absorbed, clean_rows.len(), "rate {rate}");
        assert_eq!(report.rows_quarantined, 300 - clean_rows.len(), "rate {rate}");
    }
}

/// Strict policy (the default) refuses to ride out faults: the first
/// corrupt row aborts the scan with its location.
#[test]
fn strict_policy_fails_fast_under_faults() {
    use dataset::fault::{FaultPlan, FaultyRowSource};
    use ratio_rules::resilience::{ScanPolicy, Scanner};

    let x = Matrix::from_fn(200, 3, |i, j| (i * 3 + j) as f64);
    let plan = FaultPlan {
        seed: 11,
        transient_rate: 0.0,
        corrupt_rate: 0.2,
        arity_rate: 0.0,
        truncate_after: None,
    };
    let mut src = FaultyRowSource::new(MatrixSource::new(&x), plan);
    let mut scanner = Scanner::new(3, ScanPolicy::Strict);
    let err = scanner.scan(&mut src).unwrap_err();
    assert!(
        err.to_string().contains("non-finite"),
        "strict scan must surface the corruption: {err}"
    );
}

/// Forcing every eigensolve stage to fail degrades to the col-avgs
/// baseline — a usable predictor, not an error.
#[test]
fn total_eigensolve_failure_serves_col_avgs() {
    use ratio_rules::predictor::Predictor;
    use ratio_rules::resilience::{DegradationLevel, ResilientMiner, ScanPolicy, Scanner};

    let x = Matrix::from_fn(50, 3, |i, j| (3.0 - j as f64) * (1.0 + i as f64));
    let mut src = MatrixSource::new(&x);
    let mut scanner = Scanner::new(3, ScanPolicy::Strict);
    scanner.scan(&mut src).unwrap();
    let (acc, _) = scanner.into_parts();

    let (model, report) = ResilientMiner::new(Cutoff::FixedK(2))
        .with_ladder(Vec::new())
        .finish(&acc)
        .unwrap();
    assert_eq!(report.level, DegradationLevel::ColAvgs);
    let predictor = model.into_predictor();
    let filled = predictor
        .fill(&HoledRow::new(vec![Some(3.0), None, None]))
        .unwrap();
    // Col-avgs ignore the pinned cell and serve the column means.
    let col1_mean = (0..50).map(|i| x[(i, 1)]).sum::<f64>() / 50.0;
    assert!((filled[1] - col1_mean).abs() < 1e-9);
}

/// The guessing error of RR can never be *worse* than col-avgs by more
/// than the evaluation noise on data where both see the same means —
/// sanity bound on the k=0 equivalence argument.
#[test]
fn rr_never_catastrophically_underperforms_baseline() {
    // Pure noise data: no structure to exploit.
    let x = Matrix::from_fn(80, 4, |i, j| (((i * 31 + j * 17) % 23) as f64) - 11.0);
    let rules = RatioRuleMiner::paper_defaults().fit_matrix(&x).unwrap();
    let ev = GuessingErrorEvaluator::default();
    let rr = RuleSetPredictor::new(rules);
    let ca = ColAvgs::fit(&x).unwrap();
    let ge_rr = ev.ge1(&rr, &x).unwrap();
    let ge_ca = ev.ge1(&ca, &x).unwrap();
    assert!(
        ge_rr < 2.0 * ge_ca,
        "on structureless data RR ({ge_rr}) must stay near the baseline ({ge_ca})"
    );
}
