//! Property tests for the rrlint lexer and token-tree parser: both must
//! be *total* (never panic, never lose input) on arbitrary byte soup,
//! and must round-trip the adversarial corners of Rust's grammar that
//! the hand-rolled scanner handles specially.

use analyzer::lexer::{tokenize, Tok, TokKind};
use analyzer::tree::{parse, Delim, Tree};
use proptest::prelude::*;

/// Every token's span must lie inside the source, and offsets must be
/// strictly increasing (no token overlaps or goes backwards).
fn well_formed(src: &str) {
    let toks = tokenize(src);
    let mut prev_end = 0usize;
    for t in &toks {
        assert!(t.start >= prev_end, "overlapping tokens in {src:?}");
        let end = t.start + t.text.len();
        assert!(end <= src.len(), "token past EOF in {src:?}");
        assert_eq!(
            &src[t.start..end],
            t.text,
            "token text disagrees with span in {src:?}"
        );
        prev_end = end;
    }
}

proptest! {
    /// Lexing is total: any string at all, including invalid UTF-8-free
    /// byte soup, unterminated literals, and stray quotes, produces a
    /// token stream without panicking.
    #[test]
    fn lexing_is_total_on_arbitrary_strings(src in ".{0,200}") {
        well_formed(&src);
    }

    /// Heavy-on-delimiters alphabet: the characters most likely to
    /// confuse a scanner (quotes, hashes, slashes, stars, primes).
    #[test]
    fn lexing_is_total_on_delimiter_soup(src in r#"['"r#b/*\\\n a0]{0,120}"#) {
        well_formed(&src);
    }

    /// A string literal's contents never leak tokens: whatever we embed
    /// in a (terminated) raw string must come back as one StrLit.
    #[test]
    fn raw_string_contents_are_inert(body in "[a-z ().!=]{0,40}") {
        let src = format!("let x = r#\"{body}\"# ;");
        let toks = tokenize(&src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::StrLit).collect();
        prop_assert_eq!(strs.len(), 1);
        prop_assert!(strs[0].text.contains(&body));
        // Nothing inside the literal shows up as an identifier.
        prop_assert!(!toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "unwrap"));
    }
}

/// The token-tree parser's totality contract: flattening the forest is
/// the identity on token indices, and every closed group's delimiters
/// actually match.
fn tree_well_formed(src: &str) {
    let toks = tokenize(src);
    let forest = parse(&toks);
    assert_eq!(
        forest.flatten(),
        (0..toks.len()).collect::<Vec<_>>(),
        "flatten must be the identity on {src:?}"
    );
    fn check(node: &Tree, toks: &[Tok<'_>]) {
        if let Tree::Group {
            open,
            close,
            delim,
            children,
        } = node
        {
            assert_eq!(Delim::open_of(toks[*open].text), Some(*delim));
            if let Some(c) = close {
                assert_eq!(Delim::close_of(toks[*c].text), Some(*delim));
            }
            for ch in children {
                check(ch, toks);
            }
        }
    }
    for r in &forest.roots {
        check(r, &toks);
    }
}

/// Builds a syntactically balanced source from a sequence of ops:
/// openers push a pending closer, op 3 closes the innermost group, the
/// rest emit leaf filler; leftover openers are closed at the end.
fn balanced_from_ops(ops: &[u8]) -> String {
    let mut src = String::new();
    let mut pending: Vec<&str> = Vec::new();
    for op in ops {
        match op {
            0 => {
                src.push_str("( ");
                pending.push(") ");
            }
            1 => {
                src.push_str("[ ");
                pending.push("] ");
            }
            2 => {
                src.push_str("{ ");
                pending.push("} ");
            }
            3 => {
                if let Some(c) = pending.pop() {
                    src.push_str(c);
                }
            }
            4 => src.push_str("x "),
            5 => src.push_str("1.0 "),
            6 => src.push_str("; "),
            _ => src.push_str("\"s\" "),
        }
    }
    while let Some(c) = pending.pop() {
        src.push_str(c);
    }
    src
}

proptest! {
    /// Parsing is total and lossless on arbitrary strings — including
    /// wildly unbalanced delimiter garbage.
    #[test]
    fn tree_round_trips_on_arbitrary_strings(src in ".{0,200}") {
        tree_well_formed(&src);
    }

    /// Concentrated delimiter soup: mismatches, stray closers, and
    /// unterminated openers must all degrade, never panic or drop.
    #[test]
    fn tree_round_trips_on_delimiter_soup(
        src in r#"[()\[\]{} a1;,.'"/*]{0,120}"#
    ) {
        tree_well_formed(&src);
    }

    /// Balanced input parses with every group closed: `close` is `Some`
    /// all the way down, and no stray-closer leaves remain.
    #[test]
    fn balanced_input_closes_every_group(ops in prop::collection::vec(0u8..8, 0..80)) {
        let src = balanced_from_ops(&ops);
        tree_well_formed(&src);
        let toks = tokenize(&src);
        let forest = parse(&toks);
        fn all_closed(node: &Tree) -> bool {
            match node {
                Tree::Leaf(_) => true,
                Tree::Group { close, children, .. } => {
                    close.is_some() && children.iter().all(all_closed)
                }
            }
        }
        prop_assert!(forest.roots.iter().all(all_closed), "unclosed group in {src:?}");
        // No top-level leaf may be a closer (they'd be strays).
        for r in &forest.roots {
            if let Tree::Leaf(i) = r {
                prop_assert!(Delim::close_of(toks[*i].text).is_none());
            }
        }
    }
}

#[test]
fn adversarial_corners_lex_as_expected() {
    // Raw string with hashes containing a fake end fence.
    let toks = tokenize(r####"let s = r##"he said "#no"# loudly"## ;"####);
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokKind::StrLit).count(),
        1
    );

    // Nested block comments.
    let toks = tokenize("/* outer /* inner */ still comment */ fn");
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::BlockComment).count(), 1);
    assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "fn"));

    // Lifetime vs char literal.
    let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'a'; }");
    assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
    assert!(toks.iter().any(|t| t.kind == TokKind::CharLit && t.text == "'a'"));

    // Byte strings and byte chars.
    let toks = tokenize(r#"let b = b"bytes"; let c = b'x';"#);
    assert!(toks.iter().any(|t| t.kind == TokKind::ByteLit));

    // Unterminated string at EOF must not hang or panic.
    let toks = tokenize("let s = \"never closed");
    assert!(!toks.is_empty());
}
