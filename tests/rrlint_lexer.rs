//! Property tests for the rrlint lexer: tokenization must be *total*
//! (never panic, never lose input) on arbitrary byte soup, and must
//! round-trip the adversarial corners of Rust's grammar that the
//! hand-rolled scanner handles specially.

use analyzer::lexer::{tokenize, TokKind};
use proptest::prelude::*;

/// Every token's span must lie inside the source, and offsets must be
/// strictly increasing (no token overlaps or goes backwards).
fn well_formed(src: &str) {
    let toks = tokenize(src);
    let mut prev_end = 0usize;
    for t in &toks {
        assert!(t.start >= prev_end, "overlapping tokens in {src:?}");
        let end = t.start + t.text.len();
        assert!(end <= src.len(), "token past EOF in {src:?}");
        assert_eq!(
            &src[t.start..end],
            t.text,
            "token text disagrees with span in {src:?}"
        );
        prev_end = end;
    }
}

proptest! {
    /// Lexing is total: any string at all, including invalid UTF-8-free
    /// byte soup, unterminated literals, and stray quotes, produces a
    /// token stream without panicking.
    #[test]
    fn lexing_is_total_on_arbitrary_strings(src in ".{0,200}") {
        well_formed(&src);
    }

    /// Heavy-on-delimiters alphabet: the characters most likely to
    /// confuse a scanner (quotes, hashes, slashes, stars, primes).
    #[test]
    fn lexing_is_total_on_delimiter_soup(src in r#"['"r#b/*\\\n a0]{0,120}"#) {
        well_formed(&src);
    }

    /// A string literal's contents never leak tokens: whatever we embed
    /// in a (terminated) raw string must come back as one StrLit.
    #[test]
    fn raw_string_contents_are_inert(body in "[a-z ().!=]{0,40}") {
        let src = format!("let x = r#\"{body}\"# ;");
        let toks = tokenize(&src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::StrLit).collect();
        prop_assert_eq!(strs.len(), 1);
        prop_assert!(strs[0].text.contains(&body));
        // Nothing inside the literal shows up as an identifier.
        prop_assert!(!toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "unwrap"));
    }
}

#[test]
fn adversarial_corners_lex_as_expected() {
    // Raw string with hashes containing a fake end fence.
    let toks = tokenize(r####"let s = r##"he said "#no"# loudly"## ;"####);
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokKind::StrLit).count(),
        1
    );

    // Nested block comments.
    let toks = tokenize("/* outer /* inner */ still comment */ fn");
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::BlockComment).count(), 1);
    assert!(toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "fn"));

    // Lifetime vs char literal.
    let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'a'; }");
    assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
    assert!(toks.iter().any(|t| t.kind == TokKind::CharLit && t.text == "'a'"));

    // Byte strings and byte chars.
    let toks = tokenize(r#"let b = b"bytes"; let c = b'x';"#);
    assert!(toks.iter().any(|t| t.kind == TokKind::ByteLit));

    // Unterminated string at EOF must not hang or panic.
    let toks = tokenize("let s = \"never closed");
    assert!(!toks.is_empty());
}
