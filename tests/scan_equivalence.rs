//! Root equivalence suite: every covariance scan path mines the same
//! model.
//!
//! The blocked panel kernel keeps per-entry accumulation in row order,
//! so the row-at-a-time serial scan, a whole-matrix `push_block`, and
//! the columnar `RRCB` block-file path must produce *bit-identical*
//! mined rules. The sharded scan reassociates once at its deterministic
//! merge tree, so it is held to run-to-run bit-identity plus tolerance
//! agreement with the serial fold.

use dataset::columnar::{write_block_file, ColumnarBlockSource};
use linalg::Matrix;
use ratio_rules::covariance::CovarianceAccumulator;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::parallel::{covariance_parallel, tree_merge};
use ratio_rules::resilience::{ScanCheckpoint, ScanPolicy, Scanner};
use ratio_rules::rules::RuleSet;

fn workload() -> Matrix {
    // Low-rank structure plus deterministic jitter: interesting spectra,
    // no randomness, reproducible bits.
    Matrix::from_fn(300, 6, |i, j| {
        let t = 1.0 + i as f64;
        let base = t * [6.0, 5.0, 4.0, 3.0, 2.0, 1.0][j];
        base + ((i * 13 + j * 7) % 17) as f64 * 0.01
    })
}

fn assert_rules_bits_eq(a: &RuleSet, b: &RuleSet, what: &str) {
    assert_eq!(a.k(), b.k(), "{what}: rule count");
    for (x, y) in a.column_means().iter().zip(b.column_means()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: means");
    }
    for (ra, rb) in a.rules().iter().zip(b.rules()) {
        assert_eq!(
            ra.eigenvalue.to_bits(),
            rb.eigenvalue.to_bits(),
            "{what}: eigenvalue"
        );
        for (u, v) in ra.loadings.iter().zip(&rb.loadings) {
            assert_eq!(u.to_bits(), v.to_bits(), "{what}: loadings");
        }
    }
}

#[test]
fn rowwise_blocked_and_columnar_mining_are_bit_identical() {
    let x = workload();
    let cutoff = Cutoff::FixedK(3);

    // Serial reference: one row at a time, the paper's scan.
    let mut serial = CovarianceAccumulator::new(x.cols());
    for row in x.row_iter() {
        serial.push_row(row).unwrap();
    }
    let reference = RatioRuleMiner::new(cutoff).finish(&serial).unwrap();

    // Whole-matrix panel path.
    let mut blocked = CovarianceAccumulator::new(x.cols());
    blocked.push_block(x.data(), x.rows()).unwrap();
    let blocked_rules = RatioRuleMiner::new(cutoff).finish(&blocked).unwrap();
    assert_rules_bits_eq(&reference, &blocked_rules, "blocked");

    // Columnar path: CSV-free RRCB file through the resilient pipeline.
    let dir = std::env::temp_dir().join(format!("rr_equiv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("workload.rrcb");
    write_block_file(&path, x.cols(), x.rows(), x.data()).unwrap();
    let mut src = ColumnarBlockSource::open(&path).unwrap();
    let mut scanner = Scanner::new(x.cols(), ScanPolicy::Strict);
    scanner.scan_columnar(&mut src).unwrap();
    let (acc, scan) = scanner.into_parts();
    assert_eq!(scan.rows_absorbed, 300);
    // Same miner as the reference: the solver is held constant so any
    // bit difference must come from the scan path itself.
    let columnar_rules = RatioRuleMiner::new(cutoff).finish(&acc).unwrap();
    assert_rules_bits_eq(&reference, &columnar_rules, "columnar");
}

/// The distributed-mining bit-identity claim, minus the sockets: shard
/// accumulators round-tripped through the wire checkpoint JSON and
/// folded through the public [`tree_merge`] land on the exact bits of
/// the in-process sharded scan. This is the property the chaos e2e
/// suite (tests/distributed_chaos.rs) re-proves with real workers.
#[test]
fn wire_roundtripped_shard_merge_is_bit_identical_to_in_process() {
    let x = workload();
    let n = x.rows();
    for shards in [2usize, 4, 8] {
        let oracle = covariance_parallel(&x, shards).unwrap();

        // Same contiguous partition as covariance_sharded, scanned
        // row-wise (the worker's path), serialized through the f64-exact
        // checkpoint JSON (the wire format), parsed back, and merged.
        let chunk = n.div_ceil(shards);
        let mut accs = Vec::new();
        let mut lo = 0;
        while lo < n {
            let hi = (lo + chunk).min(n);
            let mut acc = CovarianceAccumulator::new(x.cols());
            for i in lo..hi {
                acc.push_row(x.row(i)).unwrap();
            }
            let wire = ScanCheckpoint::from_accumulator(&acc).to_json();
            let cp = ScanCheckpoint::from_json(&wire).unwrap();
            accs.push(cp.accumulator().unwrap());
            lo = hi;
        }
        let merged = tree_merge(accs).unwrap();

        let (n1, s1, r1) = oracle.parts();
        let (n2, s2, r2) = merged.parts();
        assert_eq!(n1, n2, "shards={shards}: row count");
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&s1), bits(&s2), "shards={shards}: column sums");
        assert_eq!(bits(&r1), bits(&r2), "shards={shards}: raw moments");
    }
}

#[test]
fn sharded_scan_is_deterministic_and_agrees_with_serial() {
    let x = workload();
    let mut serial = CovarianceAccumulator::new(x.cols());
    for row in x.row_iter() {
        serial.push_row(row).unwrap();
    }
    let (c_serial, means_serial, _) = serial.finalize().unwrap();

    for threads in [2usize, 4, 8] {
        // Run-to-run bit-identity at a fixed thread count: the merge
        // tree is a function of the shard count, not the schedule.
        let a = covariance_parallel(&x, threads).unwrap().parts();
        let b = covariance_parallel(&x, threads).unwrap().parts();
        assert_eq!(a, b, "threads={threads}: sharded scan must be deterministic");

        // Tolerance agreement with the serial fold (the tree merge
        // reassociates the sums once, so bits may differ).
        let (c_par, means_par, _) = covariance_parallel(&x, threads)
            .unwrap()
            .finalize()
            .unwrap();
        for (m1, m2) in means_serial.iter().zip(&means_par) {
            assert!((m1 - m2).abs() <= 1e-10 * m1.abs().max(1.0), "{m1} vs {m2}");
        }
        let scale = c_serial.max_abs().max(1.0);
        assert!(
            c_serial.max_abs_diff(&c_par).unwrap() <= 1e-10 * scale,
            "threads={threads}: covariance diverged beyond merge tolerance"
        );
    }
}
