//! End-to-end tests of the prediction server over real sockets: an
//! in-process [`serve::Server`] on an ephemeral port, raw `TcpStream`
//! HTTP/1.1 clients, and bit-level comparison of batched answers against
//! the single-shot predictor.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use dataset::holes::{HoleSet, HoledRow};
use linalg::Matrix;
use obs::json::JsonValue;
use ratio_rules::cutoff::Cutoff;
use ratio_rules::miner::RatioRuleMiner;
use ratio_rules::predictor::{Predictor, RuleSetPredictor};
use ratio_rules::rules::RuleSet;
use serve::{BatchConfig, ServeModel, Server, ServerConfig};

/// Rank-2 training data in 4 attributes (same construction as the core
/// reconstruction tests).
fn training_matrix() -> Matrix {
    let d1 = [2.0, 1.0, 0.0, 1.0];
    let d2 = [0.0, 1.0, 3.0, -1.0];
    Matrix::from_fn(40, 4, |i, j| {
        let a = (i as f64 % 7.0) - 3.0;
        let b = ((i * 3) as f64 % 5.0) - 2.0;
        10.0 + a * d1[j] + b * d2[j]
    })
}

fn mine() -> RuleSet {
    RatioRuleMiner::new(Cutoff::FixedK(2))
        .fit_matrix(&training_matrix())
        .unwrap()
}

fn start_server_cfg(cfg: ServerConfig) -> (Server, SocketAddr) {
    let server = Server::start(cfg, ServeModel::from_served(
        ratio_rules::resilience::ServedModel::Rules(mine()),
    ))
    .unwrap();
    let addr = server.addr();
    (server, addr)
}

fn start_server(batch: BatchConfig) -> (Server, SocketAddr) {
    start_server_cfg(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        batch,
        io_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    })
}

/// One-shot HTTP exchange (`Connection: close`); returns
/// (status, headers, body).
fn http(addr: SocketAddr, raw: &str) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(raw.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap(); // server closes
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap()
        .split_ascii_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, String) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<(String, String)>, String) {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// A raw keep-alive POST (no `Connection` header: HTTP/1.1 persists).
fn raw_post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Reads `Content-Length`-framed responses off a persistent connection,
/// retaining bytes of the *next* response that arrive coalesced with
/// the current one (pipelined responses).
struct RespReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RespReader {
    fn new(stream: TcpStream) -> RespReader {
        RespReader {
            stream,
            buf: Vec::new(),
        }
    }

    fn next(&mut self) -> (u16, Vec<(String, String)>, String) {
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = self.stream.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed before the response head ended");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(self.buf[..head_end - 4].to_vec()).unwrap();
        let mut lines = head.split("\r\n");
        let status: u16 = lines
            .next()
            .unwrap()
            .split_ascii_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let content_length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .map(|(_, v)| v.parse().unwrap())
            .expect("responses always declare content-length");
        let total = head_end + content_length;
        while self.buf.len() < total {
            let n = self.stream.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8(self.buf[head_end..total].to_vec()).unwrap();
        self.buf.drain(..total);
        (status, headers, body)
    }

    /// Asserts the server closed the connection (EOF, no stray bytes).
    fn expect_eof(&mut self) {
        assert!(self.buf.is_empty(), "unread bytes: {:?}", self.buf);
        let mut chunk = [0u8; 64];
        assert_eq!(self.stream.read(&mut chunk).unwrap(), 0, "expected EOF");
    }
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// `{}` on f64 prints the shortest decimal that round-trips, so values
/// survive the wire bit-for-bit in both directions.
fn rows_body(rows: &[HoledRow]) -> String {
    let cells: Vec<String> = rows
        .iter()
        .map(|r| {
            let row: Vec<String> = r
                .values
                .iter()
                .map(|c| match c {
                    Some(v) => format!("{v}"),
                    None => "null".to_string(),
                })
                .collect();
            format!("[{}]", row.join(","))
        })
        .collect();
    format!("{{\"rows\":[{}]}}", cells.join(","))
}

fn predicted_values(body: &str) -> Vec<Vec<f64>> {
    let doc = obs::json::parse(body).unwrap();
    doc.get("rows")
        .and_then(JsonValue::as_arr)
        .unwrap()
        .iter()
        .map(|row| {
            row.get("values")
                .and_then(JsonValue::as_arr)
                .unwrap_or_else(|| panic!("row without values: {row:?}"))
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect()
        })
        .collect()
}

#[test]
fn concurrent_batched_predictions_are_bit_identical_to_unbatched() {
    obs::set_enabled(true);
    // A wide-open coalescing window so the concurrent clients land in
    // shared batches.
    let (server, addr) = start_server(BatchConfig {
        max_batch: 32,
        batch_window: Duration::from_millis(30),
        max_queue: 1024,
        deadline: Duration::from_secs(5),
    });

    let x = training_matrix();
    let single = RuleSetPredictor::new(mine());
    let patterns = [vec![0], vec![2], vec![1, 3], vec![0, 2]];
    let n_threads = 8;
    let barrier = Arc::new(Barrier::new(n_threads));
    std::thread::scope(|scope| {
        for t in 0..n_threads {
            let barrier = Arc::clone(&barrier);
            let x = &x;
            let single = &single;
            let patterns = &patterns;
            scope.spawn(move || {
                let hs = HoleSet::new(patterns[t % patterns.len()].clone(), 4).unwrap();
                let rows: Vec<HoledRow> = (0..3)
                    .map(|r| hs.apply(x.row((t * 5 + r) % 40)).unwrap())
                    .collect();
                barrier.wait();
                let (status, _, body) = post(addr, "/predict", &rows_body(&rows));
                assert_eq!(status, 200, "{body}");
                let got = predicted_values(&body);
                assert_eq!(got.len(), rows.len());
                for (row, served) in rows.iter().zip(&got) {
                    let local = single.fill(row).unwrap();
                    assert_eq!(served, &local, "batched answer drifted from single-shot");
                }
            });
        }
    });
    server.shutdown();
}

#[test]
fn tiny_queue_answers_429_without_dropping_accepted_work() {
    obs::set_enabled(true);
    // max_queue = 1 and a long window: the first row in a window holds
    // the queue at capacity, so concurrent clients must see 429.
    let (server, addr) = start_server(BatchConfig {
        max_batch: 32,
        batch_window: Duration::from_millis(400),
        max_queue: 1,
        deadline: Duration::from_secs(5),
    });

    let single = RuleSetPredictor::new(mine());
    let row = HoleSet::new(vec![1], 4)
        .unwrap()
        .apply(training_matrix().row(7))
        .unwrap();
    let expected = single.fill(&row).unwrap();
    let body = rows_body(std::slice::from_ref(&row));

    let n_clients = 12;
    let ok = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let barrier = Arc::new(Barrier::new(n_clients));
    std::thread::scope(|scope| {
        for _ in 0..n_clients {
            let barrier = Arc::clone(&barrier);
            let (ok, rejected) = (&ok, &rejected);
            let (body, expected) = (&body, &expected);
            scope.spawn(move || {
                barrier.wait();
                let (status, headers, resp) = post(addr, "/predict", body);
                match status {
                    200 => {
                        // Accepted work is never dropped or corrupted.
                        assert_eq!(&predicted_values(&resp)[0], expected);
                        ok.fetch_add(1, Ordering::SeqCst);
                    }
                    429 => {
                        assert!(
                            headers.iter().any(|(n, v)| n == "retry-after" && v == "1"),
                            "429 must carry retry-after"
                        );
                        rejected.fetch_add(1, Ordering::SeqCst);
                    }
                    other => panic!("unexpected status {other}: {resp}"),
                }
            });
        }
    });
    let (ok, rejected) = (ok.into_inner(), rejected.into_inner());
    assert_eq!(ok + rejected, n_clients);
    assert!(ok >= 1, "at least the first client must be served");
    assert!(rejected >= 1, "a queue of 1 must shed some of 12 clients");
    server.shutdown();
}

#[test]
fn metrics_endpoint_exposes_registered_serve_names() {
    obs::set_enabled(true);
    let (server, addr) = start_server(BatchConfig::default());
    let row = HoleSet::new(vec![0], 4)
        .unwrap()
        .apply(training_matrix().row(3))
        .unwrap();
    let (status, _, _) = post(addr, "/predict", &rows_body(std::slice::from_ref(&row)));
    assert_eq!(status, 200);

    let (status, _, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    for name in [
        obs::names::SERVE_REQUESTS_TOTAL,
        obs::names::SERVE_BATCHES_TOTAL,
        obs::names::SERVE_ROWS_PREDICTED_TOTAL,
        obs::names::SERVE_BATCH_SIZE,
        obs::names::SERVE_LATENCY_US,
        obs::names::SERVE_QUEUE_DEPTH,
        // Scan-side gauges: the in-process mine that built this model
        // published the real values; Server::start seeds the block-size
        // gauge regardless, so a fresh serve process carries it too.
        obs::names::COVARIANCE_BLOCK_ROWS,
        obs::names::SCAN_SHARD_0_ROWS_PER_S,
    ] {
        assert!(metrics.contains(name), "/metrics missing {name}");
    }
    server.shutdown();
}

/// The tentpole loop over real sockets: a predict response carries its
/// trace id, the trace is served back as a Chrome trace-event document
/// showing request -> batch -> solve, and the flight recorder endpoint
/// returns well-formed JSONL.
#[test]
fn debug_endpoints_serve_trace_and_flight_recorder() {
    obs::set_enabled(true);
    obs::set_flight_enabled(true);
    let (server, addr) = start_server(BatchConfig::default());
    let row = HoleSet::new(vec![2], 4)
        .unwrap()
        .apply(training_matrix().row(5))
        .unwrap();
    let (status, headers, _) = post(addr, "/predict", &rows_body(std::slice::from_ref(&row)));
    assert_eq!(status, 200);
    let trace_id = headers
        .iter()
        .find(|(n, _)| n == "x-trace-id")
        .map(|(_, v)| v.clone())
        .expect("predict response must carry x-trace-id");
    assert_eq!(trace_id.len(), 16, "trace id is 16 hex digits: {trace_id}");

    // The trace store is oldest-evicted, so fetching right away is safe.
    let (status, _, doc) = get(addr, &format!("/debug/trace?id={trace_id}"));
    assert_eq!(status, 200, "{doc}");
    let parsed = obs::json::parse(&doc).unwrap();
    let events = parsed
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("chrome trace doc");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
        .collect();
    for span in [
        obs::names::SPAN_SERVE_REQUEST,
        obs::names::SPAN_SERVE_BATCH,
        obs::names::SPAN_PATTERN_SOLVE,
    ] {
        assert!(names.contains(&span), "trace missing span {span}: {names:?}");
    }

    // Unknown and malformed ids fail cleanly.
    assert_eq!(get(addr, "/debug/trace?id=0000000000000000").0, 404);
    assert_eq!(get(addr, "/debug/trace?id=zzz").0, 400);

    // The flight recorder dump is JSONL: every non-empty line parses.
    let (status, _, jsonl) = get(addr, "/debug/flightrecorder");
    assert_eq!(status, 200);
    let mut lines = 0;
    for line in jsonl.lines().filter(|l| !l.is_empty()) {
        let ev = obs::json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line}: {e:?}"));
        assert!(ev.get("event").and_then(JsonValue::as_str).is_some());
        assert!(ev.get("seq").and_then(JsonValue::as_f64).is_some());
        lines += 1;
    }
    // The predict above was coalesced into a batch with the recorder on.
    assert!(lines >= 1, "expected at least one flight event");
    server.shutdown();
}

/// Satellite of the observability PR: gauge/counter/quantile seeding at
/// boot is data-driven from the names registry, so a dashboard pointed
/// at a fresh server sees every serve/scan family before any traffic —
/// adding a name to `SERVE_BOOT_FAMILIES` is all it takes.
#[test]
fn metrics_at_boot_expose_every_registered_family() {
    obs::set_enabled(true);
    let (server, addr) = start_server(BatchConfig::default());
    // No requests before this read: boot seeding alone must cover it.
    let (status, _, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    for &(name, _kind) in obs::names::SERVE_BOOT_FAMILIES {
        assert!(metrics.contains(name), "/metrics at boot missing {name}");
    }
    server.shutdown();
}

#[test]
fn health_rules_whatif_and_error_paths() {
    obs::set_enabled(true);
    let (server, addr) = start_server(BatchConfig::default());

    let (status, _, health) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let doc = obs::json::parse(&health).unwrap();
    assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(doc.get("attributes").and_then(JsonValue::as_f64), Some(4.0));
    assert_eq!(doc.get("k").and_then(JsonValue::as_f64), Some(2.0));

    // /rules serves exactly the on-disk model document.
    let (status, _, rules_doc) = get(addr, "/rules");
    assert_eq!(status, 200);
    assert_eq!(rules_doc, ratio_rules::model_json::rules_to_string(&mine()));

    // /whatif pins one attribute and forecasts the rest.
    let (status, _, body) = post(addr, "/whatif", "{\"pin\":{\"attr0\":12.0}}");
    assert_eq!(status, 200, "{body}");
    let forecast = obs::json::parse(&body).unwrap();
    let values = forecast
        .get("forecast")
        .and_then(|f| f.get("values"))
        .and_then(JsonValue::as_arr)
        .unwrap();
    assert_eq!(values.len(), 4);
    assert!(values.iter().all(|v| v.as_f64().is_some_and(f64::is_finite)));

    // Error paths: unknown endpoint, wrong method, malformed body.
    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(get(addr, "/predict").0, 405);
    assert_eq!(post(addr, "/predict", "not json").0, 400);
    assert_eq!(post(addr, "/predict", "{\"rows\":[[1.0]]}").0, 400); // width
    server.shutdown();
}

/// Tentpole of the persistent-connection PR: many sequential requests
/// over ONE connection, every answer bit-identical to the single-shot
/// predictor and every response advertising keep-alive.
#[test]
fn keep_alive_connection_serves_sequential_requests_bit_identically() {
    obs::set_enabled(true);
    let (server, addr) = start_server(BatchConfig::default());
    let x = training_matrix();
    let single = RuleSetPredictor::new(mine());

    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut reader = RespReader::new(stream);
    let patterns = [vec![0], vec![2], vec![1, 3]];
    for i in 0..9 {
        let hs = HoleSet::new(patterns[i % patterns.len()].clone(), 4).unwrap();
        let row = hs.apply(x.row(i * 4 % 40)).unwrap();
        reader
            .stream
            .write_all(raw_post("/predict", &rows_body(std::slice::from_ref(&row))).as_bytes())
            .unwrap();
        let (status, headers, body) = reader.next();
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            header(&headers, "connection"),
            Some("keep-alive"),
            "request {i} must keep the connection open"
        );
        assert_eq!(header(&headers, "x-model-version"), Some("1"));
        let got = predicted_values(&body);
        assert_eq!(got[0], single.fill(&row).unwrap(), "request {i} drifted");
    }
    server.shutdown();
}

/// Three pipelined requests in one write answer in order, bit-identical
/// to single-shot; the `Connection: close` on the last is honored.
#[test]
fn pipelined_requests_answer_in_order_and_close_honored() {
    obs::set_enabled(true);
    let (server, addr) = start_server(BatchConfig::default());
    let x = training_matrix();
    let single = RuleSetPredictor::new(mine());

    let rows: Vec<HoledRow> = (0..3)
        .map(|i| {
            HoleSet::new(vec![i % 4], 4)
                .unwrap()
                .apply(x.row(i * 7 % 40))
                .unwrap()
        })
        .collect();
    let mut raw = String::new();
    for (i, row) in rows.iter().enumerate() {
        let body = rows_body(std::slice::from_ref(row));
        if i == 2 {
            raw.push_str(&format!(
                "POST /predict HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            ));
        } else {
            raw.push_str(&raw_post("/predict", &body));
        }
    }
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut reader = RespReader::new(stream);
    reader.stream.write_all(raw.as_bytes()).unwrap();
    for (i, row) in rows.iter().enumerate() {
        let (status, headers, body) = reader.next();
        assert_eq!(status, 200, "{body}");
        let want_conn = if i == 2 { "close" } else { "keep-alive" };
        assert_eq!(header(&headers, "connection"), Some(want_conn), "response {i}");
        assert_eq!(
            predicted_values(&body)[0],
            single.fill(row).unwrap(),
            "pipelined response {i} drifted from single-shot"
        );
    }
    reader.expect_eof();
    server.shutdown();
}

/// An oversized request mid-pipeline answers 413 and closes without
/// desyncing: the valid request before it is answered normally first.
#[test]
fn oversized_request_mid_pipeline_answers_413_then_closes() {
    obs::set_enabled(true);
    let (server, addr) = start_server(BatchConfig::default());
    let x = training_matrix();
    let row = HoleSet::new(vec![1], 4).unwrap().apply(x.row(3)).unwrap();
    let good = rows_body(std::slice::from_ref(&row));

    let mut raw = raw_post("/predict", &good).into_bytes();
    // Declared body over the limit: rejected from the head alone, the
    // (unsent) body never needs to arrive.
    raw.extend_from_slice(
        format!(
            "POST /predict HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
            serve::protocol::MAX_BODY_BYTES + 1
        )
        .as_bytes(),
    );
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut reader = RespReader::new(stream);
    reader.stream.write_all(&raw).unwrap();
    let (status, _, body) = reader.next();
    assert_eq!(status, 200, "the valid request answers first: {body}");
    let (status, headers, _) = reader.next();
    assert_eq!(status, 413);
    assert_eq!(header(&headers, "connection"), Some("close"));
    reader.expect_eof();
    server.shutdown();
}

/// The per-connection request cap flips the last allowed response to
/// `Connection: close`.
#[test]
fn request_cap_closes_the_connection_after_the_limit() {
    obs::set_enabled(true);
    let (server, addr) = start_server_cfg(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        max_conn_requests: 2,
        io_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    });
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut reader = RespReader::new(stream);
    reader
        .stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (status, headers, _) = reader.next();
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "connection"), Some("keep-alive"));
    reader
        .stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let (status, headers, _) = reader.next();
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "connection"),
        Some("close"),
        "request 2 of 2 must close"
    );
    reader.expect_eof();
    server.shutdown();
}

/// All three backpressure answers carry `Retry-After`: the batch
/// queue's 429 (asserted in `tiny_queue_answers_429...` above), the
/// drain-path 503, and the worker hand-off 503.
#[test]
fn drain_and_handoff_503s_carry_retry_after() {
    obs::set_enabled(true);
    // threads = 1: one keep-alive client owns the only worker, so the
    // hand-off queue (cap = threads * 4) fills deterministically.
    let (server, addr) = start_server_cfg(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        io_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    });
    let x = training_matrix();
    let row = HoleSet::new(vec![0], 4).unwrap().apply(x.row(1)).unwrap();
    let body = rows_body(std::slice::from_ref(&row));

    // Occupy the worker: a served keep-alive request pins it to this
    // connection until we drop the stream.
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut owner = RespReader::new(stream);
    owner
        .stream
        .write_all(raw_post("/predict", &body).as_bytes())
        .unwrap();
    assert_eq!(owner.next().0, 200);

    // Fill the hand-off queue with idle connections, then one more must
    // be answered 503 + retry-after inline by the acceptor.
    let _queued: Vec<TcpStream> = (0..4)
        .map(|_| {
            let s = TcpStream::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(50)); // let the acceptor enqueue
            s
        })
        .collect();
    let (status, headers, _) = get(addr, "/healthz");
    assert_eq!(status, 503, "hand-off queue full");
    assert_eq!(
        header(&headers, "retry-after"),
        Some("1"),
        "hand-off 503 must carry retry-after"
    );
    drop(owner);
    drop(_queued);

    // Drain: /predict submissions answer 503 + retry-after while
    // already-accepted work completes.
    server.begin_drain();
    // The freed worker picks up queued connections; retry until our
    // request reaches a worker rather than the full hand-off queue.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (status, headers, resp) = post(addr, "/predict", &body);
        assert_eq!(status, 503, "{resp}");
        if resp.contains("draining") {
            assert_eq!(
                header(&headers, "retry-after"),
                Some("1"),
                "drain 503 must carry retry-after"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "never reached the drain path: {resp}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
}

/// `--shed-degrade`: when the batch queue fills, the rest of the
/// request answers from the col-avgs floor with the `DEGRADED` header
/// instead of a 429 — and the floored values are exactly the floor's.
#[test]
fn shed_degrade_answers_from_the_floor_with_degraded_header() {
    obs::set_enabled(true);
    // max_queue = 1 and a long window: row 0 holds the queue at
    // capacity, so rows 1..n of the same request must shed.
    let (server, addr) = start_server_cfg(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        batch: BatchConfig {
            max_batch: 32,
            batch_window: Duration::from_millis(300),
            max_queue: 1,
            deadline: Duration::from_secs(5),
        },
        shed_degrade: true,
        io_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    });
    let x = training_matrix();
    let rules = mine();
    let single = RuleSetPredictor::new(rules.clone());
    let floor =
        ratio_rules::predictor::ColAvgs::new(rules.column_means().to_vec()).unwrap();
    let hs = HoleSet::new(vec![2], 4).unwrap();
    let rows: Vec<HoledRow> = (0..3).map(|r| hs.apply(x.row(r * 9 % 40)).unwrap()).collect();

    let (status, headers, body) = post(addr, "/predict", &rows_body(&rows));
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        header(&headers, "degraded"),
        Some("true"),
        "a shed response must carry DEGRADED"
    );
    let got = predicted_values(&body);
    assert_eq!(got.len(), 3);
    // Row 0 was queued and batch-solved; rows 1..3 came from the floor.
    assert_eq!(got[0], single.fill(&rows[0]).unwrap());
    for (i, row) in rows.iter().enumerate().skip(1) {
        assert_eq!(got[i], floor.fill(row).unwrap(), "row {i} is a floor answer");
    }
    // The response body tags floor answers with the col_avgs case.
    let doc = obs::json::parse(&body).unwrap();
    let cases: Vec<String> = doc
        .get("rows")
        .and_then(JsonValue::as_arr)
        .unwrap()
        .iter()
        .map(|r| r.get("case").and_then(JsonValue::as_str).unwrap().to_string())
        .collect();
    assert_ne!(cases[0], "col_avgs");
    assert_eq!(&cases[1..], &["col_avgs", "col_avgs"]);
    server.shutdown();
}
